//! The persistent cross-job reuse store.
//!
//! One `reuse-<keydigest:016x>.json` file per entry, living alongside
//! the shared compile cache (by default under `.geyser-cache/reuse`).
//! Every file is a `GEYSREC1`-framed JSON [`ReuseRecord`]: atomic
//! tmp+rename writes, torn-write/bit-rot detection, corrupt files
//! quarantined to `.corrupt-<digest>` sidecars under the `reuse`
//! corruption label. Digest-keyed file names make concurrent writers
//! idempotent — two processes publishing the same fingerprint race to
//! write equivalent records.
//!
//! Entries embed their hardware digest and composition-config hash;
//! the loader *skips* (never deletes) entries bound to another
//! configuration, so one store directory serves many machines and
//! configs at once. `repair --prune` reclaims entries whose digests
//! are stale for the machine being repaired.

use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::fingerprint::BlockFingerprint;
use crate::index::{ReuseEntry, ReuseKey, ReuseOutcome, ReuseSession};
use geyser_store::{read_record_file_quarantining, write_record_atomic, StoreReadError};
use geyser_telemetry::Telemetry;

/// Version stamp of the on-disk reuse record schema.
pub const REUSE_VERSION: u32 = 1;

/// File-name prefix of reuse store entries.
pub const REUSE_FILE_PREFIX: &str = "reuse-";

/// The on-disk shape of one reuse entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReuseRecord {
    /// Schema version ([`REUSE_VERSION`]).
    pub version: u32,
    /// Exact fingerprint kind (`two-qubit` | `canonical`).
    pub fingerprint_kind: String,
    /// Exact fingerprint components (see
    /// [`BlockFingerprint::components`]).
    pub fp_a: i64,
    /// Second exact component.
    pub fp_b: i64,
    /// Third exact component.
    pub fp_c: i64,
    /// Coarse (warm-start) fingerprint kind; empty when absent.
    pub coarse_kind: String,
    /// Coarse fingerprint components.
    pub coarse_a: i64,
    /// Second coarse component.
    pub coarse_b: i64,
    /// Third coarse component.
    pub coarse_c: i64,
    /// Hardware digest the composition was annealed for.
    pub hardware_digest: u64,
    /// Composition-config hash the composition was annealed under.
    pub config_hash: u64,
    /// Outcome label (see `ReuseOutcome::label`).
    pub outcome: String,
    /// Annealed ansatz parameters (composed outcomes only).
    pub params: Vec<f64>,
    /// Ansatz layer count for `params`.
    pub layers: u64,
    /// Verified Hilbert-Schmidt distance of the composition.
    pub hsd: f64,
    /// Annealer evaluations the original composition spent.
    pub evaluations: u64,
}

impl ReuseRecord {
    /// Builds the record for one published session entry.
    pub fn from_entry(
        key: &ReuseKey,
        coarse: Option<BlockFingerprint>,
        entry: &ReuseEntry,
    ) -> Self {
        let (fp_a, fp_b, fp_c) = key.fingerprint.components();
        let (coarse_kind, coarse_a, coarse_b, coarse_c) = match coarse {
            Some(cf) => {
                let (a, b, c) = cf.components();
                (cf.kind_label().to_string(), a, b, c)
            }
            None => (String::new(), 0, 0, 0),
        };
        ReuseRecord {
            version: REUSE_VERSION,
            fingerprint_kind: key.fingerprint.kind_label().to_string(),
            fp_a,
            fp_b,
            fp_c,
            coarse_kind,
            coarse_a,
            coarse_b,
            coarse_c,
            hardware_digest: key.hardware_digest,
            config_hash: key.config_hash,
            outcome: entry.outcome.label().to_string(),
            params: entry.params.clone(),
            layers: entry.layers as u64,
            hsd: entry.hsd,
            evaluations: entry.evaluations,
        }
    }

    /// Reconstructs the fully-qualified key, or `None` if the kind or
    /// components don't parse.
    pub fn key(&self) -> Option<ReuseKey> {
        let fingerprint =
            BlockFingerprint::from_parts(&self.fingerprint_kind, self.fp_a, self.fp_b, self.fp_c)?;
        Some(ReuseKey {
            fingerprint,
            hardware_digest: self.hardware_digest,
            config_hash: self.config_hash,
        })
    }

    /// Reconstructs the coarse fingerprint, if one was recorded.
    pub fn coarse_fingerprint(&self) -> Option<BlockFingerprint> {
        if self.coarse_kind.is_empty() {
            return None;
        }
        BlockFingerprint::from_parts(
            &self.coarse_kind,
            self.coarse_a,
            self.coarse_b,
            self.coarse_c,
        )
    }

    /// Reconstructs the in-memory entry, or `None` if the outcome
    /// label is unknown.
    pub fn entry(&self) -> Option<ReuseEntry> {
        Some(ReuseEntry {
            outcome: ReuseOutcome::from_label(&self.outcome)?,
            params: self.params.clone(),
            layers: self.layers as usize,
            hsd: self.hsd,
            evaluations: self.evaluations,
        })
    }
}

/// Path of the entry file for a key digest.
pub fn reuse_entry_path(dir: &Path, key_digest: u64) -> PathBuf {
    dir.join(format!("{REUSE_FILE_PREFIX}{key_digest:016x}.json"))
}

/// Whether a path names a (non-sidecar, non-tmp) reuse entry file.
pub fn is_reuse_entry(path: &Path) -> bool {
    let name = match path.file_name() {
        Some(n) => n.to_string_lossy().into_owned(),
        None => return false,
    };
    name.starts_with(REUSE_FILE_PREFIX) && name.ends_with(".json")
}

/// Parses a decoded record payload into a [`ReuseRecord`], with
/// schema-level validation (version, fingerprint, outcome label).
///
/// This is the same parse `load_reuse_dir` and `repair` run, so a
/// file that loads here is exactly a file the composer would accept.
pub fn parse_reuse_record(payload: &str) -> Result<ReuseRecord, String> {
    let record: ReuseRecord =
        serde_json::from_str(payload).map_err(|e| format!("reuse record parse: {e}"))?;
    if record.version != REUSE_VERSION {
        return Err(format!(
            "reuse record version {} (expected {REUSE_VERSION})",
            record.version
        ));
    }
    if record.key().is_none() {
        return Err(format!(
            "unknown fingerprint kind `{}`",
            record.fingerprint_kind
        ));
    }
    if record.entry().is_none() {
        return Err(format!("unknown outcome label `{}`", record.outcome));
    }
    Ok(record)
}

/// What one store-directory load observed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadedReuse {
    /// Entries matching the session's hardware/config binding.
    pub loaded: u64,
    /// Healthy entries bound to another hardware/config (left in
    /// place for their owners).
    pub stale: u64,
    /// Corrupt files quarantined to sidecars during the scan.
    pub quarantined: u64,
}

/// Loads every matching entry from `dir` into `session`.
///
/// A missing directory is an empty store. Files are visited in
/// sorted order so load accounting is deterministic; frame-corrupt
/// and schema-corrupt files are quarantined in place (label `reuse`)
/// and the scan continues — a rotten entry costs one recomposition,
/// never the run.
pub fn load_reuse_dir(
    dir: &Path,
    session: &mut ReuseSession,
    telemetry: &Telemetry,
) -> std::io::Result<LoadedReuse> {
    let mut observed = LoadedReuse::default();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(observed),
        Err(e) => return Err(e),
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| is_reuse_entry(p))
        .collect();
    paths.sort();
    for path in paths {
        let payload = match read_record_file_quarantining(&path, "reuse", telemetry) {
            Ok(p) => p,
            Err(StoreReadError::Corrupt(_)) => {
                observed.quarantined += 1;
                continue;
            }
            // Racing loader/pruner; skip, never fail the run.
            Err(StoreReadError::Io(_)) => continue,
        };
        let record = match parse_reuse_record(payload.text()) {
            Ok(r) => r,
            Err(reason) => {
                geyser_store::quarantine_corrupt(
                    &path,
                    payload.text().as_bytes(),
                    &reason,
                    "reuse",
                    telemetry,
                );
                observed.quarantined += 1;
                continue;
            }
        };
        let key = record.key().expect("validated by parse_reuse_record");
        let entry = record.entry().expect("validated by parse_reuse_record");
        if key.hardware_digest != session.hardware_digest()
            || key.config_hash != session.config_hash()
        {
            observed.stale += 1;
            session.stats.store_entries_stale += 1;
            continue;
        }
        session.insert_loaded(key, record.coarse_fingerprint(), entry);
        observed.loaded += 1;
    }
    Ok(observed)
}

/// Writes every entry the session published this run to `dir` with
/// atomic framed writes. Returns how many files were written.
pub fn save_reuse_dir(dir: &Path, session: &mut ReuseSession) -> std::io::Result<u64> {
    let mut saved = 0u64;
    let dirty: Vec<_> = session.dirty().to_vec();
    for (key, coarse) in dirty {
        let entry = match session.get(&key) {
            Some(e) => e.clone(),
            None => continue,
        };
        let record = ReuseRecord::from_entry(&key, coarse, &entry);
        let json = serde_json::to_string_pretty(&record).expect("reuse record serializes");
        write_record_atomic(&reuse_entry_path(dir, key.digest()), &json)?;
        saved += 1;
    }
    session.stats.store_entries_saved += saved;
    Ok(saved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::BlockFingerprint;

    fn fp(digest: u64) -> BlockFingerprint {
        BlockFingerprint::Canonical { dim: 8, digest }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("geyser-reuse-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_session() -> ReuseSession {
        let mut s = ReuseSession::new(11, 22);
        s.publish(
            fp(1),
            Some(fp(100)),
            ReuseEntry {
                outcome: ReuseOutcome::Composed,
                params: vec![0.5, -1.25, 3.0],
                layers: 2,
                hsd: 4.5e-6,
                evaluations: 777,
            },
        );
        s.publish(
            fp(2),
            None,
            ReuseEntry {
                outcome: ReuseOutcome::NotCheaper,
                params: Vec::new(),
                layers: 0,
                hsd: 0.0,
                evaluations: 0,
            },
        );
        s
    }

    #[test]
    fn save_then_load_roundtrips() {
        let dir = tmpdir("roundtrip");
        let mut writer = sample_session();
        assert_eq!(save_reuse_dir(&dir, &mut writer).unwrap(), 2);
        assert_eq!(writer.stats.store_entries_saved, 2);

        let mut reader = ReuseSession::new(11, 22);
        let obs = load_reuse_dir(&dir, &mut reader, &Telemetry::disabled()).unwrap();
        assert_eq!(obs.loaded, 2);
        assert_eq!(obs.quarantined, 0);
        assert_eq!(reader.lookup(fp(1)).unwrap().params, vec![0.5, -1.25, 3.0]);
        assert_eq!(
            reader.lookup(fp(2)).unwrap().outcome,
            ReuseOutcome::NotCheaper
        );
        assert!(reader.lookup_coarse(fp(100)).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_binding_entries_are_skipped_not_deleted() {
        let dir = tmpdir("stale");
        let mut writer = sample_session();
        save_reuse_dir(&dir, &mut writer).unwrap();

        let mut reader = ReuseSession::new(99, 22);
        let obs = load_reuse_dir(&dir, &mut reader, &Telemetry::disabled()).unwrap();
        assert_eq!(obs.loaded, 0);
        assert_eq!(obs.stale, 2);
        assert!(reader.is_empty());
        // Files survive for their rightful owner.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_entry_is_quarantined_and_scan_continues() {
        let dir = tmpdir("torn");
        let mut writer = sample_session();
        save_reuse_dir(&dir, &mut writer).unwrap();
        // Tear the first entry file mid-frame.
        let mut paths: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        paths.sort();
        let bytes = std::fs::read(&paths[0]).unwrap();
        std::fs::write(&paths[0], &bytes[..bytes.len() / 2]).unwrap();

        let mut reader = ReuseSession::new(11, 22);
        let obs = load_reuse_dir(&dir, &mut reader, &Telemetry::disabled()).unwrap();
        assert_eq!(obs.loaded, 1);
        assert_eq!(obs.quarantined, 1);
        assert!(std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .any(|e| e.file_name().to_string_lossy().contains(".corrupt-")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn schema_garbage_is_quarantined() {
        let dir = tmpdir("schema");
        let path = reuse_entry_path(&dir, 0xdead);
        write_record_atomic(&path, "{\"version\": 999}").unwrap();
        let mut reader = ReuseSession::new(11, 22);
        let obs = load_reuse_dir(&dir, &mut reader, &Telemetry::disabled()).unwrap();
        assert_eq!(obs.loaded, 0);
        assert_eq!(obs.quarantined, 1);
        assert!(!path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_parse_rejects_bad_labels() {
        let mut record = ReuseRecord::from_entry(
            &ReuseKey {
                fingerprint: fp(5),
                hardware_digest: 1,
                config_hash: 2,
            },
            None,
            &ReuseEntry {
                outcome: ReuseOutcome::Composed,
                params: vec![1.0],
                layers: 1,
                hsd: 0.0,
                evaluations: 1,
            },
        );
        record.outcome = "mystery".into();
        let json = serde_json::to_string(&record).unwrap();
        assert!(parse_reuse_record(&json).is_err());
    }
}
