//! Span records and the RAII guard that produces them.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::Inner;

/// One closed span: a named, categorized interval with its position in
/// the parent/child tree and any key=value attributes attached while
/// it was open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique (per recorder) span id.
    pub id: u64,
    /// Enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Process-global numeric id of the recording thread.
    pub tid: u64,
    /// Category — by convention the originating crate's short name.
    pub cat: &'static str,
    /// Span name.
    pub name: &'static str,
    /// Open time in nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Global sequence number at open; totally orders events while
    /// preserving each thread's stack order.
    pub open_seq: u64,
    /// Global sequence number at close.
    pub close_seq: u64,
    /// Attributes in the order they were attached.
    pub attrs: Vec<(&'static str, String)>,
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Stack of open spans on this thread as `(instance, span id)`,
    /// so concurrently-live recorders never adopt each other's spans.
    static OPEN_STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

fn current_tid() -> u64 {
    TID.with(|t| *t)
}

/// RAII guard for an open span. Dropping it — normally or during a
/// panic unwind — closes the span and files its [`SpanRecord`].
///
/// A guard from a disabled [`crate::Telemetry`] handle is inert:
/// creating it, attaching attributes, and dropping it do nothing.
#[must_use = "a span closes when its guard drops"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    inner: Arc<Inner>,
    id: u64,
    parent: Option<u64>,
    tid: u64,
    cat: &'static str,
    name: &'static str,
    opened: Instant,
    start_ns: u64,
    open_seq: u64,
    attrs: Vec<(&'static str, String)>,
}

impl SpanGuard {
    pub(crate) fn inert() -> Self {
        SpanGuard { active: None }
    }

    pub(crate) fn open(inner: Arc<Inner>, cat: &'static str, name: &'static str) -> Self {
        let id = inner.next_span_id();
        let tid = current_tid();
        let open_seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        let parent = OPEN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack
                .iter()
                .rev()
                .find(|&&(instance, _)| instance == inner.instance)
                .map(|&(_, id)| id);
            stack.push((inner.instance, id));
            parent
        });
        let opened = Instant::now();
        let start_ns = opened.duration_since(inner.epoch).as_nanos() as u64;
        SpanGuard {
            active: Some(ActiveSpan {
                inner,
                id,
                parent,
                tid,
                cat,
                name,
                opened,
                start_ns,
                open_seq,
                attrs: Vec::new(),
            }),
        }
    }

    /// Whether this guard is actually recording.
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }

    /// Attaches a key=value attribute. The value is formatted only
    /// when the span is live, so this is free on a disabled handle.
    pub fn attr(&mut self, key: &'static str, value: impl std::fmt::Display) {
        if let Some(active) = self.active.as_mut() {
            active.attrs.push((key, value.to_string()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let dur_ns = active.opened.elapsed().as_nanos() as u64;
        let close_seq = active.inner.seq.fetch_add(1, Ordering::Relaxed);
        OPEN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack
                .iter()
                .rposition(|&entry| entry == (active.inner.instance, active.id))
            {
                stack.remove(pos);
            }
        });
        active.inner.record(SpanRecord {
            id: active.id,
            parent: active.parent,
            tid: active.tid,
            cat: active.cat,
            name: active.name,
            start_ns: active.start_ns,
            dur_ns,
            open_seq: active.open_seq,
            close_seq,
            attrs: active.attrs,
        });
    }
}
