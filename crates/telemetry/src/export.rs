//! Chrome trace-event export and validation.
//!
//! The exporter emits the JSON-array form of the trace-event format:
//! one `B` (begin) and one `E` (end) event per recorded span, ordered
//! by the recorder's global open/close sequence. Because every thread
//! opens and closes its spans in stack order, sequence order yields a
//! balanced, properly nested `B`/`E` stream per thread id — the
//! property [`validate_chrome_trace`] checks. Timestamps are
//! microseconds, the unit `chrome://tracing` and Perfetto expect.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize, Value};

use crate::SpanRecord;

/// Local wrapper so a hand-built [`Value`] tree can flow through
/// `serde_json::to_string` (the vendored `Value` has no `Serialize`
/// impl of its own).
struct RawValue(Value);

impl Serialize for RawValue {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

fn str_value(s: &str) -> Value {
    Value::Str(s.to_string())
}

fn micros(ns: u64) -> Value {
    Value::F64(ns as f64 / 1000.0)
}

/// Renders span records as a Chrome trace-event JSON array.
pub(crate) fn chrome_trace_json(records: &[SpanRecord]) -> String {
    // (sequence, is-begin, record): sorting by sequence reproduces the
    // original open/close order, which is balanced per thread.
    let mut events: Vec<(u64, bool, &SpanRecord)> = Vec::with_capacity(records.len() * 2);
    for record in records {
        events.push((record.open_seq, true, record));
        events.push((record.close_seq, false, record));
    }
    events.sort_by_key(|&(seq, _, _)| seq);

    let rendered: Vec<Value> = events
        .iter()
        .map(|&(_, begin, record)| {
            let mut fields = vec![
                ("name".to_string(), str_value(record.name)),
                ("cat".to_string(), str_value(record.cat)),
                ("ph".to_string(), str_value(if begin { "B" } else { "E" })),
                ("pid".to_string(), Value::I64(1)),
                ("tid".to_string(), Value::I64(record.tid as i64)),
                (
                    "ts".to_string(),
                    micros(if begin {
                        record.start_ns
                    } else {
                        record.start_ns + record.dur_ns
                    }),
                ),
            ];
            if begin {
                let mut args = vec![("span_id".to_string(), Value::I64(record.id as i64))];
                if let Some(parent) = record.parent {
                    args.push(("parent".to_string(), Value::I64(parent as i64)));
                }
                for (key, value) in &record.attrs {
                    args.push((key.to_string(), str_value(value)));
                }
                fields.push(("args".to_string(), Value::Map(args)));
            }
            Value::Map(fields)
        })
        .collect();
    serde_json::to_string(&RawValue(Value::Seq(rendered))).expect("trace serialization")
}

/// One event of a Chrome trace-event JSON array, as read back by
/// [`validate_chrome_trace`]. Extra keys (such as `args`) are ignored.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChromeEvent {
    /// Span name.
    pub name: String,
    /// Span category (originating crate).
    pub cat: String,
    /// Phase: `B` (begin) or `E` (end).
    pub ph: String,
    /// Timestamp in microseconds.
    pub ts: f64,
    /// Process id.
    pub pid: u64,
    /// Thread id.
    pub tid: u64,
}

/// What [`validate_chrome_trace`] found in a well-formed trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total events in the file.
    pub events: usize,
    /// Complete (begin+end) spans.
    pub complete_spans: usize,
    /// Distinct categories seen, sorted.
    pub categories: Vec<String>,
}

/// Checks that `json` is a parseable Chrome trace-event array whose
/// `B`/`E` events are balanced and properly nested per thread id
/// (every `E` closes the innermost open span of the same name; nothing
/// is left open at the end).
pub fn validate_chrome_trace(json: &str) -> Result<TraceSummary, String> {
    let events: Vec<ChromeEvent> =
        serde_json::from_str(json).map_err(|e| format!("trace is not parseable JSON: {e}"))?;
    let mut open: BTreeMap<u64, Vec<&ChromeEvent>> = BTreeMap::new();
    let mut categories = BTreeSet::new();
    let mut complete_spans = 0usize;
    for event in &events {
        match event.ph.as_str() {
            "B" => {
                categories.insert(event.cat.clone());
                open.entry(event.tid).or_default().push(event);
            }
            "E" => {
                let begin = open
                    .get_mut(&event.tid)
                    .and_then(|stack| stack.pop())
                    .ok_or_else(|| {
                        format!(
                            "unbalanced trace: E `{}` on tid {} closes nothing",
                            event.name, event.tid
                        )
                    })?;
                if begin.name != event.name {
                    return Err(format!(
                        "mismatched nesting on tid {}: E `{}` closes B `{}`",
                        event.tid, event.name, begin.name
                    ));
                }
                complete_spans += 1;
            }
            other => return Err(format!("unsupported event phase `{other}`")),
        }
    }
    for (tid, stack) in &open {
        if let Some(top) = stack.last() {
            return Err(format!(
                "unbalanced trace: span `{}` on tid {tid} never ends",
                top.name
            ));
        }
    }
    Ok(TraceSummary {
        events: events.len(),
        complete_spans,
        categories: categories.into_iter().collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    fn sample_trace() -> String {
        let tel = Telemetry::enabled();
        {
            let mut pass = tel.span("core", "pass:map");
            pass.attr("index", 0);
            {
                let _route = tel.span("map", "map.route");
            }
            let _basis = tel.span("map", "map.native_basis");
        }
        {
            let _compose = tel.span("compose", "compose.block");
        }
        tel.chrome_trace_json().unwrap()
    }

    #[test]
    fn exported_trace_validates() {
        let json = sample_trace();
        let summary = validate_chrome_trace(&json).unwrap();
        assert_eq!(summary.complete_spans, 4);
        assert_eq!(summary.events, 8);
        assert_eq!(summary.categories, ["compose", "core", "map"]);
    }

    #[test]
    fn trace_survives_a_panicking_span() {
        let tel = Telemetry::enabled();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _outer = tel.span("core", "pass:compose");
            let _inner = tel.span("compose", "compose.block");
            panic!("injected");
        }));
        assert!(result.is_err());
        let json = tel.chrome_trace_json().unwrap();
        let summary = validate_chrome_trace(&json).unwrap();
        assert_eq!(summary.complete_spans, 2);
    }

    #[test]
    fn multi_thread_trace_balances_per_tid() {
        let tel = Telemetry::enabled();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let tel = tel.clone();
                scope.spawn(move || {
                    let _outer = tel.span("compose", "compose.block");
                    let _inner = tel.span("compose", "compose.layer");
                });
            }
        });
        let summary = validate_chrome_trace(&tel.chrome_trace_json().unwrap()).unwrap();
        assert_eq!(summary.complete_spans, 8);
    }

    #[test]
    fn unbalanced_traces_are_rejected() {
        let lone_end = r#"[{"name":"x","cat":"core","ph":"E","ts":1.0,"pid":1,"tid":1}]"#;
        assert!(validate_chrome_trace(lone_end).is_err());
        let lone_begin = r#"[{"name":"x","cat":"core","ph":"B","ts":1.0,"pid":1,"tid":1}]"#;
        assert!(validate_chrome_trace(lone_begin).is_err());
        let crossed = r#"[
            {"name":"a","cat":"core","ph":"B","ts":1.0,"pid":1,"tid":1},
            {"name":"b","cat":"core","ph":"B","ts":2.0,"pid":1,"tid":1},
            {"name":"a","cat":"core","ph":"E","ts":3.0,"pid":1,"tid":1},
            {"name":"b","cat":"core","ph":"E","ts":4.0,"pid":1,"tid":1}
        ]"#;
        assert!(validate_chrome_trace(crossed).is_err());
        assert!(validate_chrome_trace("not json").is_err());
    }

    #[test]
    fn empty_trace_is_valid() {
        let summary = validate_chrome_trace("[]").unwrap();
        assert_eq!(summary.events, 0);
        assert_eq!(summary.complete_spans, 0);
    }
}
