//! Named counters, gauges, and log₂ histograms.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Bucket index of `value` in a log₂ histogram: bucket 0 holds the
/// value 0 and bucket `i > 0` holds `[2^(i-1), 2^i)`.
pub fn histogram_bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive lower bound of bucket `index` (see
/// [`histogram_bucket_index`]).
pub fn histogram_bucket_lo(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(u64),
    Gauge {
        last: i64,
        max: i64,
    },
    Histogram {
        count: u64,
        sum: u64,
        buckets: Vec<u64>,
    },
}

/// Live metric store behind the recorder's mutex. Critical sections
/// are a map lookup plus an integer update.
#[derive(Debug, Default)]
pub(crate) struct Registry {
    metrics: BTreeMap<&'static str, Metric>,
}

impl Registry {
    pub(crate) fn counter_add(&mut self, name: &'static str, delta: u64) {
        match self.metrics.entry(name).or_insert(Metric::Counter(0)) {
            Metric::Counter(value) => *value = value.saturating_add(delta),
            _ => debug_assert!(false, "metric {name} is not a counter"),
        }
    }

    pub(crate) fn gauge_set(&mut self, name: &'static str, value: i64) {
        match self.metrics.entry(name).or_insert(Metric::Gauge {
            last: value,
            max: value,
        }) {
            Metric::Gauge { last, max } => {
                *last = value;
                *max = (*max).max(value);
            }
            _ => debug_assert!(false, "metric {name} is not a gauge"),
        }
    }

    pub(crate) fn histogram_record(&mut self, name: &'static str, value: u64) {
        match self.metrics.entry(name).or_insert(Metric::Histogram {
            count: 0,
            sum: 0,
            buckets: vec![0; 65],
        }) {
            Metric::Histogram {
                count,
                sum,
                buckets,
            } => {
                *count += 1;
                *sum = sum.saturating_add(value);
                buckets[histogram_bucket_index(value)] += 1;
            }
            _ => debug_assert!(false, "metric {name} is not a histogram"),
        }
    }

    pub(crate) fn counter_value(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(Metric::Counter(value)) => Some(*value),
            _ => None,
        }
    }

    pub(crate) fn snapshot(&self, spans_recorded: u64, spans_dropped: u64) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot {
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
            spans_recorded,
            spans_dropped,
        };
        for (&name, metric) in &self.metrics {
            match metric {
                Metric::Counter(value) => snap.counters.push(CounterEntry {
                    name: name.to_string(),
                    value: *value,
                }),
                Metric::Gauge { last, max } => snap.gauges.push(GaugeEntry {
                    name: name.to_string(),
                    last: *last,
                    max: *max,
                }),
                Metric::Histogram {
                    count,
                    sum,
                    buckets,
                } => {
                    let buckets = buckets
                        .iter()
                        .enumerate()
                        .filter(|&(_, &n)| n > 0)
                        .map(|(i, &n)| HistogramBucket {
                            lo: histogram_bucket_lo(i),
                            count: n,
                        })
                        .collect();
                    snap.histograms.push(HistogramEntry {
                        name: name.to_string(),
                        count: *count,
                        sum: *sum,
                        buckets,
                    });
                }
            }
        }
        snap
    }
}

/// Serializable snapshot of every metric plus span accounting; folded
/// into the bench `--report` JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotonic counters, sorted by name.
    pub counters: Vec<CounterEntry>,
    /// Gauges (last and max observed), sorted by name.
    pub gauges: Vec<GaugeEntry>,
    /// Log₂ histograms, sorted by name.
    pub histograms: Vec<HistogramEntry>,
    /// Spans successfully recorded.
    pub spans_recorded: u64,
    /// Spans lost to buffer overflow or lock contention.
    pub spans_dropped: u64,
}

impl MetricsSnapshot {
    /// Value of a named counter in this snapshot, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }
}

/// One counter in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterEntry {
    /// Metric name (e.g. `map.swaps_inserted`).
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// One gauge in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeEntry {
    /// Metric name (e.g. `supervisor.queue_depth`).
    pub name: String,
    /// Last value set.
    pub last: i64,
    /// Maximum value ever set.
    pub max: i64,
}

/// One histogram in a [`MetricsSnapshot`]. Only non-empty buckets are
/// listed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramEntry {
    /// Metric name (e.g. `compose.acceptance_permille`).
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (saturating).
    pub sum: u64,
    /// Occupied log₂ buckets in ascending order.
    pub buckets: Vec<HistogramBucket>,
}

/// One occupied bucket of a [`HistogramEntry`]: values in
/// `[lo, 2·lo)` (`lo = 0` holds exactly the value 0).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Inclusive lower bound of the bucket.
    pub lo: u64,
    /// Observations that landed in the bucket.
    pub count: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(histogram_bucket_index(0), 0);
        assert_eq!(histogram_bucket_index(1), 1);
        assert_eq!(histogram_bucket_index(2), 2);
        assert_eq!(histogram_bucket_index(3), 2);
        assert_eq!(histogram_bucket_index(4), 3);
        assert_eq!(histogram_bucket_index(7), 3);
        assert_eq!(histogram_bucket_index(8), 4);
        assert_eq!(histogram_bucket_index(1023), 10);
        assert_eq!(histogram_bucket_index(1024), 11);
        assert_eq!(histogram_bucket_index(u64::MAX), 64);
        for i in 1..=64 {
            let lo = histogram_bucket_lo(i);
            assert_eq!(histogram_bucket_index(lo), i);
            assert_eq!(histogram_bucket_index(lo - 1), i - 1);
        }
    }

    #[test]
    fn histogram_groups_values_into_buckets() {
        let mut reg = Registry::default();
        for v in [0, 1, 2, 3, 900, 1000] {
            reg.histogram_record("h", v);
        }
        let snap = reg.snapshot(0, 0);
        let h = &snap.histograms[0];
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1906);
        let by_lo: Vec<(u64, u64)> = h.buckets.iter().map(|b| (b.lo, b.count)).collect();
        assert_eq!(by_lo, vec![(0, 1), (1, 1), (2, 2), (512, 2)]);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let mut reg = Registry::default();
        reg.counter_add("c", 41);
        reg.counter_add("c", 1);
        reg.gauge_set("g", -3);
        reg.histogram_record("h", 9);
        let snap = reg.snapshot(10, 2);
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.counter("c"), Some(42));
    }

    #[test]
    fn counter_saturates_instead_of_overflowing() {
        let mut reg = Registry::default();
        reg.counter_add("c", u64::MAX);
        reg.counter_add("c", 5);
        assert_eq!(reg.counter_value("c"), Some(u64::MAX));
    }
}
