//! Tracing spans, metrics, and Chrome-trace export for the Geyser
//! pipeline.
//!
//! The subsystem is built around a single cheap [`Telemetry`] handle
//! that is threaded through `CompileContext` so every layer — pass
//! manager, mapper, blocker, composer, simulator, supervisor — can
//! open hierarchical spans and bump named metrics without knowing who
//! (if anyone) is listening.
//!
//! # Overhead contract
//!
//! A disabled handle ([`Telemetry::disabled`], also the `Default`)
//! carries no allocation at all: every instrumentation call is a
//! single `Option` check. An enabled handle additionally gates on an
//! atomic flag before any formatting or allocation happens, so a
//! runtime [`Telemetry::set_enabled`]`(false)` returns the pipeline to
//! near-zero overhead.
//!
//! Span records land in mutex-sharded **bounded** buffers via
//! `try_lock`: a full shard or a contended lock increments a drop
//! counter and discards the record instead of blocking compilation.
//! Overload can lose telemetry, never progress.
//!
//! # Determinism contract
//!
//! Timings are recorded but never read back by the pipeline, so a
//! seeded compilation is bit-identical with telemetry enabled or
//! disabled (`tests/telemetry.rs` asserts this end to end).
//!
//! # Exporters
//!
//! * [`Telemetry::chrome_trace_json`] — trace-event JSON with balanced
//!   `B`/`E` pairs, loadable in `chrome://tracing` or Perfetto.
//! * [`Telemetry::metrics_snapshot`] — counters, gauges, and log₂
//!   histograms as a serializable [`MetricsSnapshot`], folded into the
//!   bench `--report` JSON.

#![forbid(unsafe_code)]

mod export;
mod metrics;
mod span;

pub use export::{validate_chrome_trace, ChromeEvent, TraceSummary};
pub use metrics::{
    histogram_bucket_index, histogram_bucket_lo, CounterEntry, GaugeEntry, HistogramBucket,
    HistogramEntry, MetricsSnapshot,
};
pub use span::{SpanGuard, SpanRecord};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use metrics::Registry;

/// Per-shard span capacity of [`Telemetry::enabled`].
pub const DEFAULT_SPAN_CAPACITY: usize = 32_768;

/// Number of mutex shards the span buffer is split across. Threads map
/// to shards by thread id, so workers rarely contend.
const SHARDS: usize = 8;

static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(1);

pub(crate) struct Inner {
    /// Distinguishes this recorder on the thread-local parent stack so
    /// two live `Telemetry` instances never adopt each other's spans.
    pub(crate) instance: u64,
    /// Monotonic zero point all span timestamps are relative to.
    pub(crate) epoch: Instant,
    enabled: AtomicBool,
    next_span_id: AtomicU64,
    /// Global open/close sequence; per-thread span events stay in
    /// stack order under it, which is what makes the exported `B`/`E`
    /// stream balanced by construction.
    pub(crate) seq: AtomicU64,
    shards: Vec<Mutex<Vec<SpanRecord>>>,
    per_shard_capacity: usize,
    recorded: AtomicU64,
    dropped: AtomicU64,
    registry: Mutex<Registry>,
}

impl Inner {
    pub(crate) fn next_span_id(&self) -> u64 {
        self.next_span_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Files a finished span. Never blocks: a contended or full shard
    /// drops the record and accounts for it.
    pub(crate) fn record(&self, record: SpanRecord) {
        let shard = (record.tid as usize) % self.shards.len();
        match self.shards[shard].try_lock() {
            Ok(mut buf) if buf.len() < self.per_shard_capacity => {
                buf.push(record);
                self.recorded.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn registry(&self) -> MutexGuard<'_, Registry> {
        self.registry.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn collect_spans(&self) -> Vec<SpanRecord> {
        let mut all = Vec::new();
        for shard in &self.shards {
            let buf = shard.lock().unwrap_or_else(|e| e.into_inner());
            all.extend(buf.iter().cloned());
        }
        all.sort_by_key(|r| r.open_seq);
        all
    }
}

/// Cheap, clonable handle to the telemetry recorder (or to nothing).
///
/// The default handle is disabled; see the crate docs for the overhead
/// and determinism contracts.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// A handle that records nothing and allocates nothing.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled recorder with [`DEFAULT_SPAN_CAPACITY`] spans per
    /// shard.
    pub fn enabled() -> Self {
        Self::with_span_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// An enabled recorder bounded to `per_shard` span records in each
    /// of its shards. Overflow increments the drop counter instead of
    /// growing or blocking.
    pub fn with_span_capacity(per_shard: usize) -> Self {
        let inner = Inner {
            instance: NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            enabled: AtomicBool::new(true),
            next_span_id: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            per_shard_capacity: per_shard.max(1),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            registry: Mutex::new(Registry::default()),
        };
        Telemetry {
            inner: Some(Arc::new(inner)),
        }
    }

    /// Whether instrumentation is currently being recorded.
    pub fn is_enabled(&self) -> bool {
        self.active().is_some()
    }

    /// Flips recording on or off at runtime (no-op on a disabled
    /// handle). Spans already open keep recording when they close.
    pub fn set_enabled(&self, on: bool) {
        if let Some(inner) = &self.inner {
            inner.enabled.store(on, Ordering::Relaxed);
        }
    }

    fn active(&self) -> Option<&Arc<Inner>> {
        self.inner
            .as_ref()
            .filter(|inner| inner.enabled.load(Ordering::Relaxed))
    }

    /// Opens a span under category `cat` (by convention the crate
    /// short-name: `core`, `map`, `blocking`, `compose`, `sim`,
    /// `supervisor`, `bench`). The span closes — and is recorded —
    /// when the returned guard drops, including during unwinding, so a
    /// panicking pass never leaves an orphaned open span.
    pub fn span(&self, cat: &'static str, name: &'static str) -> SpanGuard {
        match self.active() {
            Some(inner) => SpanGuard::open(Arc::clone(inner), cat, name),
            None => SpanGuard::inert(),
        }
    }

    /// Adds `delta` to the named monotonic counter.
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        if let Some(inner) = self.active() {
            inner.registry().counter_add(name, delta);
        }
    }

    /// Sets the named gauge, tracking both the last and the maximum
    /// value observed.
    pub fn gauge_set(&self, name: &'static str, value: i64) {
        if let Some(inner) = self.active() {
            inner.registry().gauge_set(name, value);
        }
    }

    /// Records one observation into the named log₂-bucketed histogram.
    pub fn histogram_record(&self, name: &'static str, value: u64) {
        if let Some(inner) = self.active() {
            inner.registry().histogram_record(name, value);
        }
    }

    /// Current value of a counter, if it exists.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.inner
            .as_ref()
            .and_then(|inner| inner.registry().counter_value(name))
    }

    /// Spans recorded so far (drops excluded).
    pub fn spans_recorded(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.recorded.load(Ordering::Relaxed))
    }

    /// Spans lost to full or contended shards.
    pub fn spans_dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.dropped.load(Ordering::Relaxed))
    }

    /// All span records so far, ordered by open time. `None` on a
    /// disabled handle.
    pub fn span_records(&self) -> Option<Vec<SpanRecord>> {
        self.inner.as_ref().map(|inner| inner.collect_spans())
    }

    /// Metrics snapshot (counters, gauges, histograms plus span
    /// accounting). `None` on a disabled handle.
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        self.inner.as_ref().map(|inner| {
            inner.registry().snapshot(
                inner.recorded.load(Ordering::Relaxed),
                inner.dropped.load(Ordering::Relaxed),
            )
        })
    }

    /// Renders every recorded span as Chrome trace-event JSON
    /// (balanced `B`/`E` pairs; open `chrome://tracing` or Perfetto
    /// and load the file). `None` on a disabled handle.
    pub fn chrome_trace_json(&self) -> Option<String> {
        self.inner
            .as_ref()
            .map(|inner| export::chrome_trace_json(&inner.collect_spans()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        let mut span = tel.span("core", "nothing");
        span.attr("k", 1);
        drop(span);
        tel.counter_add("c", 1);
        assert_eq!(tel.spans_recorded(), 0);
        assert!(tel.metrics_snapshot().is_none());
        assert!(tel.chrome_trace_json().is_none());
    }

    #[test]
    fn default_handle_is_disabled() {
        assert!(!Telemetry::default().is_enabled());
    }

    #[test]
    fn spans_nest_parent_child_on_one_thread() {
        let tel = Telemetry::enabled();
        {
            let _outer = tel.span("core", "outer");
            let _inner = tel.span("map", "inner");
        }
        let records = tel.span_records().unwrap();
        assert_eq!(records.len(), 2);
        let outer = records.iter().find(|r| r.name == "outer").unwrap();
        let inner = records.iter().find(|r| r.name == "inner").unwrap();
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.tid, inner.tid);
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let tel = Telemetry::enabled();
        {
            let _root = tel.span("core", "root");
            drop(tel.span("map", "a"));
            drop(tel.span("map", "b"));
        }
        let records = tel.span_records().unwrap();
        let root_id = records.iter().find(|r| r.name == "root").unwrap().id;
        for name in ["a", "b"] {
            let r = records.iter().find(|r| r.name == name).unwrap();
            assert_eq!(r.parent, Some(root_id));
        }
    }

    #[test]
    fn two_instances_do_not_adopt_each_others_spans() {
        let a = Telemetry::enabled();
        let b = Telemetry::enabled();
        let _outer_a = a.span("core", "outer-a");
        {
            let _inner_b = b.span("core", "inner-b");
        }
        let records = b.span_records().unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].parent, None, "span crossed instances");
    }

    #[test]
    fn overflow_counts_drops_without_blocking() {
        let tel = Telemetry::with_span_capacity(2);
        for _ in 0..10 {
            drop(tel.span("core", "s"));
        }
        assert_eq!(tel.spans_recorded(), 2);
        assert_eq!(tel.spans_dropped(), 8);
        let snap = tel.metrics_snapshot().unwrap();
        assert_eq!(snap.spans_dropped, 8);
    }

    #[test]
    fn runtime_disable_stops_recording() {
        let tel = Telemetry::enabled();
        drop(tel.span("core", "kept"));
        tel.set_enabled(false);
        drop(tel.span("core", "lost"));
        tel.counter_add("lost", 1);
        assert_eq!(tel.spans_recorded(), 1);
        assert_eq!(tel.counter_value("lost"), None);
        tel.set_enabled(true);
        drop(tel.span("core", "kept-again"));
        assert_eq!(tel.spans_recorded(), 2);
    }

    #[test]
    fn attrs_are_recorded_in_order() {
        let tel = Telemetry::enabled();
        {
            let mut span = tel.span("compose", "block");
            span.attr("index", 3);
            span.attr("outcome", "composed");
        }
        let records = tel.span_records().unwrap();
        assert_eq!(
            records[0].attrs,
            vec![
                ("index", "3".to_string()),
                ("outcome", "composed".to_string())
            ]
        );
    }

    #[test]
    fn cross_thread_spans_get_distinct_tids() {
        let tel = Telemetry::enabled();
        {
            let _main = tel.span("core", "main");
            std::thread::scope(|scope| {
                for _ in 0..2 {
                    let tel = tel.clone();
                    scope.spawn(move || {
                        let _w = tel.span("compose", "worker");
                    });
                }
            });
        }
        let records = tel.span_records().unwrap();
        let main_tid = records.iter().find(|r| r.name == "main").unwrap().tid;
        for worker in records.iter().filter(|r| r.name == "worker") {
            assert_ne!(worker.tid, main_tid);
            // Worker spans root their own thread, not the main span.
            assert_eq!(worker.parent, None);
        }
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        let tel = Telemetry::enabled();
        tel.counter_add("map.swaps_inserted", 3);
        tel.counter_add("map.swaps_inserted", 4);
        tel.gauge_set("supervisor.queue_depth", 5);
        tel.gauge_set("supervisor.queue_depth", 2);
        tel.histogram_record("compose.acceptance_permille", 500);
        assert_eq!(tel.counter_value("map.swaps_inserted"), Some(7));
        let snap = tel.metrics_snapshot().unwrap();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counters[0].value, 7);
        let gauge = &snap.gauges[0];
        assert_eq!((gauge.last, gauge.max), (2, 5));
        assert_eq!(snap.histograms[0].count, 1);
    }
}
