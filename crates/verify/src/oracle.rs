//! The equivalence oracle: is a compiled circuit semantically
//! equivalent to its source program?
//!
//! Two tiers, chosen by circuit size:
//!
//! * **Exact isometry** (small circuits): the compiled circuit acts on
//!   lattice nodes, the source on logical qubits, so the object under
//!   test is the isometry `V = (compiled) · embed_init` restricted to
//!   the logical subspace. For every logical basis state `x` the
//!   oracle simulates the compiled circuit on the embedded input and
//!   accumulates `s = Σ_x ⟨embed_final(source·x) | compiled·embed_init(x)⟩
//!   = Tr(V_expected† V_actual)`. `|s| / 2^n = 1` exactly when the two
//!   isometries agree up to one global phase — per-column (relative)
//!   phase errors strictly reduce `|s|`.
//! * **State probes** (large circuits): `N` seeded random product
//!   states are pushed through both sides; each probe's fidelity
//!   `|⟨expected|actual⟩|²` must stay above threshold. Random
//!   superposition inputs catch relative-phase and entanglement errors
//!   that computational-basis checks (TVD spot checks) cannot see.
//!
//! Composition is approximate by design (per-block HSD ≤ ε), so the
//! acceptance threshold for composed circuits is widened by a
//! triangle-inequality allowance derived from the composition stats;
//! exact pipelines (Baseline, OptiMap, SC) are held to the raw
//! tolerance.

use std::time::Instant;

use geyser_circuit::Circuit;
use geyser_map::MappedCircuit;
use geyser_num::{hilbert_schmidt_distance, CMatrix, Complex};
use geyser_sim::{circuit_unitary, StateVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Largest physical register the probe tier will statevector-simulate
/// (memory: `2^22` amplitudes ≈ 64 MiB).
const PROBE_MAX_NODES: usize = 22;

/// Slack added to ε comparisons so a candidate sitting exactly on the
/// boundary is not rejected by round-off (mirrors the composer's
/// historical re-verification check).
const EPSILON_SLACK: f64 = 1e-9;

/// Oracle configuration: tier cut-offs, tolerances, probe seeding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerifyConfig {
    /// Exact tier runs when the source has at most this many logical
    /// qubits (cost: `2^n` simulations of the compiled circuit).
    pub exact_max_qubits: usize,
    /// ... and the compiled circuit at most this many lattice nodes.
    pub exact_max_nodes: usize,
    /// Random product-state probes for the probe tier.
    pub probes: usize,
    /// Exact-tier acceptance: fidelity ≥ 1 − this.
    pub exact_tolerance: f64,
    /// Probe-tier acceptance: per-probe fidelity ≥ 1 − this.
    pub probe_tolerance: f64,
    /// Seed for the probe-state generator.
    pub seed: u64,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            exact_max_qubits: 10,
            exact_max_nodes: 13,
            probes: 8,
            exact_tolerance: 1e-9,
            probe_tolerance: 1e-6,
            seed: 0,
        }
    }
}

impl VerifyConfig {
    /// Returns a copy with the given probe seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Which comparison the oracle ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyMethod {
    /// Full isometry comparison over every logical basis state.
    ExactUnitary,
    /// Seeded random product-state probing.
    StateProbes,
    /// The circuit was too large to simulate; only structural checks
    /// (register size, node space) ran. Fidelity is not measured.
    Structural,
}

impl VerifyMethod {
    /// Stable kebab-case label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            VerifyMethod::ExactUnitary => "exact-unitary",
            VerifyMethod::StateProbes => "state-probes",
            VerifyMethod::Structural => "structural",
        }
    }
}

/// The oracle's verdict on one (source, compiled) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct EquivalenceReport {
    /// Which tier ran.
    pub method: VerifyMethod,
    /// Basis columns (exact tier) or probe states evaluated.
    pub probes: u64,
    /// Smallest fidelity observed (`|s|/2^n` for the exact tier);
    /// `-1.0` when the structural tier measured nothing.
    pub worst_fidelity: f64,
    /// Effective threshold used: fidelity ≥ 1 − tolerance passes.
    pub tolerance: f64,
    /// Whether the compiled circuit passed.
    pub equivalent: bool,
    /// Oracle wall-clock seconds.
    pub seconds: f64,
    /// Failure context (structural mismatches, NaN states).
    pub detail: Option<String>,
}

/// How logical qubits sit inside the compiled circuit's register:
/// logical qubit `q` enters at node `initial[q]` and is read out from
/// node `final_[q]`; all other nodes start — and must end — in `|0⟩`.
#[derive(Debug, Clone)]
pub struct Embedding {
    logical: usize,
    nodes: usize,
    initial: Vec<usize>,
    final_: Vec<usize>,
}

impl Embedding {
    /// The embedding recorded by a mapped circuit's layouts.
    pub fn from_mapped(mapped: &MappedCircuit) -> Self {
        let n = mapped.num_logical();
        Embedding {
            logical: n,
            nodes: mapped.circuit().num_qubits(),
            initial: (0..n).map(|q| mapped.initial_layout().node_of(q)).collect(),
            final_: (0..n).map(|q| mapped.final_layout().node_of(q)).collect(),
        }
    }

    /// Identity embedding: compiled and source share a register.
    pub fn identity(num_qubits: usize) -> Self {
        Embedding {
            logical: num_qubits,
            nodes: num_qubits,
            initial: (0..num_qubits).collect(),
            final_: (0..num_qubits).collect(),
        }
    }

    /// Basis index of the node register holding logical basis state
    /// `x` at the given node assignment, idle nodes `|0⟩`. Bit
    /// conventions follow `MappedCircuit::logical_distribution`:
    /// qubit/node 0 is the most significant bit.
    fn embed_index(&self, x: usize, assignment: &[usize]) -> usize {
        let mut index = 0usize;
        for (q, &node) in assignment.iter().enumerate().take(self.logical) {
            if (x >> (self.logical - 1 - q)) & 1 == 1 {
                index |= 1 << (self.nodes - 1 - node);
            }
        }
        index
    }

    /// `⟨embed_final(expected) | actual⟩`: the overlap of the full
    /// node-register state with the expected logical state embedded at
    /// the final layout (idle nodes `|0⟩`). Any amplitude the compiled
    /// circuit leaks outside that subspace reduces the overlap.
    fn final_overlap(&self, expected: &StateVector, actual: &StateVector) -> Complex {
        let amps = actual.amplitudes();
        let exp = expected.amplitudes();
        let mut overlap = Complex::ZERO;
        for (y, e) in exp.iter().enumerate() {
            overlap += amps[self.embed_index(y, &self.final_)].conj() * *e;
        }
        overlap
    }
}

/// Verifies a mapped compilation against its source program.
///
/// `allowance` widens the tolerance for approximate (composed)
/// pipelines — see [`composition_allowance`]; pass `0.0` for exact
/// pipelines.
pub fn verify_mapped(
    source: &Circuit,
    mapped: &MappedCircuit,
    allowance: f64,
    cfg: &VerifyConfig,
) -> EquivalenceReport {
    if mapped.num_logical() != source.num_qubits() {
        return structural_failure(format!(
            "register mismatch: program has {} qubits, compiled circuit tracks {}",
            source.num_qubits(),
            mapped.num_logical()
        ));
    }
    verify_embedded(
        source,
        mapped.circuit(),
        &Embedding::from_mapped(mapped),
        allowance,
        cfg,
    )
}

/// Verifies two circuits over the same register (identity embedding) —
/// the form unit tests and the minimizer use.
pub fn verify_circuits(
    source: &Circuit,
    compiled: &Circuit,
    cfg: &VerifyConfig,
) -> EquivalenceReport {
    if source.num_qubits() != compiled.num_qubits() {
        return structural_failure(format!(
            "register mismatch: source has {} qubits, compiled {}",
            source.num_qubits(),
            compiled.num_qubits()
        ));
    }
    verify_embedded(
        source,
        compiled,
        &Embedding::identity(source.num_qubits()),
        0.0,
        cfg,
    )
}

/// The tier dispatcher both entry points share.
pub fn verify_embedded(
    source: &Circuit,
    compiled: &Circuit,
    embedding: &Embedding,
    allowance: f64,
    cfg: &VerifyConfig,
) -> EquivalenceReport {
    let start = Instant::now();
    let n = embedding.logical;
    let nodes = embedding.nodes;
    if n <= cfg.exact_max_qubits && nodes <= cfg.exact_max_nodes {
        let (fidelity, columns) = exact_isometry_fidelity(source, compiled, embedding);
        return finish(
            start,
            VerifyMethod::ExactUnitary,
            columns,
            fidelity,
            cfg.exact_tolerance + allowance,
        );
    }
    if nodes <= PROBE_MAX_NODES {
        let (worst, probes) = probe_fidelity(source, compiled, embedding, cfg);
        return finish(
            start,
            VerifyMethod::StateProbes,
            probes,
            worst,
            cfg.probe_tolerance + allowance,
        );
    }
    // Too large to simulate at all: structural checks passed above, so
    // record an unmeasured pass rather than blocking huge circuits.
    EquivalenceReport {
        method: VerifyMethod::Structural,
        probes: 0,
        worst_fidelity: -1.0,
        tolerance: 0.0,
        equivalent: true,
        seconds: start.elapsed().as_secs_f64(),
        detail: Some(format!(
            "{nodes}-node register exceeds the {PROBE_MAX_NODES}-node simulation cap"
        )),
    }
}

fn finish(
    start: Instant,
    method: VerifyMethod,
    probes: u64,
    worst_fidelity: f64,
    tolerance: f64,
) -> EquivalenceReport {
    let equivalent = worst_fidelity.is_finite() && worst_fidelity >= 1.0 - tolerance;
    EquivalenceReport {
        method,
        probes,
        worst_fidelity,
        tolerance,
        equivalent,
        seconds: start.elapsed().as_secs_f64(),
        detail: (!equivalent).then(|| {
            format!(
                "worst fidelity {worst_fidelity:.9} below threshold {:.9}",
                1.0 - tolerance
            )
        }),
    }
}

fn structural_failure(detail: String) -> EquivalenceReport {
    EquivalenceReport {
        method: VerifyMethod::Structural,
        probes: 0,
        worst_fidelity: -1.0,
        tolerance: 0.0,
        equivalent: false,
        seconds: 0.0,
        detail: Some(detail),
    }
}

/// `(|Tr(V_expected† V_actual)| / 2^n, columns)` — exactly `1.0` when
/// the compiled isometry equals the source up to one global phase.
fn exact_isometry_fidelity(
    source: &Circuit,
    compiled: &Circuit,
    embedding: &Embedding,
) -> (f64, u64) {
    let n = embedding.logical;
    let dim = 1usize << n;
    let mut s = Complex::ZERO;
    for x in 0..dim {
        let mut actual = StateVector::basis_state(
            embedding.nodes,
            embedding.embed_index(x, &embedding.initial),
        );
        actual.apply_circuit(compiled);
        let mut expected = StateVector::basis_state(n, x);
        expected.apply_circuit(source);
        s += embedding.final_overlap(&expected, &actual);
    }
    (s.norm() / dim as f64, dim as u64)
}

/// Worst `|⟨expected|actual⟩|²` over seeded random product-state
/// probes.
fn probe_fidelity(
    source: &Circuit,
    compiled: &Circuit,
    embedding: &Embedding,
    cfg: &VerifyConfig,
) -> (f64, u64) {
    let n = embedding.logical;
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5eed);
    let mut worst = f64::INFINITY;
    let probes = cfg.probes.max(1);
    for _ in 0..probes {
        let mut prep_logical = Circuit::new(n);
        let mut prep_nodes = Circuit::new(embedding.nodes);
        for q in 0..n {
            let theta = rng.gen::<f64>() * std::f64::consts::PI;
            let phi = rng.gen::<f64>() * std::f64::consts::TAU;
            let lambda = rng.gen::<f64>() * std::f64::consts::TAU;
            prep_logical.u3(theta, phi, lambda, q);
            prep_nodes.u3(theta, phi, lambda, embedding.initial[q]);
        }
        let mut actual = StateVector::zero_state(embedding.nodes);
        actual.apply_circuit(&prep_nodes);
        actual.apply_circuit(compiled);
        let mut expected = StateVector::zero_state(n);
        expected.apply_circuit(&prep_logical);
        expected.apply_circuit(source);
        let fidelity = embedding.final_overlap(&expected, &actual).norm_sqr();
        if !fidelity.is_finite() {
            return (f64::NAN, probes as u64);
        }
        worst = worst.min(fidelity);
    }
    (worst, probes as u64)
}

/// Tolerance widening for composed circuits: each composed block
/// replaced a unitary within HSD δ, i.e. Frobenius distance
/// `√(2dδ)` (d = 8) up to phase, so the end-to-end state error is at
/// most `Σ_b 4√δ_b ≤ 4·blocks·√δ_max` and the fidelity loss at most
/// twice that. Exact pipelines (no composed blocks) get `0.0`.
///
/// This is the worst-case triangle-inequality bound; measured
/// fidelities are typically orders of magnitude tighter, and the
/// measured value is always recorded alongside the threshold.
pub fn composition_allowance(blocks_composed: usize, max_accepted_hsd: f64) -> f64 {
    if blocks_composed == 0 || !max_accepted_hsd.is_finite() {
        return 0.0;
    }
    8.0 * blocks_composed as f64 * max_accepted_hsd.max(0.0).sqrt()
}

/// A composed block candidate checked against its target unitary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockCheck {
    /// Hilbert–Schmidt distance between the candidate circuit's
    /// unitary and the target.
    pub hsd: f64,
    /// Whether the candidate is acceptable at the given ε.
    pub accepted: bool,
}

/// Re-verifies a block candidate *circuit* against the block unitary —
/// the shared check both the composer's acceptance path and the
/// whole-circuit oracle trust, so they can never disagree. A
/// non-finite distance (NaN-poisoned candidate) is always rejected.
pub fn verify_block_candidate(candidate: &Circuit, target: &CMatrix, epsilon: f64) -> BlockCheck {
    let hsd = hilbert_schmidt_distance(&circuit_unitary(candidate), target);
    BlockCheck {
        hsd,
        accepted: hsd.is_finite() && hsd <= epsilon + EPSILON_SLACK,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> VerifyConfig {
        VerifyConfig::default()
    }

    #[test]
    fn identical_circuits_are_equivalent() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ccz(0, 1, 2).t(2);
        let report = verify_circuits(&c, &c, &cfg());
        assert!(report.equivalent, "{report:?}");
        assert_eq!(report.method, VerifyMethod::ExactUnitary);
        assert!(report.worst_fidelity > 1.0 - 1e-12);
    }

    #[test]
    fn global_phase_difference_passes() {
        // p(θ) = e^{iθ/2}·rz(θ): pure global phase apart.
        let mut a = Circuit::new(2);
        a.p(0.7, 0).cx(0, 1);
        let mut b = Circuit::new(2);
        b.rz(0.7, 0).cx(0, 1);
        let report = verify_circuits(&a, &b, &cfg());
        assert!(report.equivalent, "{report:?}");
    }

    #[test]
    fn relative_phase_error_fails() {
        // rz(θ) on only one branch of a superposition is a *relative*
        // phase error that no distribution check can see.
        let mut a = Circuit::new(1);
        a.h(0);
        let mut b = Circuit::new(1);
        b.h(0).rz(0.3, 0);
        let report = verify_circuits(&a, &b, &cfg());
        assert!(!report.equivalent, "{report:?}");
    }

    #[test]
    fn corrupted_gate_fails() {
        let mut a = Circuit::new(2);
        a.h(0).cx(0, 1);
        let mut b = Circuit::new(2);
        b.h(0).t(0).cx(0, 1);
        let report = verify_circuits(&a, &b, &cfg());
        assert!(!report.equivalent);
        assert!(report.worst_fidelity < 1.0 - 1e-6);
    }

    #[test]
    fn register_mismatch_is_structural_failure() {
        let a = Circuit::new(2);
        let b = Circuit::new(3);
        let report = verify_circuits(&a, &b, &cfg());
        assert!(!report.equivalent);
        assert_eq!(report.method, VerifyMethod::Structural);
        assert!(report.detail.is_some());
    }

    #[test]
    fn probe_tier_engages_above_exact_cutoff() {
        let small_exact = VerifyConfig {
            exact_max_qubits: 2,
            exact_max_nodes: 2,
            ..VerifyConfig::default()
        };
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let report = verify_circuits(&c, &c, &small_exact);
        assert_eq!(report.method, VerifyMethod::StateProbes);
        assert!(report.equivalent, "{report:?}");
        assert_eq!(report.probes, small_exact.probes as u64);
    }

    #[test]
    fn probe_tier_catches_corruption() {
        let small_exact = VerifyConfig {
            exact_max_qubits: 2,
            exact_max_nodes: 2,
            ..VerifyConfig::default()
        };
        let mut a = Circuit::new(3);
        a.h(0).cx(0, 1).cx(1, 2);
        let mut b = Circuit::new(3);
        b.h(0).cx(0, 1).rx(0.4, 2).cx(1, 2);
        let report = verify_circuits(&a, &b, &small_exact);
        assert!(!report.equivalent, "{report:?}");
    }

    #[test]
    fn probe_tier_is_deterministic_per_seed() {
        let vc = VerifyConfig {
            exact_max_qubits: 1,
            exact_max_nodes: 1,
            ..VerifyConfig::default()
        };
        let mut a = Circuit::new(2);
        a.h(0).cx(0, 1);
        let mut b = Circuit::new(2);
        b.h(0).cx(0, 1).rz(1e-4, 1);
        let r1 = verify_circuits(&a, &b, &vc);
        let r2 = verify_circuits(&a, &b, &vc);
        assert_eq!(r1.worst_fidelity.to_bits(), r2.worst_fidelity.to_bits());
        let r3 = verify_circuits(&a, &b, &vc.with_seed(99));
        assert_ne!(r1.worst_fidelity.to_bits(), r3.worst_fidelity.to_bits());
    }

    #[test]
    fn allowance_is_zero_without_composed_blocks() {
        assert_eq!(composition_allowance(0, 1e-3), 0.0);
        assert!(composition_allowance(4, 1e-8) > 0.0);
        assert!(composition_allowance(4, 1e-8) < 1e-2);
    }

    #[test]
    fn block_candidate_check_matches_hsd_semantics() {
        let mut candidate = Circuit::new(3);
        candidate.h(0);
        let target = circuit_unitary(&candidate);
        let check = verify_block_candidate(&candidate, &target, 1e-3);
        assert!(check.accepted);
        assert!(check.hsd < 1e-12);
        let mut corrupted = candidate.clone();
        corrupted.t(0);
        let check = verify_block_candidate(&corrupted, &target, 1e-3);
        assert!(!check.accepted);
        assert!(check.hsd > 1e-3);
    }
}
