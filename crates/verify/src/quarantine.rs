//! Quarantine corpus: failing reproducers persisted to disk.
//!
//! Each entry is one JSON file under the quarantine directory,
//! `<id>.json`, holding the minimized reproducer as embedded QASM-lite
//! plus everything needed to re-run it bit-identically: the fuzz-case
//! seed, pipeline config tag, technique, injected fault spec (if the
//! failure was seeded deliberately), and the oracle verdict that
//! condemned it. Writes are atomic (`.tmp` + rename) so a crash
//! mid-write can never leave a half-entry that poisons `replay`.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use geyser_circuit::{from_qasm, to_qasm, Circuit};
use geyser_hardware::HardwareSpec;
use serde::{Deserialize, Error, Serialize, Value};

/// One quarantined failure: metadata plus the minimized reproducer.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct QuarantineEntry {
    /// Entry identifier; also the file stem.
    pub id: String,
    /// Fuzz-case id that produced the failure (e.g.
    /// `case-0003-adder-4`), or a free-form origin for hand-filed
    /// entries.
    pub case_id: String,
    /// Technique label whose pipeline failed (e.g. `Geyser`).
    pub technique: String,
    /// Pipeline config tag (e.g. `s7-fast-st1`) for reproduction.
    pub config: String,
    /// Derived RNG seed of the fuzz case.
    pub seed: u64,
    /// Fault spec injected when the failure was found, if any. Present
    /// means the failure is *expected* — replay asserts it still
    /// reproduces; absent means a genuine bug — replay fails the build
    /// until the compiler is fixed.
    pub inject: Option<String>,
    /// Failure kind: `miscompile` (oracle rejected the output) or
    /// `compile-error: <detail>`.
    pub failure: String,
    /// Oracle method label that condemned the circuit.
    pub method: String,
    /// Worst fidelity the oracle measured (`-1.0` if unmeasured, e.g.
    /// for compile errors).
    pub worst_fidelity: f64,
    /// Fidelity tolerance in force at the time.
    pub tolerance: f64,
    /// Gate count before minimization.
    pub original_ops: u64,
    /// Gate count of the minimized reproducer.
    pub minimized_ops: u64,
    /// The minimized reproducer as QASM-lite. Angle formatting uses
    /// shortest-roundtrip `f64` display, so parse → emit → parse is
    /// bit-exact and replay sees the same circuit bit for bit.
    pub qasm: String,
    /// Wall-clock milliseconds the minimized reproducer's compile took
    /// when the entry was filed — lets replay runs spot
    /// reproducer-cost regressions across compiler versions. `None`
    /// for entries written before cost tracking existed.
    pub compile_ms: Option<u64>,
    /// Annealer objective evaluations the reproducer's composition
    /// consumed when the entry was filed. `None` for pre-cost-tracking
    /// entries or techniques that never compose.
    pub anneal_evaluations: Option<u64>,
    /// The full hardware scenario the failure was found on, so replay
    /// reproduces hardware-dependent failures on the same machine.
    /// `None` (and for entries filed before hardware fuzzing existed)
    /// means the paper machine.
    pub hardware: Option<HardwareSpec>,
    /// Whether the composition-reuse index was enabled when the
    /// failure was found, so replay takes the same compose path
    /// (replays and warm-starts included). Entries filed before reuse
    /// existed load as `false`.
    pub reuse: bool,
}

// Hand-written so corpora filed before the cost-metadata and
// hardware-spec fields existed still load (the derive rejects missing
// fields): absent `compile_ms`/`anneal_evaluations`/`hardware` keys
// deserialize as `None`.
impl Deserialize for QuarantineEntry {
    fn from_value(value: &Value) -> Result<Self, Error> {
        fn optional<T: Deserialize>(value: &Value, name: &str) -> Result<Option<T>, Error> {
            match value.get_field(name) {
                Ok(v) => Deserialize::from_value(v),
                Err(_) => Ok(None),
            }
        }
        Ok(QuarantineEntry {
            id: Deserialize::from_value(value.get_field("id")?)?,
            case_id: Deserialize::from_value(value.get_field("case_id")?)?,
            technique: Deserialize::from_value(value.get_field("technique")?)?,
            config: Deserialize::from_value(value.get_field("config")?)?,
            seed: Deserialize::from_value(value.get_field("seed")?)?,
            inject: Deserialize::from_value(value.get_field("inject")?)?,
            failure: Deserialize::from_value(value.get_field("failure")?)?,
            method: Deserialize::from_value(value.get_field("method")?)?,
            worst_fidelity: Deserialize::from_value(value.get_field("worst_fidelity")?)?,
            tolerance: Deserialize::from_value(value.get_field("tolerance")?)?,
            original_ops: Deserialize::from_value(value.get_field("original_ops")?)?,
            minimized_ops: Deserialize::from_value(value.get_field("minimized_ops")?)?,
            qasm: Deserialize::from_value(value.get_field("qasm")?)?,
            compile_ms: optional(value, "compile_ms")?,
            anneal_evaluations: optional(value, "anneal_evaluations")?,
            hardware: optional(value, "hardware")?,
            reuse: optional(value, "reuse")?.unwrap_or(false),
        })
    }
}

impl QuarantineEntry {
    /// Parses the embedded reproducer.
    pub fn circuit(&self) -> Result<Circuit, String> {
        from_qasm(&self.qasm).map_err(|e| format!("quarantine entry {}: {e}", self.id))
    }

    /// Embeds a reproducer circuit as QASM-lite.
    pub fn set_circuit(&mut self, circuit: &Circuit) {
        self.qasm = to_qasm(circuit);
    }
}

/// Path of an entry file inside `dir`.
pub fn entry_path(dir: &Path, id: &str) -> PathBuf {
    dir.join(format!("{id}.json"))
}

/// Writes an entry atomically, creating the directory if needed.
/// Returns the entry's final path.
pub fn write_entry(dir: &Path, entry: &QuarantineEntry) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = entry_path(dir, &entry.id);
    let body = serde_json::to_string_pretty(entry)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let tmp = path.with_extension("json.tmp");
    fs::write(&tmp, body)?;
    fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Loads every `*.json` entry in `dir`, sorted by file name so replay
/// order is stable. A missing directory is an empty corpus; a corrupt
/// entry is a hard error (replay must not silently skip a reproducer).
pub fn load_entries(dir: &Path) -> io::Result<Vec<QuarantineEntry>> {
    let mut paths: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(iter) => iter
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().map(|x| x == "json").unwrap_or(false))
            .collect(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    paths.sort();
    let mut entries = Vec::with_capacity(paths.len());
    for path in paths {
        let body = fs::read_to_string(&path)?;
        let entry: QuarantineEntry = serde_json::from_str(&body).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("corrupt quarantine entry {}: {e}", path.display()),
            )
        })?;
        entries.push(entry);
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("geyser-quarantine-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample(id: &str) -> QuarantineEntry {
        let mut circuit = Circuit::new(3);
        circuit.h(0).u3(0.1, -2.5, 3.0, 1).cz(0, 1).ccz(0, 1, 2);
        let mut entry = QuarantineEntry {
            id: id.to_string(),
            case_id: "case-0001-adder-4".to_string(),
            technique: "Geyser".to_string(),
            config: "s7-fast-st1".to_string(),
            seed: 0xdead_beef,
            inject: Some("miscompile:0".to_string()),
            failure: "miscompile".to_string(),
            method: "exact-unitary".to_string(),
            worst_fidelity: 0.123456789,
            tolerance: 1e-9,
            original_ops: 40,
            minimized_ops: 4,
            qasm: String::new(),
            compile_ms: Some(12),
            anneal_evaluations: Some(4800),
            hardware: Some(HardwareSpec::near_term()),
            reuse: true,
        };
        entry.set_circuit(&circuit);
        entry
    }

    #[test]
    fn roundtrips_through_disk_bit_identically() {
        let dir = temp_dir("roundtrip");
        let entry = sample("q-0001");
        write_entry(&dir, &entry).unwrap();
        let loaded = load_entries(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0], entry);
        // The embedded circuit survives parse → emit → parse exactly.
        let circuit = loaded[0].circuit().unwrap();
        assert_eq!(to_qasm(&circuit), loaded[0].qasm);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn entries_load_sorted_by_id() {
        let dir = temp_dir("sorted");
        for id in ["q-0003", "q-0001", "q-0002"] {
            write_entry(&dir, &sample(id)).unwrap();
        }
        let ids: Vec<String> = load_entries(&dir)
            .unwrap()
            .into_iter()
            .map(|e| e.id)
            .collect();
        assert_eq!(ids, ["q-0001", "q-0002", "q-0003"]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn entries_without_cost_metadata_still_load() {
        // Corpora filed before compile_ms/anneal_evaluations existed
        // must keep loading, with the cost fields absent.
        struct Raw(Value);
        impl serde::Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let entry = sample("q-oldfmt");
        let Value::Map(fields) = serde::Serialize::to_value(&entry) else {
            panic!("entries serialize as maps");
        };
        let pruned: Vec<(String, Value)> = fields
            .into_iter()
            .filter(|(k, _)| k != "compile_ms" && k != "anneal_evaluations")
            .collect();
        let body = serde_json::to_string(&Raw(Value::Map(pruned))).unwrap();
        let loaded: QuarantineEntry = serde_json::from_str(&body).unwrap();
        assert_eq!(loaded.compile_ms, None);
        assert_eq!(loaded.anneal_evaluations, None);
        assert_eq!(loaded.qasm, entry.qasm);
        assert_eq!(loaded.seed, entry.seed);
    }

    #[test]
    fn entries_without_hardware_spec_still_load() {
        // Corpora filed before hardware fuzzing existed carry no
        // `hardware` key; they must load with `None` (paper machine).
        struct Raw(Value);
        impl serde::Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let entry = sample("q-prehw");
        let Value::Map(fields) = serde::Serialize::to_value(&entry) else {
            panic!("entries serialize as maps");
        };
        let pruned: Vec<(String, Value)> = fields
            .into_iter()
            .filter(|(k, _)| k != "hardware")
            .collect();
        let body = serde_json::to_string(&Raw(Value::Map(pruned))).unwrap();
        let loaded: QuarantineEntry = serde_json::from_str(&body).unwrap();
        assert_eq!(loaded.hardware, None);
        assert_eq!(loaded.seed, entry.seed);
    }

    #[test]
    fn recorded_hardware_spec_roundtrips_with_its_digest() {
        let dir = temp_dir("hardware");
        let entry = sample("q-hw");
        write_entry(&dir, &entry).unwrap();
        let loaded = load_entries(&dir).unwrap();
        let spec = loaded[0].hardware.as_ref().expect("spec recorded");
        assert_eq!(
            spec.digest(),
            HardwareSpec::near_term().digest(),
            "replay must see the exact machine the failure was found on"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn entries_without_reuse_flag_still_load() {
        // Corpora filed before the reuse index existed carry no
        // `reuse` key; they must load with reuse off.
        struct Raw(Value);
        impl serde::Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let entry = sample("q-prereuse");
        let Value::Map(fields) = serde::Serialize::to_value(&entry) else {
            panic!("entries serialize as maps");
        };
        let pruned: Vec<(String, Value)> =
            fields.into_iter().filter(|(k, _)| k != "reuse").collect();
        let body = serde_json::to_string(&Raw(Value::Map(pruned))).unwrap();
        let loaded: QuarantineEntry = serde_json::from_str(&body).unwrap();
        assert!(!loaded.reuse);
        assert_eq!(loaded.seed, entry.seed);
    }

    #[test]
    fn missing_directory_is_empty_corpus() {
        let dir = temp_dir("missing");
        assert!(load_entries(&dir).unwrap().is_empty());
    }

    #[test]
    fn corrupt_entry_is_a_hard_error() {
        let dir = temp_dir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("bad.json"), "{ nope").unwrap();
        assert!(load_entries(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn writes_are_atomic_no_tmp_left_behind() {
        let dir = temp_dir("atomic");
        write_entry(&dir, &sample("q-0009")).unwrap();
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().map(|x| x == "tmp").unwrap_or(false))
            .collect();
        assert!(leftovers.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
