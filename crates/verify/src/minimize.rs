//! Delta-debugging minimizer: shrinks a failing circuit to a
//! local-minimum reproducer.
//!
//! Classic ddmin over the operation list: try removing contiguous
//! chunks at decreasing granularity, keeping any removal after which
//! the failure predicate still holds. The result is 1-minimal with
//! respect to single-op removal — deleting any one remaining
//! operation makes the failure disappear — which is what makes
//! quarantined reproducers small enough to debug by eye.
//!
//! The minimizer is fully deterministic (no RNG): the same failing
//! circuit and predicate always shrink to the same reproducer, which
//! keeps quarantine corpora and their replays stable.

use geyser_circuit::{Circuit, Operation};

use crate::fuzz::rebuild;

/// How the minimization went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinimizeStats {
    /// Operations in the circuit handed in.
    pub original_ops: usize,
    /// Operations in the minimized reproducer.
    pub minimized_ops: usize,
    /// Predicate evaluations spent (each one is a compile+verify).
    pub predicate_calls: usize,
}

/// Shrinks `circuit` while `still_failing` holds, returning the
/// local-minimum reproducer and shrink statistics.
///
/// `still_failing` must return `true` for the input circuit itself;
/// if it does not (a flaky failure), the circuit is returned
/// unchanged with `minimized_ops == original_ops`.
pub fn minimize<F>(circuit: &Circuit, mut still_failing: F) -> (Circuit, MinimizeStats)
where
    F: FnMut(&Circuit) -> bool,
{
    let n = circuit.num_qubits();
    let original: Vec<Operation> = circuit.ops().to_vec();
    let mut stats = MinimizeStats {
        original_ops: original.len(),
        minimized_ops: original.len(),
        predicate_calls: 1,
    };
    if !still_failing(circuit) {
        return (circuit.clone(), stats);
    }

    let mut current = original;
    let mut chunk = (current.len() / 2).max(1);
    loop {
        let mut removed_any = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let mut candidate = current.clone();
            candidate.drain(start..end);
            stats.predicate_calls += 1;
            if still_failing(&rebuild(n, candidate.clone())) {
                current = candidate;
                removed_any = true;
                // The next chunk has shifted into `start`; retry there.
            } else {
                start = end;
            }
        }
        if chunk == 1 {
            if !removed_any {
                break;
            }
            // Removals shift neighbours; sweep again until a full
            // single-op pass removes nothing (1-minimality).
        } else if !removed_any {
            chunk = (chunk / 2).max(1);
        }
    }

    stats.minimized_ops = current.len();
    (rebuild(n, current), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geyser_circuit::Gate;

    /// Predicate: "fails" iff the circuit still contains a T gate.
    fn has_t(circuit: &Circuit) -> bool {
        circuit.ops().iter().any(|op| *op.gate() == Gate::T)
    }

    #[test]
    fn shrinks_to_single_culprit_op() {
        let mut c = Circuit::new(3);
        for q in 0..3 {
            c.h(q);
        }
        c.cx(0, 1).t(2).cz(1, 2).h(0).cx(1, 2).h(2);
        let (min, stats) = minimize(&c, has_t);
        assert_eq!(min.len(), 1, "{min:?}");
        assert!(has_t(&min));
        assert_eq!(stats.original_ops, c.len());
        assert_eq!(stats.minimized_ops, 1);
    }

    #[test]
    fn result_is_one_minimal() {
        // Failure needs BOTH a T and an X: neither alone suffices.
        let needs_both = |c: &Circuit| {
            let has = |g: Gate| c.ops().iter().any(|op| *op.gate() == g);
            has(Gate::T) && has(Gate::X)
        };
        let mut c = Circuit::new(2);
        c.h(0).t(0).cz(0, 1).x(1).h(1).s(0).t(1);
        let (min, _) = minimize(&c, needs_both);
        assert!(needs_both(&min));
        // Dropping any single remaining op must break the failure.
        for skip in 0..min.len() {
            let mut ops = min.ops().to_vec();
            ops.remove(skip);
            assert!(
                !needs_both(&rebuild(2, ops)),
                "op {skip} of {min:?} is removable — not 1-minimal"
            );
        }
    }

    #[test]
    fn non_reproducing_failure_returns_input_unchanged() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let (min, stats) = minimize(&c, |_| false);
        assert_eq!(min.ops(), c.ops());
        assert_eq!(stats.predicate_calls, 1);
    }

    #[test]
    fn is_deterministic() {
        let mut c = Circuit::new(3);
        c.h(0).t(1).cx(0, 2).t(2).h(1).cz(0, 1).x(2);
        let (a, _) = minimize(&c, has_t);
        let (b, _) = minimize(&c, has_t);
        assert_eq!(a.ops(), b.ops());
    }

    #[test]
    fn always_failing_predicate_shrinks_to_empty() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).h(1);
        let (min, _) = minimize(&c, |_| true);
        assert!(min.is_empty());
    }
}
