//! Differential verification for the Geyser framework.
//!
//! The pipeline's value claim is that compilation preserves circuit
//! semantics while reducing pulses; this crate is the independent
//! check of that claim, plus the tooling that hunts for violations:
//!
//! * [`oracle`] — the equivalence oracle. Exact isometry comparison
//!   (up to global phase) for small circuits, seeded random
//!   state-vector probing for larger ones, and the shared
//!   block-candidate ε check the composer uses.
//! * [`fuzz`] — a seeded structured circuit fuzzer: random circuits
//!   over the whole gate enum plus mutations of the paper benchmarks.
//! * [`minimize`] — a deterministic delta-debugging minimizer that
//!   shrinks failing circuits to 1-minimal reproducers.
//! * [`quarantine`] — the on-disk corpus of minimized reproducers
//!   that `replay` re-runs as regression tests.
//! * [`invariants`] — the plain-data global invariants chaos
//!   campaigns hold the supervised runtime to.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fuzz;
pub mod invariants;
pub mod minimize;
pub mod oracle;
pub mod quarantine;

pub use fuzz::{derive_seed, generate_case, generate_cases, FuzzCase, FuzzOptions};
pub use invariants::{
    check_cache_generation, check_campaign_jobs, check_recovery, check_reuse, check_serve_campaign,
    check_store_scan, CacheGenerationObservation, ChaosInvariant, InvariantViolation,
    JobObservation, RecoveryJobObservation, ReuseObservation, ServeJobObservation,
    StoreFileObservation, StoreFileStatus, TenantLatencyObservation, STARVATION_P99_FACTOR,
};
pub use minimize::{minimize, MinimizeStats};
pub use oracle::{
    composition_allowance, verify_block_candidate, verify_circuits, verify_embedded, verify_mapped,
    BlockCheck, Embedding, EquivalenceReport, VerifyConfig, VerifyMethod,
};
pub use quarantine::{entry_path, load_entries, write_entry, QuarantineEntry};
