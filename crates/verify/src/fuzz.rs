//! Seeded structured circuit fuzzer.
//!
//! Two generators alternate: fully random circuits drawn over the
//! whole [`Gate`] enum, and mutations of the small paper benchmarks
//! (gate insert/delete/swap, qubit permutations, parameter jitter).
//! Every case derives its own RNG seed from the run seed with
//! splitmix64, so a run is reproducible case-by-case: the same
//! `(seed, index)` always yields the same circuit, regardless of how
//! many cases the run generates.

use geyser_circuit::{Circuit, Gate, Operation};
use geyser_hardware::HardwareSpec;
use geyser_topology::LatticeKind;
use geyser_workloads::suite;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fuzzer knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzOptions {
    /// Run seed; every case seed derives from it.
    pub seed: u64,
    /// Number of cases to generate.
    pub cases: usize,
    /// Random circuits use 2..=this many qubits; mutation bases are
    /// benchmarks with at most this many qubits.
    pub max_qubits: usize,
    /// Upper bound on random-circuit length.
    pub max_ops: usize,
    /// Attach a mutated [`HardwareSpec`] to every case (lattice kind
    /// and size, interaction radius, noise rates, parallelism cap),
    /// so hardware-dependent failures are exercised and reproducible.
    /// Off by default: circuit generation is unchanged either way —
    /// the spec is drawn from the case RNG *after* the circuit.
    pub mutate_hardware: bool,
    /// Replace the fully-random generator with a repeated-layer
    /// structured one (QAOA-like: a random interaction graph's phase
    /// layer plus a mixer layer, repeated verbatim 2–5 times), so
    /// fuzz cases exercise the composition-reuse path — repeated
    /// layers are exactly what the reuse index deduplicates.
    /// Benchmark-mutation cases are unchanged.
    pub structured: bool,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed: 0,
            cases: 16,
            max_qubits: 5,
            max_ops: 24,
            mutate_hardware: false,
            structured: false,
        }
    }
}

/// One generated fuzz case.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// Position in the run (0-based).
    pub index: usize,
    /// Stable identifier, e.g. `case-0003-mutate-adder-4`.
    pub id: String,
    /// `"random"` or the name of the mutated benchmark.
    pub origin: String,
    /// The case's derived RNG seed.
    pub seed: u64,
    /// The circuit to compile and verify.
    pub circuit: Circuit,
    /// The hardware scenario to compile for, when
    /// [`FuzzOptions::mutate_hardware`] is set; `None` means the paper
    /// machine.
    pub hardware: Option<HardwareSpec>,
}

/// splitmix64: the per-case seed derivation. Public so the bench
/// harness can record the derived seed in quarantine metadata.
pub fn derive_seed(run_seed: u64, index: u64) -> u64 {
    let mut z = run_seed
        .wrapping_add(1)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Generates the full deterministic case list for a run.
pub fn generate_cases(opts: &FuzzOptions) -> Vec<FuzzCase> {
    (0..opts.cases).map(|i| generate_case(opts, i)).collect()
}

/// Generates case `index` of a run (independently of other cases).
pub fn generate_case(opts: &FuzzOptions, index: usize) -> FuzzCase {
    let seed = derive_seed(opts.seed, index as u64);
    let mut rng = StdRng::seed_from_u64(seed);
    let bases: Vec<_> = suite()
        .into_iter()
        .filter(|w| w.num_qubits <= opts.max_qubits)
        .collect();
    // Even cases explore the raw gate grammar (or, with `structured`,
    // repeated-layer circuits); odd cases stay close to realistic
    // structure by perturbing a paper benchmark.
    let (origin, circuit) = if index.is_multiple_of(2) || bases.is_empty() {
        if opts.structured {
            ("structured".to_string(), structured_circuit(&mut rng, opts))
        } else {
            ("random".to_string(), random_circuit(&mut rng, opts))
        }
    } else {
        let base = &bases[index / 2 % bases.len()];
        (base.name.to_string(), mutate(&base.build(), &mut rng, opts))
    };
    // Drawn after the circuit so turning hardware mutation on never
    // changes which circuits a (seed, index) pair produces.
    let hardware = opts
        .mutate_hardware
        .then(|| mutated_spec(&mut rng, opts, index));
    FuzzCase {
        index,
        id: format!("case-{index:04}-{origin}"),
        origin,
        seed,
        circuit,
        hardware,
    }
}

/// A randomized hardware scenario: lattice kind, (sometimes) explicit
/// dimensions, interaction-radius factor, noise rates, atom loss, and
/// the parallel-block cap all vary; everything stays inside
/// [`HardwareSpec::validate`]'s envelope and large enough to host any
/// circuit the run can generate.
fn mutated_spec(rng: &mut StdRng, opts: &FuzzOptions, index: usize) -> HardwareSpec {
    let mut spec = HardwareSpec::paper();
    spec.name = format!("fuzz-spec-{index:04}");
    spec.lattice.kind = match rng.gen_range(0..3u32) {
        0 => LatticeKind::Triangular,
        1 => LatticeKind::Square,
        _ => LatticeKind::SquareDiagonal,
    };
    // Half the specs pin explicit dimensions (only when they can hold
    // the largest circuit the run may draw); the rest keep auto-size.
    let rows = rng.gen_range(3..6usize);
    let cols = rng.gen_range(3..6usize);
    if rng.gen_bool(0.5) && rows * cols >= opts.max_qubits {
        spec.lattice.rows = rows;
        spec.lattice.cols = cols;
    }
    // Never below 1.01: a sub-spacing radius would disconnect the
    // lattice and make mapping impossible by construction.
    spec.lattice.radius_factor = rng.gen_range(1.01..1.7);
    spec.noise.bit_flip = rng.gen_range(0.0..0.01);
    spec.noise.phase_flip = rng.gen_range(0.0..0.01);
    spec.atom_loss = rng.gen_range(0.0..0.005);
    spec.max_parallel_blocks = rng.gen_range(0..5usize);
    spec
}

/// A QAOA-like repeated-layer circuit: one phase layer over a random
/// interaction graph (ring plus optional chords) and one mixer layer,
/// with a single `(γ, β)` angle pair, repeated verbatim 2–5 times
/// after a Hadamard wall. The literal repetition makes consecutive
/// layers fingerprint-identical, which is the composition-reuse
/// index's best case — and its required fuzz coverage.
fn structured_circuit(rng: &mut StdRng, opts: &FuzzOptions) -> Circuit {
    let n = rng.gen_range(3..opts.max_qubits.max(3) + 1);
    let layers = rng.gen_range(2..6usize);
    let gamma = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
    let beta = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
    // Ring backbone plus up to n/2 random chords, deduplicated.
    let mut edges: Vec<(usize, usize)> = (0..n).map(|q| (q, (q + 1) % n)).collect();
    for _ in 0..n / 2 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        let (a, b) = (a.min(b), a.max(b));
        if a != b && !edges.contains(&(a, b)) && !edges.contains(&(b, a)) {
            edges.push((a, b));
        }
    }
    let mut circuit = Circuit::new(n);
    for q in 0..n {
        circuit.push(Operation::new(Gate::H, vec![q]));
    }
    for _ in 0..layers {
        for &(a, b) in &edges {
            circuit.push(Operation::new(Gate::CPhase(gamma), vec![a, b]));
        }
        for q in 0..n {
            circuit.push(Operation::new(Gate::RX(beta), vec![q]));
        }
    }
    circuit
}

fn random_circuit(rng: &mut StdRng, opts: &FuzzOptions) -> Circuit {
    let n = rng.gen_range(2..opts.max_qubits.max(2) + 1);
    let len = rng.gen_range(3..opts.max_ops.max(4) + 1);
    let mut circuit = Circuit::new(n);
    for _ in 0..len {
        let op = random_op(rng, n);
        circuit.push(op);
    }
    circuit
}

/// A random operation on a register of `n` qubits, drawn over the
/// whole gate enum (native and logical basis alike).
fn random_op(rng: &mut StdRng, n: usize) -> Operation {
    let arity = match rng.gen_range(0..100u32) {
        _ if n == 1 => 1,
        x if x < 50 => 1,
        x if x < 85 || n < 3 => 2,
        _ => 3,
    };
    let gate = random_gate(rng, arity);
    Operation::new(gate, distinct_qubits(rng, n, arity))
}

fn random_gate(rng: &mut StdRng, arity: usize) -> Gate {
    let angle = |rng: &mut StdRng| rng.gen_range(-std::f64::consts::TAU..std::f64::consts::TAU);
    match arity {
        1 => match rng.gen_range(0..13u32) {
            0 => Gate::H,
            1 => Gate::X,
            2 => Gate::Y,
            3 => Gate::Z,
            4 => Gate::S,
            5 => Gate::Sdg,
            6 => Gate::T,
            7 => Gate::Tdg,
            8 => Gate::RX(angle(rng)),
            9 => Gate::RY(angle(rng)),
            10 => Gate::RZ(angle(rng)),
            11 => Gate::Phase(angle(rng)),
            _ => Gate::U3 {
                theta: angle(rng),
                phi: angle(rng),
                lambda: angle(rng),
            },
        },
        2 => match rng.gen_range(0..4u32) {
            0 => Gate::CZ,
            1 => Gate::CX,
            2 => Gate::CPhase(angle(rng)),
            _ => Gate::Swap,
        },
        _ => {
            if rng.gen_bool(0.5) {
                Gate::CCZ
            } else {
                Gate::CCX
            }
        }
    }
}

fn distinct_qubits(rng: &mut StdRng, n: usize, arity: usize) -> Vec<usize> {
    let mut chosen: Vec<usize> = Vec::with_capacity(arity);
    while chosen.len() < arity {
        let q = rng.gen_range(0..n);
        if !chosen.contains(&q) {
            chosen.push(q);
        }
    }
    chosen
}

/// Applies 1–3 structural mutations to a benchmark circuit.
fn mutate(base: &Circuit, rng: &mut StdRng, _opts: &FuzzOptions) -> Circuit {
    let mut circuit = base.clone();
    let rounds = rng.gen_range(1..4usize);
    for _ in 0..rounds {
        circuit = mutate_once(&circuit, rng);
    }
    circuit
}

fn mutate_once(circuit: &Circuit, rng: &mut StdRng) -> Circuit {
    let n = circuit.num_qubits();
    let mut ops: Vec<Operation> = circuit.ops().to_vec();
    match rng.gen_range(0..5u32) {
        // Insert a random gate at a random position.
        0 => {
            let at = rng.gen_range(0..ops.len() + 1);
            let op = random_op(rng, n);
            ops.insert(at, op);
        }
        // Delete a random gate.
        1 if !ops.is_empty() => {
            let at = rng.gen_range(0..ops.len());
            ops.remove(at);
        }
        // Swap two gate positions (reorders, possibly non-commuting).
        2 if ops.len() >= 2 => {
            let a = rng.gen_range(0..ops.len());
            let b = rng.gen_range(0..ops.len());
            ops.swap(a, b);
        }
        // Relabel qubits by a random permutation.
        3 => {
            let perm = random_permutation(rng, n);
            return circuit.remapped(n, |q| perm[q]);
        }
        // Jitter one angle of a parametric gate (or insert if none).
        4 => {
            let parametric: Vec<usize> = ops
                .iter()
                .enumerate()
                .filter(|(_, op)| jittered(op.gate(), 0.0).is_some())
                .map(|(i, _)| i)
                .collect();
            if parametric.is_empty() {
                let at = rng.gen_range(0..ops.len() + 1);
                let op = random_op(rng, n);
                ops.insert(at, op);
            } else {
                let at = parametric[rng.gen_range(0..parametric.len())];
                let delta = rng.gen_range(-0.1..0.1f64);
                let gate = jittered(ops[at].gate(), delta).expect("parametric");
                ops[at] = Operation::new(gate, ops[at].qubits().to_vec());
            }
        }
        // Fallback for empty/singleton circuits hitting delete/swap.
        _ => {
            let at = rng.gen_range(0..ops.len() + 1);
            let op = random_op(rng, n);
            ops.insert(at, op);
        }
    }
    rebuild(n, ops)
}

/// The gate with `delta` added to (one of) its angles, or `None` for
/// non-parametric gates.
fn jittered(gate: &Gate, delta: f64) -> Option<Gate> {
    Some(match *gate {
        Gate::RX(t) => Gate::RX(t + delta),
        Gate::RY(t) => Gate::RY(t + delta),
        Gate::RZ(t) => Gate::RZ(t + delta),
        Gate::Phase(t) => Gate::Phase(t + delta),
        Gate::CPhase(t) => Gate::CPhase(t + delta),
        Gate::U3 { theta, phi, lambda } => Gate::U3 {
            theta: theta + delta,
            phi,
            lambda,
        },
        _ => return None,
    })
}

fn random_permutation(rng: &mut StdRng, n: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    // Fisher–Yates.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..i + 1);
        perm.swap(i, j);
    }
    perm
}

/// Rebuilds a circuit from an operation list.
pub fn rebuild(num_qubits: usize, ops: Vec<Operation>) -> Circuit {
    let mut circuit = Circuit::new(num_qubits);
    for op in ops {
        circuit.push(op);
    }
    circuit
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_cases() {
        let opts = FuzzOptions {
            seed: 42,
            cases: 12,
            ..FuzzOptions::default()
        };
        let a = generate_cases(&opts);
        let b = generate_cases(&opts);
        assert_eq!(a.len(), 12);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.circuit.ops(), y.circuit.ops());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_cases(&FuzzOptions {
            seed: 1,
            cases: 8,
            ..FuzzOptions::default()
        });
        let b = generate_cases(&FuzzOptions {
            seed: 2,
            cases: 8,
            ..FuzzOptions::default()
        });
        let identical = a
            .iter()
            .zip(&b)
            .filter(|(x, y)| x.circuit.ops() == y.circuit.ops())
            .count();
        assert!(identical < a.len(), "seeds must actually matter");
    }

    #[test]
    fn case_generation_is_independent_of_run_length() {
        let short = FuzzOptions {
            seed: 7,
            cases: 4,
            ..FuzzOptions::default()
        };
        let long = FuzzOptions {
            seed: 7,
            cases: 16,
            ..FuzzOptions::default()
        };
        let a = generate_cases(&short);
        let b = generate_cases(&long);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.circuit.ops(), y.circuit.ops());
        }
    }

    #[test]
    fn cases_are_well_formed() {
        let opts = FuzzOptions {
            seed: 9,
            cases: 20,
            ..FuzzOptions::default()
        };
        for case in generate_cases(&opts) {
            assert!(case.circuit.num_qubits() >= 2);
            assert!(!case.circuit.is_empty(), "{}", case.id);
            for op in case.circuit.ops() {
                for &q in op.qubits() {
                    assert!(q < case.circuit.num_qubits());
                }
            }
        }
    }

    #[test]
    fn hardware_mutation_is_off_by_default_and_deterministic() {
        let plain = generate_cases(&FuzzOptions {
            seed: 11,
            cases: 8,
            ..FuzzOptions::default()
        });
        assert!(plain.iter().all(|c| c.hardware.is_none()));
        let opts = FuzzOptions {
            seed: 11,
            cases: 8,
            mutate_hardware: true,
            ..FuzzOptions::default()
        };
        let a = generate_cases(&opts);
        let b = generate_cases(&opts);
        for ((x, y), p) in a.iter().zip(&b).zip(&plain) {
            let sx = x.hardware.as_ref().expect("spec attached");
            let sy = y.hardware.as_ref().expect("spec attached");
            assert_eq!(sx.digest(), sy.digest(), "{}", x.id);
            // The spec is drawn after the circuit, so enabling it
            // must not change which circuit the case carries.
            assert_eq!(x.circuit.ops(), p.circuit.ops(), "{}", x.id);
        }
        let distinct: std::collections::HashSet<u64> = a
            .iter()
            .filter_map(|c| c.hardware.as_ref().map(|s| s.digest()))
            .collect();
        assert!(distinct.len() > 1, "mutation must actually vary specs");
    }

    #[test]
    fn mutated_specs_are_valid_and_host_their_circuits() {
        let opts = FuzzOptions {
            seed: 5,
            cases: 24,
            mutate_hardware: true,
            ..FuzzOptions::default()
        };
        for case in generate_cases(&opts) {
            let spec = case.hardware.as_ref().expect("spec attached");
            spec.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", case.id));
            let lattice = spec.build_lattice(case.circuit.num_qubits(), None);
            assert!(
                lattice.num_nodes() >= case.circuit.num_qubits(),
                "{}: lattice too small",
                case.id
            );
        }
    }

    #[test]
    fn structured_cases_repeat_layers_verbatim() {
        let opts = FuzzOptions {
            seed: 21,
            cases: 12,
            structured: true,
            ..FuzzOptions::default()
        };
        let cases = generate_cases(&opts);
        let structured: Vec<_> = cases.iter().filter(|c| c.origin == "structured").collect();
        assert!(!structured.is_empty(), "even cases must be structured");
        for case in &structured {
            // A single (γ, β) pair across every layer: at most one
            // distinct CPhase angle and one distinct RX angle.
            let mut gammas = Vec::new();
            let mut betas = Vec::new();
            for op in case.circuit.ops() {
                match op.gate() {
                    Gate::CPhase(g) if !gammas.contains(g) => gammas.push(*g),
                    Gate::RX(b) if !betas.contains(b) => betas.push(*b),
                    _ => {}
                }
            }
            assert_eq!(gammas.len(), 1, "{}", case.id);
            assert_eq!(betas.len(), 1, "{}", case.id);
            // The layer body (everything after the Hadamard wall)
            // repeats verbatim: the op list is the wall plus an exact
            // multiple of one layer's ops.
            let n = case.circuit.num_qubits();
            let body = &case.circuit.ops()[n..];
            let edges = body.iter().take_while(|op| op.qubits().len() == 2).count();
            let layer = edges + n;
            assert!(layer > 0 && body.len() % layer == 0, "{}", case.id);
            let layers = body.len() / layer;
            assert!(layers >= 2, "{}", case.id);
            for rep in 1..layers {
                assert_eq!(
                    &body[..layer],
                    &body[rep * layer..(rep + 1) * layer],
                    "{}",
                    case.id
                );
            }
        }
        // Determinism and odd-case behavior are unchanged.
        let again = generate_cases(&opts);
        for (x, y) in cases.iter().zip(&again) {
            assert_eq!(x.circuit.ops(), y.circuit.ops());
        }
        assert!(cases.iter().any(|c| c.origin != "structured"));
    }

    #[test]
    fn mutated_cases_reference_real_benchmarks() {
        let opts = FuzzOptions {
            seed: 3,
            cases: 10,
            ..FuzzOptions::default()
        };
        let cases = generate_cases(&opts);
        assert!(cases.iter().any(|c| c.origin == "random"));
        assert!(cases.iter().any(|c| c.origin != "random"));
    }
}
