//! Machine-checked global invariants for chaos campaigns.
//!
//! A chaos campaign throws randomized fault compositions at the
//! supervised runtime and then asks: *did the system as a whole hold
//! its promises?* Those promises are encoded here as plain-data
//! invariants over plain-data observations, so the checks are
//! independent of the supervisor's internal types (this crate sits
//! below the supervisor in the dependency graph) and trivially
//! serializable into the campaign scorecard.
//!
//! The invariants, in the order they are checked:
//!
//! 1. [`ChaosInvariant::NoJobLost`] — every submitted job produced a
//!    terminal result; none vanished.
//! 2. [`ChaosInvariant::OutcomeClassified`] — every terminal job is in
//!    a recognized state, successful jobs carry a circuit, and
//!    unsuccessful ones carry a typed error.
//! 3. [`ChaosInvariant::VerifiedEquivalent`] — every successful
//!    compile passed the equivalence oracle.
//! 4. [`ChaosInvariant::ResumeBitIdentical`] — every resumed job's
//!    output matched the uninjected reference bit for bit.
//! 5. [`ChaosInvariant::StoreParsesOrQuarantined`] — every surviving
//!    store file either parses or was quarantined to a
//!    `.corrupt-<digest>` sidecar; no corrupt file was left in place.
//!
//! Campaigns that drive the supervisor's *service layer* (admission
//! control, tenant fairness, single-flight dedup, load shedding) hold
//! it to four more promises, checked by [`check_serve_campaign`]:
//!
//! 6. [`ChaosInvariant::SubmissionResolved`] — every submission
//!    (admitted or not) reached a recognized terminal outcome; the
//!    service never dropped one silently.
//! 7. [`ChaosInvariant::ShedTyped`] — every shed job carries a typed
//!    rejection reason, and only shed jobs do.
//! 8. [`ChaosInvariant::DedupBitIdentical`] — every result served by
//!    single-flight deduplication is bit-identical to a solo compile
//!    of the same job.
//! 9. [`ChaosInvariant::NoTenantStarved`] — while one tenant floods,
//!    no other tenant's p99 latency exceeds three times its fair-share
//!    baseline.
//!
//! Campaigns that kill the supervisor and recover it from its
//! write-ahead journal hold the durability layer to three more,
//! checked by [`check_recovery`] and [`check_cache_generation`]:
//!
//! 10. [`ChaosInvariant::NoAckedJobLost`] — every job the journal
//!     acknowledged (admitted or attached) before the kill reaches a
//!     terminal outcome after recovery; an acknowledgment is a
//!     durability promise.
//! 11. [`ChaosInvariant::RecoveryExactlyOnce`] — no settled job is
//!     ever re-executed after recovery, and a recovered job's result
//!     digest matches the uninjected reference — at-least-once with a
//!     different answer is as much a violation as twice.
//! 12. [`ChaosInvariant::CacheGenerationCoherent`] — after concurrent
//!     (or killed) compactions, the shared cache's generation header
//!     parses, no entry is torn across generations, and no stale
//!     compaction lock outlives its holder.
//!
//! Campaigns that compile with the composition-reuse index enabled
//! hold the reuse layer to one more, checked by [`check_reuse`]:
//!
//! 13. [`ChaosInvariant::ReuseVerified`] — every replayed (reused)
//!     composition went back through the ε re-verification gate, and
//!     any compile that replayed cached compositions still passes the
//!     equivalence oracle. A stale or poisoned store entry may cost a
//!     recomposition, never correctness.

use serde::{Deserialize, Serialize};

/// The global promises a chaos campaign holds the runtime to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosInvariant {
    /// Every submitted job reached a terminal result.
    NoJobLost,
    /// Every terminal job has a classified outcome: a recognized
    /// state, a circuit iff successful, a typed error iff not.
    OutcomeClassified,
    /// Every successful compile passed the equivalence oracle.
    VerifiedEquivalent,
    /// Every checkpoint resume completed bit-identical to an
    /// uninterrupted run.
    ResumeBitIdentical,
    /// Every store file parses or was quarantined; none was left
    /// corrupt in place.
    StoreParsesOrQuarantined,
    /// Every submission to the service layer reached a recognized
    /// terminal outcome (completed, degraded, rejected, or
    /// cancelled) — never a silent drop.
    SubmissionResolved,
    /// Every shed job carries a typed rejection reason, and no
    /// non-shed job does.
    ShedTyped,
    /// Every dedup-served result is bit-identical to a solo compile
    /// of the same job.
    DedupBitIdentical,
    /// No tenant's p99 latency exceeded 3× its fair-share baseline
    /// while another tenant flooded.
    NoTenantStarved,
    /// Every journal-acknowledged job reached a terminal outcome
    /// after crash recovery.
    NoAckedJobLost,
    /// No settled job re-executed after recovery, and recovered
    /// results match the uninjected reference digests.
    RecoveryExactlyOnce,
    /// The shared cache's generation state stayed coherent through
    /// concurrent and killed compactions.
    CacheGenerationCoherent,
    /// Every reused composition passed back through the ε
    /// re-verification gate, and reuse-assisted compiles still pass
    /// the equivalence oracle.
    ReuseVerified,
}

impl ChaosInvariant {
    /// Stable machine-readable label (used in scorecards and CI
    /// greps).
    pub fn label(&self) -> &'static str {
        match self {
            ChaosInvariant::NoJobLost => "no-job-lost",
            ChaosInvariant::OutcomeClassified => "outcome-classified",
            ChaosInvariant::VerifiedEquivalent => "verified-equivalent",
            ChaosInvariant::ResumeBitIdentical => "resume-bit-identical",
            ChaosInvariant::StoreParsesOrQuarantined => "store-parses-or-quarantined",
            ChaosInvariant::SubmissionResolved => "submission-resolved",
            ChaosInvariant::ShedTyped => "shed-typed",
            ChaosInvariant::DedupBitIdentical => "dedup-bit-identical",
            ChaosInvariant::NoTenantStarved => "no-tenant-starved",
            ChaosInvariant::NoAckedJobLost => "no-acked-job-lost",
            ChaosInvariant::RecoveryExactlyOnce => "recovery-exactly-once",
            ChaosInvariant::CacheGenerationCoherent => "cache-generation-coherent",
            ChaosInvariant::ReuseVerified => "reuse-verified",
        }
    }
}

impl std::fmt::Display for ChaosInvariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One violated invariant with enough context to reproduce it.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct InvariantViolation {
    /// [`ChaosInvariant::label`] of the violated invariant.
    pub invariant: String,
    /// What exactly went wrong (job id, file path, ...).
    pub detail: String,
}

impl InvariantViolation {
    /// Builds a violation record for `invariant` with a reproduction
    /// detail string. Public so harnesses can report campaign-level
    /// findings (e.g. a completed-set diff) under the same labels the
    /// per-job checkers use.
    pub fn new(invariant: ChaosInvariant, detail: String) -> Self {
        InvariantViolation {
            invariant: invariant.label().to_string(),
            detail,
        }
    }
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invariant '{}' violated: {}",
            self.invariant, self.detail
        )
    }
}

/// What one job looked like after the campaign drained — a plain-data
/// mirror of the supervisor's job result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobObservation {
    /// Supervisor job id.
    pub id: u64,
    /// Workload label (for reproduction).
    pub workload: String,
    /// Terminal state label: `done`, `failed`, `cancelled`, `broken`.
    pub state: String,
    /// Whether the result carried a compiled circuit.
    pub has_circuit: bool,
    /// Whether the result carried a typed error.
    pub has_error: bool,
    /// Attempts the job consumed.
    pub attempts: u64,
    /// Oracle verdict for a successful compile; `None` when the job
    /// did not produce a circuit (or verification was skipped, which
    /// chaos never does for `done` jobs).
    pub verified_equivalent: Option<bool>,
    /// For jobs re-run from a checkpoint: whether the resumed output
    /// matched the uninjected reference bit for bit. `None` when the
    /// job was not a resume case.
    pub resume_bit_identical: Option<bool>,
}

/// How one surviving store file scanned after the campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StoreFileStatus {
    /// Frame verified and payload parsed.
    Parsed,
    /// A `.corrupt-<digest>` sidecar — corruption that was detected
    /// and moved aside, exactly as promised.
    Quarantined,
    /// A stale `.tmp` from an interrupted write — benign, the next
    /// write overwrites it.
    StaleTmp,
    /// A corrupt file still sitting at its primary path: the
    /// quarantine promise was broken.
    CorruptInPlace,
}

/// One scanned store file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoreFileObservation {
    /// Path relative to the campaign's store root.
    pub path: String,
    /// What the scan found.
    pub status: StoreFileStatus,
}

/// Checks the job-level invariants (1–4) over one campaign's drained
/// results. `submitted` is how many jobs the campaign pushed in;
/// `jobs` is what came back.
pub fn check_campaign_jobs(submitted: u64, jobs: &[JobObservation]) -> Vec<InvariantViolation> {
    let mut violations = Vec::new();
    if jobs.len() as u64 != submitted {
        violations.push(InvariantViolation::new(
            ChaosInvariant::NoJobLost,
            format!(
                "submitted {submitted} jobs but {} reached a terminal state",
                jobs.len()
            ),
        ));
    }
    for job in jobs {
        let tag = format!("job {} ({}, state={})", job.id, job.workload, job.state);
        match job.state.as_str() {
            "done" => {
                if !job.has_circuit {
                    violations.push(InvariantViolation::new(
                        ChaosInvariant::OutcomeClassified,
                        format!("{tag} succeeded without a circuit"),
                    ));
                }
                if job.has_error {
                    violations.push(InvariantViolation::new(
                        ChaosInvariant::OutcomeClassified,
                        format!("{tag} succeeded but carries an error"),
                    ));
                }
                match job.verified_equivalent {
                    Some(true) => {}
                    Some(false) => violations.push(InvariantViolation::new(
                        ChaosInvariant::VerifiedEquivalent,
                        format!("{tag} failed the equivalence oracle"),
                    )),
                    None => violations.push(InvariantViolation::new(
                        ChaosInvariant::VerifiedEquivalent,
                        format!("{tag} was never verified"),
                    )),
                }
            }
            "failed" | "cancelled" => {
                if !job.has_error {
                    violations.push(InvariantViolation::new(
                        ChaosInvariant::OutcomeClassified,
                        format!("{tag} terminated without a typed error"),
                    ));
                }
                if job.has_circuit {
                    violations.push(InvariantViolation::new(
                        ChaosInvariant::OutcomeClassified,
                        format!("{tag} failed but still carries a circuit"),
                    ));
                }
            }
            // A broken job was bounced by an open breaker before any
            // attempt; it carries neither circuit nor error by design.
            "broken" => {}
            other => violations.push(InvariantViolation::new(
                ChaosInvariant::OutcomeClassified,
                format!("job {} in unrecognized terminal state '{other}'", job.id),
            )),
        }
        if job.resume_bit_identical == Some(false) {
            violations.push(InvariantViolation::new(
                ChaosInvariant::ResumeBitIdentical,
                format!("{tag} resumed to a different circuit than the uninjected reference"),
            ));
        }
    }
    violations
}

/// What one submission to the service layer looked like after the
/// campaign drained — a plain-data mirror of the serve scorecard's
/// per-job record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeJobObservation {
    /// Submission id.
    pub id: u64,
    /// Tenant the job was billed to.
    pub tenant: String,
    /// Terminal state label: `done`, `failed`, `cancelled`, `broken`,
    /// or `rejected`.
    pub state: String,
    /// Whether the result carried a typed rejection reason.
    pub has_rejection: bool,
    /// Whether the result was served by single-flight dedup.
    pub deduped: bool,
    /// For sampled dedup results: whether the shared result matched a
    /// solo compile of the same job bit for bit. `None` when the job
    /// was not sampled (or not deduped).
    pub dedup_bit_identical: Option<bool>,
}

/// Per-tenant latency profile for the starvation check: p99 of
/// completed-job latency during the calm phase (the fair-share
/// baseline) and during the storm phase, in the campaign's ms domain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantLatencyObservation {
    /// Tenant label.
    pub tenant: String,
    /// Whether this tenant was the one flooding during the storm.
    pub flooding: bool,
    /// p99 completed-job latency before the storm (ms).
    pub baseline_p99_ms: u64,
    /// p99 completed-job latency during the storm (ms).
    pub storm_p99_ms: u64,
}

/// Multiplier a well-behaved tenant's storm p99 may reach over its
/// fair-share baseline before the starvation invariant trips.
pub const STARVATION_P99_FACTOR: u64 = 3;

/// Checks the service-layer invariants (6–9) over one serve
/// campaign's drained results. `submitted` counts every submission,
/// including ones shed at admission.
pub fn check_serve_campaign(
    submitted: u64,
    jobs: &[ServeJobObservation],
    tenants: &[TenantLatencyObservation],
) -> Vec<InvariantViolation> {
    let mut violations = Vec::new();
    if jobs.len() as u64 != submitted {
        violations.push(InvariantViolation::new(
            ChaosInvariant::SubmissionResolved,
            format!(
                "{submitted} submissions but {} terminal outcomes",
                jobs.len()
            ),
        ));
    }
    for job in jobs {
        let tag = format!(
            "job {} (tenant {}, state={})",
            job.id, job.tenant, job.state
        );
        match job.state.as_str() {
            "done" | "failed" | "cancelled" | "broken" | "rejected" => {}
            other => violations.push(InvariantViolation::new(
                ChaosInvariant::SubmissionResolved,
                format!("job {} in unrecognized terminal state '{other}'", job.id),
            )),
        }
        if job.state == "rejected" && !job.has_rejection {
            violations.push(InvariantViolation::new(
                ChaosInvariant::ShedTyped,
                format!("{tag} was shed without a typed rejection reason"),
            ));
        }
        if job.state != "rejected" && job.has_rejection {
            violations.push(InvariantViolation::new(
                ChaosInvariant::ShedTyped,
                format!("{tag} carries a rejection reason but was not shed"),
            ));
        }
        if job.dedup_bit_identical == Some(false) {
            violations.push(InvariantViolation::new(
                ChaosInvariant::DedupBitIdentical,
                format!("{tag} dedup result differs from a solo compile"),
            ));
        }
    }
    for t in tenants {
        if t.flooding {
            continue;
        }
        // Sub-millisecond baselines are floored so quantization noise
        // on a fast calm phase can't trip the check by itself.
        let limit = STARVATION_P99_FACTOR * t.baseline_p99_ms.max(1);
        if t.storm_p99_ms > limit {
            violations.push(InvariantViolation::new(
                ChaosInvariant::NoTenantStarved,
                format!(
                    "tenant {} p99 {}ms during the storm exceeds {}x its {}ms baseline",
                    t.tenant, t.storm_p99_ms, STARVATION_P99_FACTOR, t.baseline_p99_ms
                ),
            ));
        }
    }
    violations
}

/// What one journal-tracked job looked like after a kill → recover
/// cycle, diffed against the uninjected reference run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecoveryJobObservation {
    /// Job id (stable across the reference, killed, and recovery
    /// incarnations — the schedule is a pure function of the seed).
    pub id: u64,
    /// Whether the journal acknowledged this job (an `admitted` or
    /// `attached` event survived) before the kill.
    pub acked: bool,
    /// Whether the job holds a terminal outcome after recovery.
    pub settled: bool,
    /// Times the job was *executed* (actually compiled) after its
    /// outcome had already settled in the journal. Must be zero:
    /// settled work is replayed from the journal, never re-run.
    pub runs_after_settle: u64,
    /// For completed jobs: whether the post-recovery result digest
    /// matches the uninjected reference. `None` when the job did not
    /// complete (shed/cancelled/failed terminals have no digest).
    pub digest_matches_reference: Option<bool>,
}

/// How the shared compile cache's generation state scanned after a
/// campaign of concurrent / killed compactions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheGenerationObservation {
    /// Whether the generation header file parsed as a framed record
    /// with a positive generation number.
    pub generation_parses: bool,
    /// The generation number read (0 when unparseable).
    pub generation: u64,
    /// Cache entries found corrupt in place (not quarantined).
    pub corrupt_in_place: u64,
    /// Entries stamped with a generation *newer* than the header —
    /// a torn compaction mixed two generations.
    pub entries_beyond_generation: u64,
    /// Whether a compaction lock file survived with no live holder.
    pub stale_lock: bool,
}

/// Checks the crash-recovery invariants (10–11) over one kill →
/// recover cycle diffed against its uninjected reference.
pub fn check_recovery(jobs: &[RecoveryJobObservation]) -> Vec<InvariantViolation> {
    let mut violations = Vec::new();
    for job in jobs {
        if job.acked && !job.settled {
            violations.push(InvariantViolation::new(
                ChaosInvariant::NoAckedJobLost,
                format!(
                    "job {} was journal-acknowledged before the kill but never settled after recovery",
                    job.id
                ),
            ));
        }
        if job.runs_after_settle > 0 {
            violations.push(InvariantViolation::new(
                ChaosInvariant::RecoveryExactlyOnce,
                format!(
                    "job {} re-executed {} time(s) after its outcome had settled",
                    job.id, job.runs_after_settle
                ),
            ));
        }
        if job.digest_matches_reference == Some(false) {
            violations.push(InvariantViolation::new(
                ChaosInvariant::RecoveryExactlyOnce,
                format!(
                    "job {} recovered to a different result than the uninjected reference",
                    job.id
                ),
            ));
        }
    }
    violations
}

/// Checks the shared-cache coherence invariant (12) over a
/// post-campaign generation scan.
pub fn check_cache_generation(obs: &CacheGenerationObservation) -> Vec<InvariantViolation> {
    let mut violations = Vec::new();
    if !obs.generation_parses || obs.generation == 0 {
        violations.push(InvariantViolation::new(
            ChaosInvariant::CacheGenerationCoherent,
            format!(
                "cache generation header unreadable (parses={}, generation={})",
                obs.generation_parses, obs.generation
            ),
        ));
    }
    if obs.corrupt_in_place > 0 {
        violations.push(InvariantViolation::new(
            ChaosInvariant::CacheGenerationCoherent,
            format!(
                "{} cache entr(ies) corrupt in place after compaction",
                obs.corrupt_in_place
            ),
        ));
    }
    if obs.entries_beyond_generation > 0 {
        violations.push(InvariantViolation::new(
            ChaosInvariant::CacheGenerationCoherent,
            format!(
                "{} entr(ies) stamped beyond the committed generation — torn compaction",
                obs.entries_beyond_generation
            ),
        ));
    }
    if obs.stale_lock {
        violations.push(InvariantViolation::new(
            ChaosInvariant::CacheGenerationCoherent,
            "a compaction lock survived with no live holder".to_string(),
        ));
    }
    violations
}

/// What one reuse-enabled compile looked like after it drained — a
/// plain-data mirror of the pipeline's `ReuseStats` plus the oracle's
/// verdict on the finished circuit (this crate sits below the reuse
/// crate in the dependency graph, so the harness copies the counters
/// over).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ReuseObservation {
    /// Blocks whose fingerprints were consulted against the index.
    pub blocks_fingerprinted: u64,
    /// Exact-fingerprint hits that replayed a cached composition.
    pub exact_hits: u64,
    /// Replayed compositions that skipped the ε re-verification gate.
    /// The gate is unconditional in a healthy runtime, so anything
    /// non-zero is an invariant violation by construction.
    pub unverified_replays: u64,
    /// Oracle verdict on the finished circuit; `None` when the
    /// harness never verified it.
    pub verified_equivalent: Option<bool>,
}

/// Checks the reuse invariant (13) over one reuse-enabled compile.
pub fn check_reuse(obs: &ReuseObservation) -> Vec<InvariantViolation> {
    let mut violations = Vec::new();
    if obs.unverified_replays > 0 {
        violations.push(InvariantViolation::new(
            ChaosInvariant::ReuseVerified,
            format!(
                "{} replayed composition(s) skipped the ε re-verification gate",
                obs.unverified_replays
            ),
        ));
    }
    if obs.exact_hits > 0 {
        match obs.verified_equivalent {
            Some(true) => {}
            Some(false) => violations.push(InvariantViolation::new(
                ChaosInvariant::ReuseVerified,
                format!(
                    "a compile that replayed {} cached composition(s) failed the equivalence oracle",
                    obs.exact_hits
                ),
            )),
            None => violations.push(InvariantViolation::new(
                ChaosInvariant::ReuseVerified,
                format!(
                    "a compile that replayed {} cached composition(s) was never verified",
                    obs.exact_hits
                ),
            )),
        }
    }
    violations
}

/// Checks the store invariant (5) over a post-campaign scan of the
/// store directory.
pub fn check_store_scan(files: &[StoreFileObservation]) -> Vec<InvariantViolation> {
    files
        .iter()
        .filter(|f| f.status == StoreFileStatus::CorruptInPlace)
        .map(|f| {
            InvariantViolation::new(
                ChaosInvariant::StoreParsesOrQuarantined,
                format!("corrupt store file left in place: {}", f.path),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn done(id: u64) -> JobObservation {
        JobObservation {
            id,
            workload: "ghz".into(),
            state: "done".into(),
            has_circuit: true,
            has_error: false,
            attempts: 1,
            verified_equivalent: Some(true),
            resume_bit_identical: None,
        }
    }

    #[test]
    fn clean_campaign_has_no_violations() {
        let jobs = vec![done(0), done(1)];
        assert!(check_campaign_jobs(2, &jobs).is_empty());
        let files = vec![
            StoreFileObservation {
                path: "a.json".into(),
                status: StoreFileStatus::Parsed,
            },
            StoreFileObservation {
                path: "b.json.corrupt-0123".into(),
                status: StoreFileStatus::Quarantined,
            },
        ];
        assert!(check_store_scan(&files).is_empty());
    }

    #[test]
    fn lost_job_is_flagged() {
        let v = check_campaign_jobs(3, &[done(0), done(1)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "no-job-lost");
    }

    #[test]
    fn unverified_or_inequivalent_success_is_flagged() {
        let mut unverified = done(0);
        unverified.verified_equivalent = None;
        let mut wrong = done(1);
        wrong.verified_equivalent = Some(false);
        let v = check_campaign_jobs(2, &[unverified, wrong]);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|x| x.invariant == "verified-equivalent"));
    }

    #[test]
    fn misclassified_terminals_are_flagged() {
        let mut no_error = done(0);
        no_error.state = "failed".into();
        no_error.has_circuit = false;
        no_error.has_error = false;
        let mut weird = done(1);
        weird.state = "vanished".into();
        let v = check_campaign_jobs(2, &[no_error, weird]);
        assert!(v.iter().any(|x| x.detail.contains("typed error")));
        assert!(v.iter().any(|x| x.detail.contains("unrecognized")));
        assert!(v.iter().all(|x| x.invariant == "outcome-classified"));
    }

    #[test]
    fn resume_divergence_is_flagged() {
        let mut diverged = done(0);
        diverged.resume_bit_identical = Some(false);
        let v = check_campaign_jobs(1, &[diverged]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "resume-bit-identical");
    }

    #[test]
    fn corrupt_in_place_store_file_is_flagged() {
        let files = vec![StoreFileObservation {
            path: "ckpt-ghz.json".into(),
            status: StoreFileStatus::CorruptInPlace,
        }];
        let v = check_store_scan(&files);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "store-parses-or-quarantined");
        assert!(v[0].detail.contains("ckpt-ghz.json"));
    }

    fn resolved(id: u64, tenant: &str) -> ServeJobObservation {
        ServeJobObservation {
            id,
            tenant: tenant.into(),
            state: "done".into(),
            has_rejection: false,
            deduped: false,
            dedup_bit_identical: None,
        }
    }

    #[test]
    fn clean_serve_campaign_has_no_violations() {
        let jobs = vec![resolved(0, "a"), resolved(1, "b")];
        let tenants = vec![
            TenantLatencyObservation {
                tenant: "a".into(),
                flooding: false,
                baseline_p99_ms: 100,
                storm_p99_ms: 250,
            },
            TenantLatencyObservation {
                tenant: "b".into(),
                flooding: true,
                baseline_p99_ms: 100,
                storm_p99_ms: 9_000,
            },
        ];
        assert!(check_serve_campaign(2, &jobs, &tenants).is_empty());
    }

    #[test]
    fn unresolved_submission_is_flagged() {
        let v = check_serve_campaign(3, &[resolved(0, "a"), resolved(1, "a")], &[]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "submission-resolved");
        let mut weird = resolved(0, "a");
        weird.state = "vaporized".into();
        let v = check_serve_campaign(1, &[weird], &[]);
        assert!(v.iter().any(|x| x.invariant == "submission-resolved"));
    }

    #[test]
    fn untyped_or_misplaced_rejection_is_flagged() {
        let mut untyped = resolved(0, "a");
        untyped.state = "rejected".into();
        let mut misplaced = resolved(1, "a");
        misplaced.has_rejection = true;
        let v = check_serve_campaign(2, &[untyped, misplaced], &[]);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|x| x.invariant == "shed-typed"));
    }

    #[test]
    fn dedup_divergence_is_flagged() {
        let mut diverged = resolved(0, "a");
        diverged.deduped = true;
        diverged.dedup_bit_identical = Some(false);
        let mut fine = resolved(1, "a");
        fine.deduped = true;
        fine.dedup_bit_identical = Some(true);
        let v = check_serve_campaign(2, &[diverged, fine], &[]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "dedup-bit-identical");
    }

    #[test]
    fn starved_tenant_is_flagged_but_flooder_is_exempt() {
        let tenants = vec![
            TenantLatencyObservation {
                tenant: "victim".into(),
                flooding: false,
                baseline_p99_ms: 100,
                storm_p99_ms: 301,
            },
            TenantLatencyObservation {
                tenant: "hog".into(),
                flooding: true,
                baseline_p99_ms: 100,
                storm_p99_ms: 50_000,
            },
        ];
        let v = check_serve_campaign(0, &[], &tenants);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "no-tenant-starved");
        assert!(v[0].detail.contains("victim"));
    }

    #[test]
    fn zero_baseline_is_floored_not_divided() {
        let tenants = vec![TenantLatencyObservation {
            tenant: "quick".into(),
            flooding: false,
            baseline_p99_ms: 0,
            storm_p99_ms: 3,
        }];
        assert!(check_serve_campaign(0, &[], &tenants).is_empty());
    }

    #[test]
    fn serve_labels_are_stable() {
        assert_eq!(
            ChaosInvariant::SubmissionResolved.label(),
            "submission-resolved"
        );
        assert_eq!(ChaosInvariant::ShedTyped.label(), "shed-typed");
        assert_eq!(
            ChaosInvariant::DedupBitIdentical.label(),
            "dedup-bit-identical"
        );
        assert_eq!(ChaosInvariant::NoTenantStarved.label(), "no-tenant-starved");
    }

    fn recovered(id: u64) -> RecoveryJobObservation {
        RecoveryJobObservation {
            id,
            acked: true,
            settled: true,
            runs_after_settle: 0,
            digest_matches_reference: Some(true),
        }
    }

    #[test]
    fn clean_recovery_has_no_violations() {
        assert!(check_recovery(&[recovered(0), recovered(1)]).is_empty());
    }

    #[test]
    fn lost_acked_job_is_flagged() {
        let mut lost = recovered(0);
        lost.settled = false;
        lost.digest_matches_reference = None;
        let v = check_recovery(&[lost, recovered(1)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "no-acked-job-lost");
        // An unacked job that never settles is not a durability
        // violation — nothing was promised for it.
        let mut unacked = recovered(2);
        unacked.acked = false;
        unacked.settled = false;
        unacked.digest_matches_reference = None;
        assert!(check_recovery(&[unacked]).is_empty());
    }

    #[test]
    fn rerun_or_diverged_recovery_is_flagged() {
        let mut rerun = recovered(0);
        rerun.runs_after_settle = 1;
        let mut diverged = recovered(1);
        diverged.digest_matches_reference = Some(false);
        let v = check_recovery(&[rerun, diverged]);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|x| x.invariant == "recovery-exactly-once"));
        assert!(v.iter().any(|x| x.detail.contains("re-executed")));
        assert!(v.iter().any(|x| x.detail.contains("different result")));
    }

    fn coherent_cache() -> CacheGenerationObservation {
        CacheGenerationObservation {
            generation_parses: true,
            generation: 3,
            corrupt_in_place: 0,
            entries_beyond_generation: 0,
            stale_lock: false,
        }
    }

    #[test]
    fn coherent_cache_generation_has_no_violations() {
        assert!(check_cache_generation(&coherent_cache()).is_empty());
    }

    #[test]
    fn incoherent_cache_generation_is_flagged_per_symptom() {
        let mut bad = coherent_cache();
        bad.generation_parses = false;
        bad.generation = 0;
        bad.corrupt_in_place = 2;
        bad.entries_beyond_generation = 1;
        bad.stale_lock = true;
        let v = check_cache_generation(&bad);
        assert_eq!(v.len(), 4);
        assert!(v.iter().all(|x| x.invariant == "cache-generation-coherent"));
    }

    #[test]
    fn recovery_labels_are_stable() {
        assert_eq!(ChaosInvariant::NoAckedJobLost.label(), "no-acked-job-lost");
        assert_eq!(
            ChaosInvariant::RecoveryExactlyOnce.label(),
            "recovery-exactly-once"
        );
        assert_eq!(
            ChaosInvariant::CacheGenerationCoherent.label(),
            "cache-generation-coherent"
        );
    }

    #[test]
    fn clean_reuse_compile_has_no_violations() {
        let obs = ReuseObservation {
            blocks_fingerprinted: 90,
            exact_hits: 72,
            unverified_replays: 0,
            verified_equivalent: Some(true),
        };
        assert!(check_reuse(&obs).is_empty());
        // No hits at all needs no oracle verdict either.
        let cold = ReuseObservation {
            blocks_fingerprinted: 90,
            exact_hits: 0,
            unverified_replays: 0,
            verified_equivalent: None,
        };
        assert!(check_reuse(&cold).is_empty());
    }

    #[test]
    fn unverified_or_inequivalent_reuse_is_flagged() {
        let skipped = ReuseObservation {
            blocks_fingerprinted: 10,
            exact_hits: 3,
            unverified_replays: 3,
            verified_equivalent: Some(true),
        };
        let v = check_reuse(&skipped);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "reuse-verified");

        let miscompiled = ReuseObservation {
            blocks_fingerprinted: 10,
            exact_hits: 3,
            unverified_replays: 3,
            verified_equivalent: Some(false),
        };
        assert_eq!(check_reuse(&miscompiled).len(), 2);

        let unchecked = ReuseObservation {
            blocks_fingerprinted: 10,
            exact_hits: 1,
            unverified_replays: 0,
            verified_equivalent: None,
        };
        let v = check_reuse(&unchecked);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("never verified"));
        assert_eq!(ChaosInvariant::ReuseVerified.label(), "reuse-verified");
    }

    #[test]
    fn violations_serialize_for_the_scorecard() {
        let v = InvariantViolation {
            invariant: ChaosInvariant::NoJobLost.label().to_string(),
            detail: "submitted 3, drained 2".into(),
        };
        let json = serde_json::to_string(&v).unwrap();
        let back: InvariantViolation = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v);
        assert!(v.to_string().contains("no-job-lost"));
    }
}
