//! Machine-checked global invariants for chaos campaigns.
//!
//! A chaos campaign throws randomized fault compositions at the
//! supervised runtime and then asks: *did the system as a whole hold
//! its promises?* Those promises are encoded here as plain-data
//! invariants over plain-data observations, so the checks are
//! independent of the supervisor's internal types (this crate sits
//! below the supervisor in the dependency graph) and trivially
//! serializable into the campaign scorecard.
//!
//! The invariants, in the order they are checked:
//!
//! 1. [`ChaosInvariant::NoJobLost`] — every submitted job produced a
//!    terminal result; none vanished.
//! 2. [`ChaosInvariant::OutcomeClassified`] — every terminal job is in
//!    a recognized state, successful jobs carry a circuit, and
//!    unsuccessful ones carry a typed error.
//! 3. [`ChaosInvariant::VerifiedEquivalent`] — every successful
//!    compile passed the equivalence oracle.
//! 4. [`ChaosInvariant::ResumeBitIdentical`] — every resumed job's
//!    output matched the uninjected reference bit for bit.
//! 5. [`ChaosInvariant::StoreParsesOrQuarantined`] — every surviving
//!    store file either parses or was quarantined to a
//!    `.corrupt-<digest>` sidecar; no corrupt file was left in place.

use serde::{Deserialize, Serialize};

/// The global promises a chaos campaign holds the runtime to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosInvariant {
    /// Every submitted job reached a terminal result.
    NoJobLost,
    /// Every terminal job has a classified outcome: a recognized
    /// state, a circuit iff successful, a typed error iff not.
    OutcomeClassified,
    /// Every successful compile passed the equivalence oracle.
    VerifiedEquivalent,
    /// Every checkpoint resume completed bit-identical to an
    /// uninterrupted run.
    ResumeBitIdentical,
    /// Every store file parses or was quarantined; none was left
    /// corrupt in place.
    StoreParsesOrQuarantined,
}

impl ChaosInvariant {
    /// Stable machine-readable label (used in scorecards and CI
    /// greps).
    pub fn label(&self) -> &'static str {
        match self {
            ChaosInvariant::NoJobLost => "no-job-lost",
            ChaosInvariant::OutcomeClassified => "outcome-classified",
            ChaosInvariant::VerifiedEquivalent => "verified-equivalent",
            ChaosInvariant::ResumeBitIdentical => "resume-bit-identical",
            ChaosInvariant::StoreParsesOrQuarantined => "store-parses-or-quarantined",
        }
    }
}

impl std::fmt::Display for ChaosInvariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One violated invariant with enough context to reproduce it.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct InvariantViolation {
    /// [`ChaosInvariant::label`] of the violated invariant.
    pub invariant: String,
    /// What exactly went wrong (job id, file path, ...).
    pub detail: String,
}

impl InvariantViolation {
    fn new(invariant: ChaosInvariant, detail: String) -> Self {
        InvariantViolation {
            invariant: invariant.label().to_string(),
            detail,
        }
    }
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invariant '{}' violated: {}",
            self.invariant, self.detail
        )
    }
}

/// What one job looked like after the campaign drained — a plain-data
/// mirror of the supervisor's job result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobObservation {
    /// Supervisor job id.
    pub id: u64,
    /// Workload label (for reproduction).
    pub workload: String,
    /// Terminal state label: `done`, `failed`, `cancelled`, `broken`.
    pub state: String,
    /// Whether the result carried a compiled circuit.
    pub has_circuit: bool,
    /// Whether the result carried a typed error.
    pub has_error: bool,
    /// Attempts the job consumed.
    pub attempts: u64,
    /// Oracle verdict for a successful compile; `None` when the job
    /// did not produce a circuit (or verification was skipped, which
    /// chaos never does for `done` jobs).
    pub verified_equivalent: Option<bool>,
    /// For jobs re-run from a checkpoint: whether the resumed output
    /// matched the uninjected reference bit for bit. `None` when the
    /// job was not a resume case.
    pub resume_bit_identical: Option<bool>,
}

/// How one surviving store file scanned after the campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StoreFileStatus {
    /// Frame verified and payload parsed.
    Parsed,
    /// A `.corrupt-<digest>` sidecar — corruption that was detected
    /// and moved aside, exactly as promised.
    Quarantined,
    /// A stale `.tmp` from an interrupted write — benign, the next
    /// write overwrites it.
    StaleTmp,
    /// A corrupt file still sitting at its primary path: the
    /// quarantine promise was broken.
    CorruptInPlace,
}

/// One scanned store file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoreFileObservation {
    /// Path relative to the campaign's store root.
    pub path: String,
    /// What the scan found.
    pub status: StoreFileStatus,
}

/// Checks the job-level invariants (1–4) over one campaign's drained
/// results. `submitted` is how many jobs the campaign pushed in;
/// `jobs` is what came back.
pub fn check_campaign_jobs(submitted: u64, jobs: &[JobObservation]) -> Vec<InvariantViolation> {
    let mut violations = Vec::new();
    if jobs.len() as u64 != submitted {
        violations.push(InvariantViolation::new(
            ChaosInvariant::NoJobLost,
            format!(
                "submitted {submitted} jobs but {} reached a terminal state",
                jobs.len()
            ),
        ));
    }
    for job in jobs {
        let tag = format!("job {} ({}, state={})", job.id, job.workload, job.state);
        match job.state.as_str() {
            "done" => {
                if !job.has_circuit {
                    violations.push(InvariantViolation::new(
                        ChaosInvariant::OutcomeClassified,
                        format!("{tag} succeeded without a circuit"),
                    ));
                }
                if job.has_error {
                    violations.push(InvariantViolation::new(
                        ChaosInvariant::OutcomeClassified,
                        format!("{tag} succeeded but carries an error"),
                    ));
                }
                match job.verified_equivalent {
                    Some(true) => {}
                    Some(false) => violations.push(InvariantViolation::new(
                        ChaosInvariant::VerifiedEquivalent,
                        format!("{tag} failed the equivalence oracle"),
                    )),
                    None => violations.push(InvariantViolation::new(
                        ChaosInvariant::VerifiedEquivalent,
                        format!("{tag} was never verified"),
                    )),
                }
            }
            "failed" | "cancelled" => {
                if !job.has_error {
                    violations.push(InvariantViolation::new(
                        ChaosInvariant::OutcomeClassified,
                        format!("{tag} terminated without a typed error"),
                    ));
                }
                if job.has_circuit {
                    violations.push(InvariantViolation::new(
                        ChaosInvariant::OutcomeClassified,
                        format!("{tag} failed but still carries a circuit"),
                    ));
                }
            }
            // A broken job was bounced by an open breaker before any
            // attempt; it carries neither circuit nor error by design.
            "broken" => {}
            other => violations.push(InvariantViolation::new(
                ChaosInvariant::OutcomeClassified,
                format!("job {} in unrecognized terminal state '{other}'", job.id),
            )),
        }
        if job.resume_bit_identical == Some(false) {
            violations.push(InvariantViolation::new(
                ChaosInvariant::ResumeBitIdentical,
                format!("{tag} resumed to a different circuit than the uninjected reference"),
            ));
        }
    }
    violations
}

/// Checks the store invariant (5) over a post-campaign scan of the
/// store directory.
pub fn check_store_scan(files: &[StoreFileObservation]) -> Vec<InvariantViolation> {
    files
        .iter()
        .filter(|f| f.status == StoreFileStatus::CorruptInPlace)
        .map(|f| {
            InvariantViolation::new(
                ChaosInvariant::StoreParsesOrQuarantined,
                format!("corrupt store file left in place: {}", f.path),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn done(id: u64) -> JobObservation {
        JobObservation {
            id,
            workload: "ghz".into(),
            state: "done".into(),
            has_circuit: true,
            has_error: false,
            attempts: 1,
            verified_equivalent: Some(true),
            resume_bit_identical: None,
        }
    }

    #[test]
    fn clean_campaign_has_no_violations() {
        let jobs = vec![done(0), done(1)];
        assert!(check_campaign_jobs(2, &jobs).is_empty());
        let files = vec![
            StoreFileObservation {
                path: "a.json".into(),
                status: StoreFileStatus::Parsed,
            },
            StoreFileObservation {
                path: "b.json.corrupt-0123".into(),
                status: StoreFileStatus::Quarantined,
            },
        ];
        assert!(check_store_scan(&files).is_empty());
    }

    #[test]
    fn lost_job_is_flagged() {
        let v = check_campaign_jobs(3, &[done(0), done(1)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "no-job-lost");
    }

    #[test]
    fn unverified_or_inequivalent_success_is_flagged() {
        let mut unverified = done(0);
        unverified.verified_equivalent = None;
        let mut wrong = done(1);
        wrong.verified_equivalent = Some(false);
        let v = check_campaign_jobs(2, &[unverified, wrong]);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|x| x.invariant == "verified-equivalent"));
    }

    #[test]
    fn misclassified_terminals_are_flagged() {
        let mut no_error = done(0);
        no_error.state = "failed".into();
        no_error.has_circuit = false;
        no_error.has_error = false;
        let mut weird = done(1);
        weird.state = "vanished".into();
        let v = check_campaign_jobs(2, &[no_error, weird]);
        assert!(v.iter().any(|x| x.detail.contains("typed error")));
        assert!(v.iter().any(|x| x.detail.contains("unrecognized")));
        assert!(v.iter().all(|x| x.invariant == "outcome-classified"));
    }

    #[test]
    fn resume_divergence_is_flagged() {
        let mut diverged = done(0);
        diverged.resume_bit_identical = Some(false);
        let v = check_campaign_jobs(1, &[diverged]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "resume-bit-identical");
    }

    #[test]
    fn corrupt_in_place_store_file_is_flagged() {
        let files = vec![StoreFileObservation {
            path: "ckpt-ghz.json".into(),
            status: StoreFileStatus::CorruptInPlace,
        }];
        let v = check_store_scan(&files);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "store-parses-or-quarantined");
        assert!(v[0].detail.contains("ckpt-ghz.json"));
    }

    #[test]
    fn violations_serialize_for_the_scorecard() {
        let v = InvariantViolation {
            invariant: ChaosInvariant::NoJobLost.label().to_string(),
            detail: "submitted 3, drained 2".into(),
        };
        let json = serde_json::to_string(&v).unwrap();
        let back: InvariantViolation = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v);
        assert!(v.to_string().contains("no-job-lost"));
    }
}
