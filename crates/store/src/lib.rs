//! Crash-tolerant on-disk record framing shared by every persistent
//! store (the bench compile cache, the supervisor's composition
//! checkpoints and job journal, and the cross-job composition reuse
//! store).
//!
//! Atomic temp-file + rename writes protect against a crash *between*
//! writes, but say nothing about a file that was torn by a mid-write
//! kill on a non-atomic filesystem, hit by a stray partial copy, or
//! bit-flipped at rest. This module frames every record with an ASCII
//! header carrying the payload length and an FNV-1a checksum:
//!
//! ```text
//! GEYSREC1 <length:016x> <fnv1a:016x>\n<payload bytes>
//! ```
//!
//! Loading verifies the frame before any JSON parsing happens, so a
//! torn or corrupted file surfaces as a typed [`RecordError`] — never
//! a panic, and never a silently replayed half-record. Corrupt files
//! are **quarantined** in place: renamed to a
//! `<name>.corrupt-<digest>` sidecar (the digest is the FNV-1a hash
//! of the corrupt bytes, so repeated corruption of the same content
//! dedupes), a structured warning is logged, and the
//! `store_corrupt_total` telemetry counter is bumped so corruption is
//! observable instead of degrading into an unexplained cache miss.
//!
//! Files written before this framing existed (plain JSON, no header)
//! decode as [`RecordPayload::Legacy`]; callers parse them as before
//! so an upgrade never invalidates a healthy store, and the next
//! write rewrites the file framed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::Read;
use std::path::{Path, PathBuf};

use geyser_telemetry::Telemetry;

/// Magic prefix of a framed record file.
pub const RECORD_MAGIC: &str = "GEYSREC1";

/// Telemetry counter bumped once per corrupt store file detected
/// (all store kinds combined; see [`store_corrupt_kind_counter`]).
pub const STORE_CORRUPT_COUNTER: &str = "store_corrupt_total";

/// Telemetry counter bumped once per stale `.tmp` file removed at
/// store open (a write that was killed between temp-write and rename).
pub const STORE_STALE_TMP_CLEANED_COUNTER: &str = "store_stale_tmp_cleaned_total";

/// The per-kind companion of [`STORE_CORRUPT_COUNTER`]: corruption
/// telemetry tagged by *which* store is rotting. The label is the
/// same one passed to [`quarantine_corrupt`] /
/// [`read_record_file_quarantining`]; unknown labels fold into
/// `store_corrupt_total.other`.
pub fn store_corrupt_kind_counter(label: &str) -> &'static str {
    match label {
        "cache" => "store_corrupt_total.cache",
        "checkpoint" => "store_corrupt_total.checkpoint",
        "journal" => "store_corrupt_total.journal",
        "reuse" => "store_corrupt_total.reuse",
        _ => "store_corrupt_total.other",
    }
}

/// Header layout: magic + space + 16 hex length + space + 16 hex
/// checksum + newline.
const HEADER_LEN: usize = RECORD_MAGIC.len() + 1 + 16 + 1 + 16 + 1;

/// FNV-1a over raw bytes — the same scheme the cache and checkpoint
/// fingerprints use, applied to file contents.
pub fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Why a framed record failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// The payload length disagrees with the header — the classic
    /// signature of a write torn by a crash.
    Torn {
        /// Bytes the header promised.
        expected: usize,
        /// Bytes actually present after the header.
        actual: usize,
    },
    /// The payload checksum disagrees with the header — bit rot or
    /// in-place tampering of a complete-looking file.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the bytes on disk.
        actual: u64,
    },
    /// The header parses but the payload is not valid UTF-8.
    BadPayload,
    /// The header itself is malformed (magic present but the length
    /// or checksum fields are not hex) — a torn header.
    BadHeader,
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Torn { expected, actual } => {
                write!(
                    f,
                    "torn record: header promises {expected} payload bytes, file has {actual}"
                )
            }
            RecordError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checksum mismatch: header {expected:016x}, payload {actual:016x}"
            ),
            RecordError::BadPayload => f.write_str("payload is not valid UTF-8"),
            RecordError::BadHeader => f.write_str("torn or malformed record header"),
        }
    }
}

impl std::error::Error for RecordError {}

/// A successfully decoded record file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordPayload {
    /// A framed record whose length and checksum both verified.
    Framed(String),
    /// A pre-framing file (no magic): returned verbatim for the
    /// caller to parse, preserving stores written by older versions.
    Legacy(String),
}

impl RecordPayload {
    /// The payload text regardless of framing.
    pub fn text(&self) -> &str {
        match self {
            RecordPayload::Framed(s) | RecordPayload::Legacy(s) => s,
        }
    }

    /// Whether the payload came from a verified frame.
    pub fn is_framed(&self) -> bool {
        matches!(self, RecordPayload::Framed(_))
    }
}

/// Frames a payload for storage.
pub fn encode_record(payload: &str) -> String {
    format!(
        "{RECORD_MAGIC} {:016x} {:016x}\n{payload}",
        payload.len(),
        fnv1a_bytes(payload.as_bytes())
    )
}

/// Decodes a record file's bytes, verifying length and checksum.
///
/// Bytes that do not start with [`RECORD_MAGIC`] are treated as a
/// legacy (pre-framing) file and returned verbatim when they are
/// UTF-8; the caller decides whether they parse.
pub fn decode_record(bytes: &[u8]) -> Result<RecordPayload, RecordError> {
    if !bytes.starts_with(RECORD_MAGIC.as_bytes()) {
        return match String::from_utf8(bytes.to_vec()) {
            Ok(text) => Ok(RecordPayload::Legacy(text)),
            Err(_) => Err(RecordError::BadPayload),
        };
    }
    if bytes.len() < HEADER_LEN || bytes[HEADER_LEN - 1] != b'\n' {
        return Err(RecordError::BadHeader);
    }
    let header =
        std::str::from_utf8(&bytes[..HEADER_LEN - 1]).map_err(|_| RecordError::BadHeader)?;
    let mut fields = header.split(' ');
    let _magic = fields.next();
    let expected_len = fields
        .next()
        .and_then(|s| usize::from_str_radix(s, 16).ok())
        .ok_or(RecordError::BadHeader)?;
    let expected_sum = fields
        .next()
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or(RecordError::BadHeader)?;
    let payload = &bytes[HEADER_LEN..];
    if payload.len() != expected_len {
        return Err(RecordError::Torn {
            expected: expected_len,
            actual: payload.len(),
        });
    }
    let actual_sum = fnv1a_bytes(payload);
    if actual_sum != expected_sum {
        return Err(RecordError::ChecksumMismatch {
            expected: expected_sum,
            actual: actual_sum,
        });
    }
    String::from_utf8(payload.to_vec())
        .map(RecordPayload::Framed)
        .map_err(|_| RecordError::BadPayload)
}

/// A decoded segmented (multi-frame) record file: zero or more fully
/// verified frames, plus an optional torn tail left by a crash
/// mid-append.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentedPayloads {
    /// Payloads of the frames that fully verified, in file order.
    pub records: Vec<String>,
    /// Byte length of the valid prefix (everything before the torn
    /// tail). Truncating the file to this length recovers it.
    pub valid_len: u64,
    /// Bytes in the torn tail after the valid prefix; `0` when the
    /// file ends exactly at a frame boundary.
    pub torn_bytes: u64,
}

impl SegmentedPayloads {
    /// Whether the file ended cleanly at a frame boundary.
    pub fn is_clean(&self) -> bool {
        self.torn_bytes == 0
    }
}

/// Decodes a segmented record file: concatenated `GEYSREC1` frames
/// appended over time (the write-ahead journal format).
///
/// A crash mid-append can only leave a *prefix* of a valid frame at
/// the end of the file — a partial header or a short payload. That is
/// recovered, not refused: the complete frames are returned and the
/// partial tail is reported in [`SegmentedPayloads::torn_bytes`] so
/// the caller can truncate it. Anything else — a checksum mismatch, a
/// malformed complete header, non-frame bytes at a frame boundary —
/// is *corruption* (bit rot, tampering, a foreign file) and surfaces
/// as a typed [`RecordError`] for the whole file.
pub fn decode_segmented(bytes: &[u8]) -> Result<SegmentedPayloads, RecordError> {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let remaining = &bytes[offset..];
        if remaining.len() < HEADER_LEN {
            // Too short to hold a header: a torn tail iff it is a
            // prefix of a frame start (the magic); otherwise garbage.
            let probe = remaining.len().min(RECORD_MAGIC.len());
            if remaining[..probe] == RECORD_MAGIC.as_bytes()[..probe] {
                return Ok(SegmentedPayloads {
                    records,
                    valid_len: offset as u64,
                    torn_bytes: remaining.len() as u64,
                });
            }
            return Err(RecordError::BadHeader);
        }
        if !remaining.starts_with(RECORD_MAGIC.as_bytes()) {
            return Err(RecordError::BadHeader);
        }
        if remaining[HEADER_LEN - 1] != b'\n' {
            return Err(RecordError::BadHeader);
        }
        let header = std::str::from_utf8(&remaining[..HEADER_LEN - 1])
            .map_err(|_| RecordError::BadHeader)?;
        let mut fields = header.split(' ');
        let _magic = fields.next();
        let expected_len = fields
            .next()
            .and_then(|s| usize::from_str_radix(s, 16).ok())
            .ok_or(RecordError::BadHeader)?;
        let expected_sum = fields
            .next()
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or(RecordError::BadHeader)?;
        let body_start = HEADER_LEN;
        if remaining.len() - body_start < expected_len {
            // Header complete, payload short: the classic mid-append
            // crash. Everything before this frame is good.
            return Ok(SegmentedPayloads {
                records,
                valid_len: offset as u64,
                torn_bytes: remaining.len() as u64,
            });
        }
        let payload = &remaining[body_start..body_start + expected_len];
        let actual_sum = fnv1a_bytes(payload);
        if actual_sum != expected_sum {
            return Err(RecordError::ChecksumMismatch {
                expected: expected_sum,
                actual: actual_sum,
            });
        }
        let text = String::from_utf8(payload.to_vec()).map_err(|_| RecordError::BadPayload)?;
        records.push(text);
        offset += body_start + expected_len;
    }
    Ok(SegmentedPayloads {
        records,
        valid_len: offset as u64,
        torn_bytes: 0,
    })
}

/// Appends one framed record to a segmented file, creating it (and
/// its parent directories) on first use. The caller is responsible
/// for having truncated any torn tail first (see
/// [`truncate_torn_tail`]) — appending after a partial frame would
/// bury it mid-file where it reads as corruption instead of a
/// recoverable tail.
pub fn append_record(path: &Path, payload: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    use std::io::Write;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    file.write_all(encode_record(payload).as_bytes())
}

/// Reads and decodes a segmented record file without quarantining.
/// Missing files are [`StoreReadError::Io`]; mid-file corruption is
/// [`StoreReadError::Corrupt`]; a torn tail is *not* an error — it is
/// reported in the returned [`SegmentedPayloads`].
pub fn read_segmented_file(path: &Path) -> Result<SegmentedPayloads, StoreReadError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(StoreReadError::Io)?;
    decode_segmented(&bytes).map_err(|e| {
        StoreReadError::Corrupt(StoreCorruption {
            path: path.to_path_buf(),
            digest: fnv1a_bytes(&bytes),
            reason: e.to_string(),
            quarantined: None,
        })
    })
}

/// Truncates a segmented file's torn tail in place, returning the
/// bytes reclaimed (0 when the file was already clean). Mid-file
/// corruption is returned as [`StoreReadError::Corrupt`] untouched —
/// truncation only ever removes a partial final frame.
pub fn truncate_torn_tail(path: &Path) -> Result<u64, StoreReadError> {
    let decoded = read_segmented_file(path)?;
    if decoded.torn_bytes > 0 {
        std::fs::OpenOptions::new()
            .write(true)
            .open(path)
            .and_then(|f| f.set_len(decoded.valid_len))
            .map_err(StoreReadError::Io)?;
    }
    Ok(decoded.torn_bytes)
}

/// Removes stale `*.tmp` files directly under `dir` — writes that
/// were killed between temp-write and rename. Bumps
/// [`STORE_STALE_TMP_CLEANED_COUNTER`] per file removed. A missing or
/// unreadable directory cleans nothing; stores call this at open so
/// crash litter never accumulates.
pub fn clean_stale_tmp(dir: &Path, telemetry: &Telemetry) -> usize {
    let mut cleaned = 0usize;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            let is_tmp = path
                .extension()
                .map(|e| e.to_string_lossy() == "tmp")
                .unwrap_or(false);
            if is_tmp && path.is_file() && std::fs::remove_file(&path).is_ok() {
                cleaned += 1;
            }
        }
    }
    if cleaned > 0 {
        telemetry.counter_add(STORE_STALE_TMP_CLEANED_COUNTER, cleaned as u64);
    }
    cleaned
}

/// Why a record file could not be loaded.
#[derive(Debug)]
pub enum StoreReadError {
    /// The file could not be read at all (missing counts here).
    Io(std::io::Error),
    /// The file was read but its frame or payload is corrupt.
    Corrupt(StoreCorruption),
}

impl std::fmt::Display for StoreReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreReadError::Io(e) => write!(f, "store file unreadable: {e}"),
            StoreReadError::Corrupt(c) => write!(f, "{c}"),
        }
    }
}

impl std::error::Error for StoreReadError {}

/// A typed description of one corrupt store file, including where the
/// bytes were quarantined (when quarantine succeeded).
#[derive(Debug, Clone)]
pub struct StoreCorruption {
    /// The store file that failed to load.
    pub path: PathBuf,
    /// FNV-1a digest of the corrupt bytes (the sidecar suffix).
    pub digest: u64,
    /// What exactly was wrong (torn, checksum, unparseable, ...).
    pub reason: String,
    /// The `<name>.corrupt-<digest>` sidecar the file was renamed to,
    /// or `None` when quarantine was skipped or the rename failed.
    pub quarantined: Option<PathBuf>,
}

impl std::fmt::Display for StoreCorruption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "store file corrupt: path={} digest={:016x} reason={}",
            self.path.display(),
            self.digest,
            self.reason
        )?;
        match &self.quarantined {
            Some(q) => write!(f, " quarantined={}", q.display()),
            None => write!(f, " quarantined=no"),
        }
    }
}

/// The sidecar path a corrupt file is renamed to:
/// `<file-name>.corrupt-<digest:016x>` next to the original.
pub fn corrupt_sidecar_path(path: &Path, digest: u64) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "store".to_string());
    path.with_file_name(format!("{name}.corrupt-{digest:016x}"))
}

/// Whether a file name marks an already-quarantined sidecar.
pub fn is_corrupt_sidecar(path: &Path) -> bool {
    path.file_name()
        .map(|n| n.to_string_lossy().contains(".corrupt-"))
        .unwrap_or(false)
}

/// Quarantines a corrupt store file: renames it to its
/// [`corrupt_sidecar_path`], logs a structured warning naming the
/// path and digest, and bumps [`STORE_CORRUPT_COUNTER`]. Returns the
/// typed corruption record; the original path no longer exists on
/// success, so the next write starts clean.
///
/// Quarantine must never fail the caller: a failed rename (e.g. a
/// read-only filesystem) leaves the file in place and is reported in
/// the returned record.
pub fn quarantine_corrupt(
    path: &Path,
    bytes: &[u8],
    reason: &str,
    label: &str,
    telemetry: &Telemetry,
) -> StoreCorruption {
    let digest = fnv1a_bytes(bytes);
    let sidecar = corrupt_sidecar_path(path, digest);
    let quarantined = std::fs::rename(path, &sidecar).is_ok().then_some(sidecar);
    telemetry.counter_add(STORE_CORRUPT_COUNTER, 1);
    telemetry.counter_add(store_corrupt_kind_counter(label), 1);
    let corruption = StoreCorruption {
        path: path.to_path_buf(),
        digest,
        reason: reason.to_string(),
        quarantined,
    };
    eprintln!("warning: {label} {corruption}");
    corruption
}

/// Writes a framed record crash-safely: encode, write `<path>.tmp`,
/// atomically rename over `path`. A kill mid-write leaves the
/// previous record intact; a kill between write and rename leaves a
/// stray `.tmp` the next write overwrites.
pub fn write_record_atomic(path: &Path, payload: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, encode_record(payload))?;
    std::fs::rename(&tmp, path)
}

/// Reads and decodes a record file **without** quarantining — for
/// scanners (`repair`, the chaos store audit) that must observe
/// corruption in place.
pub fn read_record_file(path: &Path) -> Result<RecordPayload, StoreReadError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(StoreReadError::Io)?;
    decode_record(&bytes).map_err(|e| {
        StoreReadError::Corrupt(StoreCorruption {
            path: path.to_path_buf(),
            digest: fnv1a_bytes(&bytes),
            reason: e.to_string(),
            quarantined: None,
        })
    })
}

/// Reads and decodes a record file, quarantining it on frame
/// corruption. `label` names the store kind in the warning line
/// (`cache` / `checkpoint`). Frame-valid payloads that later fail
/// JSON parsing should be handed back to [`quarantine_corrupt`] by
/// the caller — only the caller knows the schema.
pub fn read_record_file_quarantining(
    path: &Path,
    label: &str,
    telemetry: &Telemetry,
) -> Result<RecordPayload, StoreReadError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(StoreReadError::Io)?;
    match decode_record(&bytes) {
        Ok(payload) => Ok(payload),
        Err(e) => Err(StoreReadError::Corrupt(quarantine_corrupt(
            path,
            &bytes,
            &e.to_string(),
            label,
            telemetry,
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "geyser-store-test-{}-{tag}.json",
            std::process::id()
        ))
    }

    #[test]
    fn frame_roundtrips() {
        let body = r#"{"answer": 42}"#;
        let framed = encode_record(body);
        assert!(framed.starts_with(RECORD_MAGIC));
        assert_eq!(
            decode_record(framed.as_bytes()).unwrap(),
            RecordPayload::Framed(body.to_string())
        );
    }

    #[test]
    fn truncation_anywhere_in_the_payload_is_torn() {
        let framed = encode_record(&"x".repeat(256));
        for keep in [
            HEADER_LEN,
            HEADER_LEN + 1,
            framed.len() - 100,
            framed.len() - 1,
        ] {
            assert!(
                matches!(
                    decode_record(&framed.as_bytes()[..keep]),
                    Err(RecordError::Torn { .. })
                ),
                "truncation to {keep} bytes must read as torn"
            );
        }
    }

    #[test]
    fn truncation_inside_the_header_is_bad_header() {
        let framed = encode_record("payload");
        assert_eq!(
            decode_record(&framed.as_bytes()[..HEADER_LEN - 5]),
            Err(RecordError::BadHeader)
        );
    }

    #[test]
    fn bit_flip_is_a_checksum_mismatch() {
        let framed = encode_record(r#"{"blocks": [1, 2, 3]}"#);
        let mut bytes = framed.into_bytes();
        let flip_at = HEADER_LEN + 5;
        bytes[flip_at] ^= 0x01;
        assert!(matches!(
            decode_record(&bytes),
            Err(RecordError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn appended_garbage_is_torn_not_silently_accepted() {
        let mut framed = encode_record("payload");
        framed.push_str("tail");
        assert!(matches!(
            decode_record(framed.as_bytes()),
            Err(RecordError::Torn { .. })
        ));
    }

    #[test]
    fn unframed_files_pass_through_as_legacy() {
        let decoded = decode_record(br#"{"version": 3}"#).unwrap();
        assert!(!decoded.is_framed());
        assert_eq!(decoded.text(), r#"{"version": 3}"#);
    }

    #[test]
    fn write_and_read_roundtrip_through_disk() {
        let path = temp_path("roundtrip");
        write_record_atomic(&path, "body").unwrap();
        assert!(!path.with_extension("json.tmp").exists());
        let back = read_record_file(&path).unwrap();
        assert_eq!(back, RecordPayload::Framed("body".to_string()));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_io_not_corrupt() {
        assert!(matches!(
            read_record_file(&temp_path("never-written")),
            Err(StoreReadError::Io(_))
        ));
    }

    #[test]
    fn quarantine_renames_warns_and_counts() {
        let path = temp_path("quarantine");
        std::fs::write(&path, "garbage").unwrap();
        let telemetry = Telemetry::enabled();
        let corruption = quarantine_corrupt(&path, b"garbage", "torn", "test", &telemetry);
        assert!(!path.exists(), "corrupt file must be renamed away");
        let sidecar = corruption.quarantined.expect("rename succeeds");
        assert!(sidecar.exists());
        assert!(sidecar
            .file_name()
            .unwrap()
            .to_string_lossy()
            .contains(".corrupt-"));
        assert_eq!(corruption.digest, fnv1a_bytes(b"garbage"));
        assert_eq!(telemetry.counter_value(STORE_CORRUPT_COUNTER), Some(1));
        let _ = std::fs::remove_file(&sidecar);
    }

    #[test]
    fn quarantining_reader_files_torn_records_as_sidecars() {
        let path = temp_path("reader-quarantine");
        write_record_atomic(&path, &"y".repeat(64)).unwrap();
        let body = std::fs::read(&path).unwrap();
        std::fs::write(&path, &body[..body.len() / 2]).unwrap();
        let telemetry = Telemetry::enabled();
        let err = read_record_file_quarantining(&path, "test", &telemetry).unwrap_err();
        let StoreReadError::Corrupt(c) = err else {
            panic!("torn file must be Corrupt");
        };
        assert!(!path.exists());
        assert!(c.reason.contains("torn"));
        assert_eq!(telemetry.counter_value(STORE_CORRUPT_COUNTER), Some(1));
        let _ = std::fs::remove_file(c.quarantined.unwrap());
    }

    #[test]
    fn segmented_roundtrip_and_clean_tail() {
        let path = temp_path("segmented-roundtrip");
        let _ = std::fs::remove_file(&path);
        append_record(&path, "one").unwrap();
        append_record(&path, "two").unwrap();
        append_record(&path, "three").unwrap();
        let decoded = read_segmented_file(&path).unwrap();
        assert_eq!(decoded.records, vec!["one", "two", "three"]);
        assert!(decoded.is_clean());
        assert_eq!(truncate_torn_tail(&path).unwrap(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn segmented_truncation_at_every_offset_recovers_a_prefix() {
        let mut file = Vec::new();
        let frames = ["alpha", "braavo", r#"{"c": 3}"#];
        for payload in frames {
            file.extend_from_slice(encode_record(payload).as_bytes());
        }
        for keep in 0..file.len() {
            let decoded = decode_segmented(&file[..keep])
                .unwrap_or_else(|e| panic!("truncation to {keep} bytes must recover, got {e}"));
            // The recovered records are a strict prefix of the
            // originals — never a reordered or partial frame.
            for (i, rec) in decoded.records.iter().enumerate() {
                assert_eq!(rec, frames[i], "prefix property broken at keep={keep}");
            }
            assert_eq!(
                decoded.valid_len + decoded.torn_bytes,
                keep as u64,
                "every byte accounted for at keep={keep}"
            );
        }
        assert!(decode_segmented(&file).unwrap().is_clean());
    }

    #[test]
    fn segmented_bit_flip_is_typed_corruption_never_silent() {
        let mut file = Vec::new();
        for payload in ["first-frame", "second-frame"] {
            file.extend_from_slice(encode_record(payload).as_bytes());
        }
        let reference = decode_segmented(&file).unwrap();
        for at in 0..file.len() {
            let mut copy = file.clone();
            copy[at] ^= 0x01;
            // A flip can turn a length field into a larger value,
            // which reads as a torn (short) final frame — that is
            // a clean truncation, never a replay of altered bytes.
            if let Ok(decoded) = decode_segmented(&copy) {
                for (i, rec) in decoded.records.iter().enumerate() {
                    assert_eq!(
                        rec, &reference.records[i],
                        "flip at {at} silently altered a decoded record"
                    );
                }
                assert!(
                    decoded.torn_bytes > 0 || decoded.records.len() < 2,
                    "flip at {at} decoded clean with all frames intact"
                );
            }
        }
    }

    #[test]
    fn torn_tail_is_truncated_in_place() {
        let path = temp_path("torn-tail");
        let _ = std::fs::remove_file(&path);
        append_record(&path, "kept").unwrap();
        append_record(&path, "torn-away").unwrap();
        let body = std::fs::read(&path).unwrap();
        let cut = body.len() - 4;
        std::fs::write(&path, &body[..cut]).unwrap();
        let reclaimed = truncate_torn_tail(&path).unwrap();
        assert!(reclaimed > 0);
        let decoded = read_segmented_file(&path).unwrap();
        assert_eq!(decoded.records, vec!["kept"]);
        assert!(decoded.is_clean());
        // The file is appendable again after recovery.
        append_record(&path, "resumed").unwrap();
        assert_eq!(
            read_segmented_file(&path).unwrap().records,
            vec!["kept", "resumed"]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mid_file_corruption_refuses_the_segmented_file() {
        let mut file = Vec::new();
        file.extend_from_slice(encode_record("good").as_bytes());
        file.extend_from_slice(b"not a frame at a boundary");
        assert!(matches!(
            decode_segmented(&file),
            Err(RecordError::BadHeader)
        ));
    }

    #[test]
    fn quarantine_tags_the_store_kind() {
        let path = temp_path("kind-tag");
        std::fs::write(&path, "garbage").unwrap();
        let telemetry = Telemetry::enabled();
        quarantine_corrupt(&path, b"garbage", "torn", "journal", &telemetry);
        assert_eq!(telemetry.counter_value(STORE_CORRUPT_COUNTER), Some(1));
        assert_eq!(
            telemetry.counter_value(store_corrupt_kind_counter("journal")),
            Some(1)
        );
        assert_eq!(
            telemetry.counter_value(store_corrupt_kind_counter("cache")),
            None
        );
        let _ = std::fs::remove_file(corrupt_sidecar_path(&path, fnv1a_bytes(b"garbage")));
    }

    #[test]
    fn stale_tmp_files_are_cleaned_and_counted() {
        let dir =
            std::env::temp_dir().join(format!("geyser-store-tmpclean-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("entry.json"), "keep").unwrap();
        std::fs::write(dir.join("entry.json.tmp"), "stale").unwrap();
        std::fs::write(dir.join("other.tmp"), "stale").unwrap();
        let telemetry = Telemetry::enabled();
        assert_eq!(clean_stale_tmp(&dir, &telemetry), 2);
        assert!(dir.join("entry.json").exists());
        assert!(!dir.join("entry.json.tmp").exists());
        assert_eq!(
            telemetry.counter_value(STORE_STALE_TMP_CLEANED_COUNTER),
            Some(2)
        );
        // A second sweep is a no-op and does not bump the counter.
        assert_eq!(clean_stale_tmp(&dir, &telemetry), 0);
        assert_eq!(
            telemetry.counter_value(STORE_STALE_TMP_CLEANED_COUNTER),
            Some(2)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sidecar_names_are_recognized() {
        let sidecar = corrupt_sidecar_path(Path::new("/tmp/entry.json"), 0xabcd);
        assert!(is_corrupt_sidecar(&sidecar));
        assert!(!is_corrupt_sidecar(Path::new("/tmp/entry.json")));
        assert!(sidecar
            .to_string_lossy()
            .ends_with(".corrupt-000000000000abcd"));
    }
}
