//! The parameterized composition ansatz (paper Fig. 10).

use geyser_circuit::{Circuit, Gate, PULSES_CCZ, PULSES_CZ, PULSES_U3};
use geyser_num::CMatrix;
use geyser_sim::embed_gate;

/// The entangler choice of one ansatz layer — the categorical
/// parameter of the paper's 19-parameter layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Entangler {
    /// Native three-qubit CCZ (5 pulses).
    Ccz,
    /// CZ on local qubits (0, 1) (3 pulses).
    Cz01,
    /// CZ on local qubits (0, 2).
    Cz02,
    /// CZ on local qubits (1, 2).
    Cz12,
}

impl Entangler {
    /// All four entangler variants.
    pub const ALL: [Entangler; 4] = [
        Entangler::Ccz,
        Entangler::Cz01,
        Entangler::Cz02,
        Entangler::Cz12,
    ];

    /// Decodes a continuous parameter in `[0, 4)` to a variant —
    /// how the categorical rides inside the dual-annealing vector.
    pub fn from_continuous(x: f64) -> Self {
        match x.floor().clamp(0.0, 3.0) as usize {
            0 => Entangler::Ccz,
            1 => Entangler::Cz01,
            2 => Entangler::Cz02,
            _ => Entangler::Cz12,
        }
    }

    /// Pulse cost of this entangler.
    pub fn pulses(&self) -> u32 {
        match self {
            Entangler::Ccz => PULSES_CCZ,
            _ => PULSES_CZ,
        }
    }

    /// The entangler's 8×8 unitary on the local 3-qubit space.
    pub fn matrix(&self) -> CMatrix {
        match self {
            Entangler::Ccz => Gate::CCZ.matrix(),
            Entangler::Cz01 => embed_gate(&Gate::CZ.matrix(), &[0, 1], 3),
            Entangler::Cz02 => embed_gate(&Gate::CZ.matrix(), &[0, 2], 3),
            Entangler::Cz12 => embed_gate(&Gate::CZ.matrix(), &[1, 2], 3),
        }
    }

    /// Appends the entangler to a local 3-qubit circuit.
    pub fn emit(&self, c: &mut Circuit) {
        match self {
            Entangler::Ccz => {
                c.ccz(0, 1, 2);
            }
            Entangler::Cz01 => {
                c.cz(0, 1);
            }
            Entangler::Cz02 => {
                c.cz(0, 2);
            }
            Entangler::Cz12 => {
                c.cz(1, 2);
            }
        }
    }
}

/// The layered composition ansatz over a 3-qubit block.
///
/// With `L` layers the parameter vector is
/// `[9 initial angles] ++ L × ([1 categorical] ++ [9 angles])`,
/// dimension `9 + 10·L` — matching the paper's 19 parameters for one
/// layer and 29 for two.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ansatz {
    layers: usize,
}

impl Ansatz {
    /// Creates an ansatz with the given number of entangling layers.
    ///
    /// # Panics
    ///
    /// Panics if `layers == 0`.
    pub fn new(layers: usize) -> Self {
        assert!(layers > 0, "ansatz needs at least one layer");
        Ansatz { layers }
    }

    /// Number of entangling layers.
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Dimension of the parameter vector (paper: 19, 29, 39, …).
    pub fn num_params(&self) -> usize {
        9 + 10 * self.layers
    }

    /// Parameter bounds: angles in `[0, 2π]`, categoricals in `[0, 4)`.
    pub fn bounds(&self) -> Vec<(f64, f64)> {
        let mut b = vec![(0.0, std::f64::consts::TAU); 9];
        for _ in 0..self.layers {
            b.push((0.0, 4.0 - 1e-9));
            b.extend(std::iter::repeat_n((0.0, std::f64::consts::TAU), 9));
        }
        b
    }

    /// Smallest possible pulse count of an instantiated candidate
    /// (all-CZ entanglers, every U3 kept): used for Algorithm 2's
    /// early-exit test.
    pub fn min_pulses(&self) -> u64 {
        (3 * (self.layers as u64 + 1)) * PULSES_U3 as u64 + self.layers as u64 * PULSES_CZ as u64
    }

    /// Evaluates the ansatz unitary for a parameter vector.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.num_params()`.
    pub fn unitary(&self, params: &[f64]) -> CMatrix {
        assert_eq!(params.len(), self.num_params(), "parameter count");
        let mut u = u3_wall_matrix(&params[0..9]);
        let mut idx = 9;
        for _ in 0..self.layers {
            let ent = Entangler::from_continuous(params[idx]);
            idx += 1;
            let wall = u3_wall_matrix(&params[idx..idx + 9]);
            idx += 9;
            u = wall.matmul(&ent.matrix()).matmul(&u);
        }
        u
    }

    /// Materializes the parameter vector as a local 3-qubit circuit,
    /// dropping U3 gates that are numerically the identity (they cost
    /// a pulse but do nothing).
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.num_params()`.
    pub fn to_circuit(&self, params: &[f64]) -> Circuit {
        assert_eq!(params.len(), self.num_params(), "parameter count");
        let mut c = Circuit::new(3);
        emit_u3_wall(&mut c, &params[0..9]);
        let mut idx = 9;
        for _ in 0..self.layers {
            let ent = Entangler::from_continuous(params[idx]);
            idx += 1;
            ent.emit(&mut c);
            emit_u3_wall(&mut c, &params[idx..idx + 9]);
            idx += 9;
        }
        c
    }
}

/// Tolerance below which a U3 is treated as the identity pulse.
const IDENTITY_TOL: f64 = 1e-7;

fn u3_matrix(theta: f64, phi: f64, lambda: f64) -> CMatrix {
    Gate::U3 { theta, phi, lambda }.matrix()
}

/// 8×8 unitary of one U3-per-qubit wall.
fn u3_wall_matrix(angles: &[f64]) -> CMatrix {
    let a = u3_matrix(angles[0], angles[1], angles[2]);
    let b = u3_matrix(angles[3], angles[4], angles[5]);
    let c = u3_matrix(angles[6], angles[7], angles[8]);
    a.kron(&b).kron(&c)
}

fn emit_u3_wall(c: &mut Circuit, angles: &[f64]) {
    for q in 0..3 {
        let (theta, phi, lambda) = (angles[3 * q], angles[3 * q + 1], angles[3 * q + 2]);
        if is_identity_u3(theta, phi, lambda) {
            continue;
        }
        c.u3(theta, phi, lambda, q);
    }
}

fn is_identity_u3(theta: f64, phi: f64, lambda: f64) -> bool {
    let m = u3_matrix(theta, phi, lambda);
    let phase = m[(0, 0)];
    (phase.norm() - 1.0).abs() < IDENTITY_TOL
        && m.approx_eq(&CMatrix::identity(2).scale(phase), IDENTITY_TOL)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geyser_num::hilbert_schmidt_distance;
    use geyser_sim::circuit_unitary;

    #[test]
    fn parameter_counts_match_paper() {
        assert_eq!(Ansatz::new(1).num_params(), 19);
        assert_eq!(Ansatz::new(2).num_params(), 29);
        assert_eq!(Ansatz::new(3).num_params(), 39);
    }

    #[test]
    fn bounds_shape() {
        let a = Ansatz::new(2);
        let b = a.bounds();
        assert_eq!(b.len(), 29);
        assert_eq!(b[9].1, 4.0 - 1e-9); // first categorical
        assert_eq!(b[19].1, 4.0 - 1e-9); // second categorical
    }

    #[test]
    fn entangler_decoding() {
        assert_eq!(Entangler::from_continuous(0.3), Entangler::Ccz);
        assert_eq!(Entangler::from_continuous(1.9), Entangler::Cz01);
        assert_eq!(Entangler::from_continuous(2.0), Entangler::Cz02);
        assert_eq!(Entangler::from_continuous(3.999), Entangler::Cz12);
        // Clamping at the edges.
        assert_eq!(Entangler::from_continuous(-1.0), Entangler::Ccz);
        assert_eq!(Entangler::from_continuous(9.0), Entangler::Cz12);
    }

    #[test]
    fn entangler_matrices_are_unitary_diagonal() {
        for e in Entangler::ALL {
            let m = e.matrix();
            assert!(m.is_unitary(1e-12));
            assert_eq!(m.rows(), 8);
        }
    }

    #[test]
    fn unitary_matches_materialized_circuit() {
        let a = Ansatz::new(2);
        let params: Vec<f64> = (0..a.num_params())
            .map(|i| 0.37 * (i as f64 + 1.0) % std::f64::consts::TAU)
            .collect();
        let direct = a.unitary(&params);
        let via_circuit = circuit_unitary(&a.to_circuit(&params));
        let d = hilbert_schmidt_distance(&direct, &via_circuit);
        assert!(d < 1e-10, "HSD = {d}");
    }

    #[test]
    fn zero_angles_give_bare_entangler() {
        let a = Ansatz::new(1);
        let mut params = vec![0.0; 19];
        params[9] = 0.0; // CCZ
        let u = a.unitary(&params);
        let d = hilbert_schmidt_distance(&u, &Gate::CCZ.matrix());
        assert!(d < 1e-12);
        // The materialized circuit drops the identity U3 walls.
        let c = a.to_circuit(&params);
        assert_eq!(c.len(), 1);
        assert_eq!(c.total_pulses(), 5);
    }

    #[test]
    fn min_pulses_formula() {
        assert_eq!(Ansatz::new(1).min_pulses(), 6 + 3);
        assert_eq!(Ansatz::new(2).min_pulses(), 9 + 6);
    }

    #[test]
    fn one_layer_ccz_pulse_budget_is_eleven() {
        // Paper: one full layer = 6 U3 (6 pulses) + CCZ (5) = 11.
        let a = Ansatz::new(1);
        let mut params: Vec<f64> = vec![0.5; 19];
        params[9] = 0.0; // CCZ
        let c = a.to_circuit(&params);
        assert_eq!(c.total_pulses(), 11);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn zero_layers_panics() {
        let _ = Ansatz::new(0);
    }
}
