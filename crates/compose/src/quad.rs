//! Four-qubit composition feasibility (the paper's Fig. 7 trade-off,
//! quantified).
//!
//! Geyser deliberately composes *three*-qubit blocks: the paper argues
//! four-qubit blocks are "significantly more challenging to compose"
//! because the unitary has 256 components instead of 64 and the
//! square-cell restriction zone freezes 12 atoms instead of 9. This
//! module implements the four-qubit analogue of the composition ansatz
//! so the ablation harness can *measure* that difficulty instead of
//! asserting it: same layer structure (U3 walls + one entangler), same
//! dual-annealing search, 16×16 Hilbert–Schmidt objective.
//!
//! The module reports search outcomes; it deliberately does not emit
//! circuits — CCCZ is not part of the compilation gate alphabet
//! precisely because of the trade-off this module demonstrates.

use geyser_circuit::Gate;
use geyser_num::{hilbert_schmidt_distance, CMatrix, Complex};
use geyser_optimize::{adam, dual_annealing, AdamConfig, Bounds, DualAnnealingConfig};
use geyser_sim::embed_gate;

/// Pulses for a native four-qubit CCCZ (the Rydberg ladder costs two
/// pulses per control plus one for the target: 7).
pub const PULSES_CCCZ: u32 = 7;

/// Entangler alternatives of one four-qubit ansatz layer.
fn entangler_matrix(choice: usize) -> CMatrix {
    match choice {
        // CCCZ: diag(1,…,1,−1) on 16 dimensions.
        0 => {
            let mut d = vec![Complex::ONE; 16];
            d[15] = -Complex::ONE;
            CMatrix::from_diagonal(&d)
        }
        // CCZ on one of the four qubit triples.
        1..=4 => {
            let triples = [[0, 1, 2], [0, 1, 3], [0, 2, 3], [1, 2, 3]];
            embed_gate(&Gate::CCZ.matrix(), &triples[choice - 1], 4)
        }
        // CZ on one of the six pairs.
        _ => {
            let pairs = [[0, 1], [0, 2], [0, 3], [1, 2], [1, 3], [2, 3]];
            embed_gate(&Gate::CZ.matrix(), &pairs[(choice - 5) % 6], 4)
        }
    }
}

/// Number of categorical entangler choices per layer (CCCZ + 4 CCZ
/// placements + 6 CZ placements).
pub const QUAD_ENTANGLER_CHOICES: usize = 11;

/// The four-qubit layered ansatz: `12·(L+1)` U3 angles plus one
/// categorical entangler per layer — 49 parameters at one layer
/// versus the three-qubit ansatz's 19 (the paper's "4× harder to
/// compose" in concrete dimensions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuadAnsatz {
    layers: usize,
}

impl QuadAnsatz {
    /// Creates an ansatz with the given layer count.
    ///
    /// # Panics
    ///
    /// Panics if `layers == 0`.
    pub fn new(layers: usize) -> Self {
        assert!(layers > 0, "ansatz needs at least one layer");
        QuadAnsatz { layers }
    }

    /// Parameter-vector dimension: `12·(layers+1) + layers`.
    pub fn num_params(&self) -> usize {
        12 * (self.layers + 1) + self.layers
    }

    /// Parameter bounds (angles `[0, 2π]`, categoricals `[0, 11)`).
    pub fn bounds(&self) -> Vec<(f64, f64)> {
        let mut b = vec![(0.0, std::f64::consts::TAU); 12];
        for _ in 0..self.layers {
            b.push((0.0, QUAD_ENTANGLER_CHOICES as f64 - 1e-9));
            b.extend(std::iter::repeat_n((0.0, std::f64::consts::TAU), 12));
        }
        b
    }

    /// Evaluates the 16×16 ansatz unitary.
    ///
    /// # Panics
    ///
    /// Panics on parameter-count mismatch.
    pub fn unitary(&self, params: &[f64]) -> CMatrix {
        assert_eq!(params.len(), self.num_params(), "parameter count");
        let wall = |angles: &[f64]| -> CMatrix {
            let u = |o: usize| {
                Gate::U3 {
                    theta: angles[o],
                    phi: angles[o + 1],
                    lambda: angles[o + 2],
                }
                .matrix()
            };
            u(0).kron(&u(3)).kron(&u(6)).kron(&u(9))
        };
        let mut m = wall(&params[0..12]);
        let mut idx = 12;
        for _ in 0..self.layers {
            let choice = params[idx].floor().clamp(0.0, 10.0) as usize;
            idx += 1;
            let w = wall(&params[idx..idx + 12]);
            idx += 12;
            m = w.matmul(&entangler_matrix(choice)).matmul(&m);
        }
        m
    }
}

/// Outcome of a four-qubit composition attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuadAttempt {
    /// Best Hilbert–Schmidt distance reached.
    pub hsd: f64,
    /// Whether the threshold was met.
    pub converged: bool,
    /// Objective evaluations spent.
    pub evaluations: usize,
    /// Ansatz layers used.
    pub layers: usize,
}

/// Attempts to compose a 16×16 target with the four-qubit ansatz at a
/// fixed layer count — the measurement backing the paper's Fig. 7
/// argument. Uses the same dual-annealing engine and budget semantics
/// as the production three-qubit composer.
///
/// # Panics
///
/// Panics if `target` is not 16×16 or `layers == 0`.
pub fn try_compose_quad(
    target: &CMatrix,
    layers: usize,
    epsilon: f64,
    anneal_iters: usize,
    seed: u64,
) -> QuadAttempt {
    assert_eq!(target.rows(), 16, "quad composition targets 16×16");
    let ansatz = QuadAnsatz::new(layers);
    let bounds = Bounds::new(&ansatz.bounds());
    let objective = |p: &[f64]| hilbert_schmidt_distance(&ansatz.unitary(p), target);
    let cfg = DualAnnealingConfig::default()
        .with_seed(seed)
        .with_max_iters(anneal_iters)
        .with_target(epsilon * 0.5);
    let global = dual_annealing(&objective, &bounds, &cfg);
    let mut best = (global.fx, global.x);
    let mut evaluations = global.evaluations;
    if best.0 > epsilon {
        // Same gradient refinement the three-qubit composer applies.
        let refine = adam(
            &objective,
            &bounds,
            &best.1,
            &AdamConfig {
                max_iters: 350,
                ..AdamConfig::default()
            }
            .with_target(epsilon * 0.5),
        );
        evaluations += refine.evaluations;
        if refine.fx < best.0 {
            best = (refine.fx, refine.x);
        }
    }
    QuadAttempt {
        hsd: best.0,
        converged: best.0 <= epsilon,
        evaluations,
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_counts() {
        assert_eq!(QuadAnsatz::new(1).num_params(), 25);
        assert_eq!(QuadAnsatz::new(2).num_params(), 38);
        assert_eq!(QuadAnsatz::new(1).bounds().len(), 25);
    }

    #[test]
    fn ansatz_unitary_is_unitary() {
        let a = QuadAnsatz::new(2);
        let params: Vec<f64> = (0..a.num_params())
            .map(|i| (i as f64 * 0.37) % std::f64::consts::TAU)
            .collect();
        assert!(a.unitary(&params).is_unitary(1e-9));
    }

    #[test]
    fn all_entanglers_are_diagonal_unitaries() {
        for choice in 0..QUAD_ENTANGLER_CHOICES {
            let m = entangler_matrix(choice);
            assert!(m.is_unitary(1e-12), "choice {choice}");
            assert_eq!(m.rows(), 16);
        }
    }

    #[test]
    fn zero_walls_with_cccz_reproduce_cccz() {
        let a = QuadAnsatz::new(1);
        let mut params = vec![0.0; 25];
        params[12] = 0.0; // CCCZ
        let d = hilbert_schmidt_distance(&a.unitary(&params), &entangler_matrix(0));
        assert!(d < 1e-12);
    }

    #[test]
    fn trivial_target_converges_within_a_few_restarts() {
        // A bare CCCZ target has an exact solution at the origin, yet
        // even *this* 25-dimensional search needs restarts — the
        // difficulty the module exists to measure. A handful of seeds
        // must suffice for the trivial case.
        let mut best = f64::INFINITY;
        for seed in 0..6 {
            let attempt = try_compose_quad(&entangler_matrix(0), 1, 1e-3, 200, seed);
            best = best.min(attempt.hsd);
            if attempt.converged {
                return;
            }
        }
        panic!("no seed converged on the trivial CCCZ target; best hsd = {best}");
    }

    #[test]
    fn hard_target_reports_without_panicking() {
        // A random-ish entangled 4q target under a tiny budget: the
        // point is the honest failure report, not success.
        let mut t = entangler_matrix(0).matmul(&entangler_matrix(7));
        t = t.matmul(&entangler_matrix(3));
        let attempt = try_compose_quad(&t, 1, 1e-6, 10, 5);
        assert!(attempt.hsd >= 0.0);
        assert!(attempt.evaluations > 0);
        assert_eq!(attempt.layers, 1);
    }

    #[test]
    #[should_panic(expected = "16×16")]
    fn wrong_dimension_panics() {
        let _ = try_compose_quad(&CMatrix::identity(8), 1, 1e-3, 10, 0);
    }
}
