//! Algorithm 2: layer-growing composition with dual annealing, and
//! parallel whole-circuit composition.
//!
//! # Failure model
//!
//! Block composition is a stochastic search that can time out, fail to
//! converge, or (under fault injection / numerical trouble) produce an
//! unhealthy candidate. Every per-block attempt therefore ends in a
//! [`BlockOutcome`]: `Composed` on success, `FellBack` (with a
//! [`FallbackReason`]) when the original blocked pulses are kept, or
//! `Failed` when the worker panicked — the panic is isolated per block
//! with `catch_unwind`, so one poisoned block never takes down the
//! whole compilation. A circuit always composes; the outcomes record
//! how much of it degraded.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use geyser_blocking::BlockedCircuit;
use geyser_circuit::Circuit;
use geyser_num::{hilbert_schmidt_distance, CMatrix};
use geyser_optimize::{
    adam, dual_annealing, AdamConfig, Bounds, CancelToken, Deadline, DualAnnealingConfig,
};
use geyser_sim::circuit_unitary;
use geyser_telemetry::Telemetry;
use geyser_verify::verify_block_candidate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Ansatz, ComposeError, Entangler};

/// Configuration for block composition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompositionConfig {
    /// HSD acceptance threshold ε (Algorithm 2). The paper quotes
    /// 1e-5 for strict equivalence; 1e-3 is ample for the TVD
    /// experiments (ideal-output TVD stays ≪ 1e-2, Sec. 6).
    pub epsilon: f64,
    /// Maximum ansatz layers to try before giving up.
    pub max_layers: usize,
    /// Dual-annealing outer iterations per attempt.
    pub anneal_iters: usize,
    /// Independent annealing restarts per layer count.
    pub restarts: usize,
    /// Reseeded retries of the whole layer search after
    /// non-convergence, each with a halved annealing budget (backoff).
    pub retry_attempts: usize,
    /// Base RNG seed (each block/restart derives its own).
    pub seed: u64,
    /// Worker threads for whole-circuit composition (0 = all cores).
    pub threads: usize,
    /// Started wall-clock budget shared by all blocks: once expired,
    /// remaining blocks fall back to their original pulses with
    /// [`FallbackReason::BudgetExhausted`].
    pub deadline: Deadline,
}

impl Default for CompositionConfig {
    fn default() -> Self {
        CompositionConfig {
            epsilon: 1e-3,
            max_layers: 3,
            anneal_iters: 220,
            restarts: 3,
            retry_attempts: 1,
            seed: 0,
            threads: 0,
            deadline: Deadline::none(),
        }
    }
}

impl CompositionConfig {
    /// A reduced-budget configuration for tests and smoke runs.
    pub fn fast() -> Self {
        CompositionConfig {
            epsilon: 1e-3,
            max_layers: 2,
            anneal_iters: 60,
            restarts: 1,
            retry_attempts: 0,
            seed: 0,
            threads: 1,
            deadline: Deadline::none(),
        }
    }

    /// Returns a copy with the given seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy bounded by the given started deadline.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }
}

/// Why a block kept its original (uncomposed) pulses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// The search met ε but no candidate needed fewer pulses than the
    /// original (the normal Algorithm 2 rejection) — or the block was
    /// too small for any ansatz to beat.
    NotCheaper,
    /// No candidate met ε within the annealing budget, even after
    /// `retry_attempts` reseeded retries.
    NonConvergence,
    /// The wall-clock budget expired before or during the search.
    BudgetExhausted,
    /// A candidate met ε inside the optimizer but failed the final
    /// re-verification against the block unitary (corrupted or
    /// numerically unhealthy candidate).
    EpsilonRejected,
    /// The job's cancellation token fired before or during the search;
    /// the original pulses were kept so the run could terminate
    /// promptly.
    Cancelled,
}

impl FallbackReason {
    /// Stable kebab-case label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            FallbackReason::NotCheaper => "not-cheaper",
            FallbackReason::NonConvergence => "non-convergence",
            FallbackReason::BudgetExhausted => "budget-exhausted",
            FallbackReason::EpsilonRejected => "epsilon-rejected",
            FallbackReason::Cancelled => "cancelled",
        }
    }

    /// Parses a [`FallbackReason::label`] back to the reason (used by
    /// checkpoint loaders).
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "not-cheaper" => Some(FallbackReason::NotCheaper),
            "non-convergence" => Some(FallbackReason::NonConvergence),
            "budget-exhausted" => Some(FallbackReason::BudgetExhausted),
            "epsilon-rejected" => Some(FallbackReason::EpsilonRejected),
            "cancelled" => Some(FallbackReason::Cancelled),
            _ => None,
        }
    }
}

/// Per-block outcome of whole-circuit composition.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockOutcome {
    /// The composed candidate replaced the original block.
    Composed {
        /// Ansatz layers of the accepted candidate (0 = exact path).
        layers: usize,
        /// Verified HSD between the candidate and the block unitary.
        hsd: f64,
    },
    /// The original blocked pulses were kept.
    FellBack {
        /// Why composition did not win.
        reason: FallbackReason,
    },
    /// The composition worker panicked; the original pulses were kept
    /// and the panic payload recorded.
    Failed {
        /// Rendered panic payload.
        detail: String,
    },
    /// The block was not eligible for composition (non-triangle).
    Skipped,
}

/// Outcome of composing one block.
#[derive(Debug, Clone)]
pub struct CompositionResult {
    /// The block circuit to execute (composed, or the original when
    /// composition did not win).
    pub circuit: Circuit,
    /// HSD between the returned circuit and the original block.
    pub hsd: f64,
    /// Whether the composed candidate replaced the original.
    pub composed: bool,
    /// Ansatz layers of the accepted candidate (0 if not composed).
    pub layers: usize,
    /// How the attempt ended.
    pub outcome: BlockOutcome,
}

/// Test/bench-only fault hooks for whole-circuit composition.
///
/// Injected faults must degrade gracefully: a corrupted candidate is
/// caught by the final ε re-verification and falls back; a panicking
/// worker is isolated per block and records [`BlockOutcome::Failed`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ComposeFaults {
    /// Block indices whose accepted candidate is corrupted before the
    /// final ε re-verification.
    pub corrupt_blocks: Vec<usize>,
    /// Block indices whose composition worker panics.
    pub panic_blocks: Vec<usize>,
}

impl ComposeFaults {
    /// No injected faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether any fault is configured.
    pub fn is_empty(&self) -> bool {
        self.corrupt_blocks.is_empty() && self.panic_blocks.is_empty()
    }
}

/// Aggregate statistics of whole-circuit composition.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CompositionStats {
    /// Total blocks examined.
    pub blocks_total: usize,
    /// Triangle blocks eligible for composition.
    pub blocks_eligible: usize,
    /// Blocks where the composed candidate won.
    pub blocks_composed: usize,
    /// Pulses across all blocks before composition.
    pub pulses_before: u64,
    /// Pulses across all blocks after composition.
    pub pulses_after: u64,
    /// Eligible blocks that kept their original pulses (timeout,
    /// non-convergence, ε-rejection, or simply not cheaper).
    pub blocks_fell_back: usize,
    /// Eligible blocks whose worker panicked (isolated; original
    /// pulses kept).
    pub blocks_failed: usize,
    /// Fallbacks (a subset of [`CompositionStats::blocks_fell_back`])
    /// caused by a fired cancellation token.
    pub blocks_cancelled: usize,
    /// Blocks whose result was restored from a prior run (checkpoint
    /// resume) instead of being recomposed.
    pub blocks_resumed: usize,
    /// Largest HSD among accepted candidates (composition error bound).
    pub max_accepted_hsd: f64,
}

/// A fully composed circuit with its statistics.
#[derive(Debug, Clone)]
pub struct ComposedCircuit {
    /// The final flat circuit over the source qubit space.
    pub circuit: Circuit,
    /// Composition statistics.
    pub stats: CompositionStats,
    /// Per-block outcome, indexed like the blocked circuit's blocks.
    pub outcomes: Vec<BlockOutcome>,
}

/// Returns `true` if the unitary is the identity up to global phase.
fn is_identity_up_to_phase(u: &CMatrix, tol: f64) -> bool {
    let phase = u[(0, 0)];
    if (phase.norm() - 1.0).abs() > tol {
        return false;
    }
    u.approx_eq(&CMatrix::identity(u.rows()).scale(phase), tol)
}

/// Composes a single 3-qubit block circuit per Algorithm 2.
///
/// Grows the ansatz one layer at a time, minimizing the HSD with dual
/// annealing; accepts the first candidate that meets `epsilon` *and*
/// uses fewer pulses than the original; otherwise returns the
/// original block unchanged.
///
/// Deterministic for a fixed `(block, config)`.
///
/// # Panics
///
/// Panics if the block is not a 3-qubit circuit.
pub fn compose_block(block: &Circuit, config: &CompositionConfig) -> CompositionResult {
    try_compose_block(block, config).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`compose_block`]: returns
/// [`ComposeError::NotThreeQubit`] instead of panicking when the block
/// is not a 3-qubit circuit.
///
/// # Example
///
/// ```
/// use geyser_circuit::Circuit;
/// use geyser_compose::{try_compose_block, ComposeError, CompositionConfig};
/// let block = Circuit::new(2);
/// let err = try_compose_block(&block, &CompositionConfig::fast());
/// assert!(matches!(err, Err(ComposeError::NotThreeQubit { qubits: 2 })));
/// ```
pub fn try_compose_block(
    block: &Circuit,
    config: &CompositionConfig,
) -> Result<CompositionResult, ComposeError> {
    if block.num_qubits() != 3 {
        return Err(ComposeError::NotThreeQubit {
            qubits: block.num_qubits(),
        });
    }
    Ok(compose_block_inner(
        block,
        config,
        false,
        &CancelToken::none(),
        &Telemetry::disabled(),
    ))
}

/// How one reseeded pass over the layer ladder ended.
enum SearchVerdict {
    Accepted(CompositionResult),
    NotCheaper,
    EpsilonRejected,
    NonConvergence,
    BudgetExhausted,
    Cancelled,
}

fn compose_block_inner(
    block: &Circuit,
    config: &CompositionConfig,
    corrupt: bool,
    cancel: &CancelToken,
    telemetry: &Telemetry,
) -> CompositionResult {
    let original_pulses = block.total_pulses();
    let fall_back = |reason: FallbackReason| CompositionResult {
        circuit: block.clone(),
        hsd: 0.0,
        composed: false,
        layers: 0,
        outcome: BlockOutcome::FellBack { reason },
    };

    if block.is_empty() {
        return fall_back(FallbackReason::NotCheaper);
    }
    if cancel.is_cancelled() {
        return fall_back(FallbackReason::Cancelled);
    }
    if config.deadline.expired() {
        return fall_back(FallbackReason::BudgetExhausted);
    }
    let target = circuit_unitary(block);
    if !target.is_finite() {
        // Numerically unhealthy block unitary: nothing downstream of it
        // can be trusted, so keep the original pulses verbatim.
        return fall_back(FallbackReason::EpsilonRejected);
    }

    // Degenerate win: the block is the identity — drop it entirely.
    if is_identity_up_to_phase(&target, config.epsilon.min(1e-9)) && original_pulses > 0 {
        let hsd = hilbert_schmidt_distance(&target, &CMatrix::identity(8));
        return CompositionResult {
            circuit: Circuit::new(3),
            hsd,
            composed: true,
            layers: 0,
            outcome: BlockOutcome::Composed { layers: 0, hsd },
        };
    }

    // Exact fast path: blocks whose unitary touches at most two of the
    // three qubits synthesize deterministically — single U3 via ZYZ or
    // a ≤6-CZ KAK circuit — with no annealing at all.
    if let Some(mut exact) = exact_small_support_candidate(&target) {
        if exact.total_pulses() < original_pulses {
            if corrupt {
                exact.t(0);
            }
            // Shared oracle check (geyser-verify): the same acceptance
            // rule `--verify` trusts, so the two can never disagree.
            let check = verify_block_candidate(&exact, &target, config.epsilon);
            if check.accepted {
                let hsd = check.hsd;
                return CompositionResult {
                    circuit: exact,
                    hsd,
                    composed: true,
                    layers: 0,
                    outcome: BlockOutcome::Composed { layers: 0, hsd },
                };
            }
            // Exact synthesis missed ε (corrupted or numerically off):
            // fall through to the annealed search rather than trusting it.
        }
    }

    // Annealed layer search with reseeded retries: each retry derives a
    // fresh seed and halves the annealing budget (backoff), so a block
    // that refuses to converge costs a bounded, shrinking amount.
    let mut attempt_cfg = *config;
    for attempt in 0..=config.retry_attempts {
        if cancel.is_cancelled() {
            return fall_back(FallbackReason::Cancelled);
        }
        if config.deadline.expired() {
            return fall_back(FallbackReason::BudgetExhausted);
        }
        match search_all_layers(
            &target,
            &attempt_cfg,
            original_pulses,
            corrupt,
            cancel,
            telemetry,
        ) {
            SearchVerdict::Accepted(result) => return result,
            SearchVerdict::NotCheaper => return fall_back(FallbackReason::NotCheaper),
            SearchVerdict::EpsilonRejected => return fall_back(FallbackReason::EpsilonRejected),
            SearchVerdict::BudgetExhausted => return fall_back(FallbackReason::BudgetExhausted),
            SearchVerdict::Cancelled => return fall_back(FallbackReason::Cancelled),
            SearchVerdict::NonConvergence => {
                telemetry.counter_add("compose.retries", 1);
                attempt_cfg.seed = attempt_cfg
                    .seed
                    .wrapping_add(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(attempt as u64);
                attempt_cfg.anneal_iters = (attempt_cfg.anneal_iters / 2).max(16);
            }
        }
    }
    fall_back(FallbackReason::NonConvergence)
}

/// One pass over the layer ladder (Algorithm 2's outer loop) with the
/// final candidate re-verification.
fn search_all_layers(
    target: &CMatrix,
    config: &CompositionConfig,
    original_pulses: u64,
    corrupt: bool,
    cancel: &CancelToken,
    telemetry: &Telemetry,
) -> SearchVerdict {
    for layers in 1..=config.max_layers {
        let ansatz = Ansatz::new(layers);
        // Algorithm 2's loop guard: stop once even the cheapest
        // candidate of this depth cannot beat the original.
        if ansatz.min_pulses() >= original_pulses {
            return SearchVerdict::NotCheaper;
        }
        match search_layer(&ansatz, target, config, layers, cancel, telemetry) {
            Some((_, params)) => {
                let mut candidate = ansatz.to_circuit(&params);
                if corrupt {
                    candidate.t(0);
                }
                // Re-verify the emitted *circuit* against the block
                // unitary with the shared geyser-verify oracle check:
                // the optimizer's objective was the ansatz matrix, and
                // the candidate may have been corrupted in between
                // (fault injection) or decode unhealthily.
                let check = verify_block_candidate(&candidate, target, config.epsilon);
                if !check.accepted {
                    return SearchVerdict::EpsilonRejected;
                }
                let verified = check.hsd;
                if candidate.total_pulses() < original_pulses {
                    return SearchVerdict::Accepted(CompositionResult {
                        circuit: candidate,
                        hsd: verified,
                        composed: true,
                        layers,
                        outcome: BlockOutcome::Composed {
                            layers,
                            hsd: verified,
                        },
                    });
                }
                // Meeting ε at this depth but not cheaper: deeper
                // ansätze only cost more pulses, so the original is
                // final.
                return SearchVerdict::NotCheaper;
            }
            None if cancel.is_cancelled() => return SearchVerdict::Cancelled,
            None if config.deadline.expired() => return SearchVerdict::BudgetExhausted,
            None => {}
        }
    }
    SearchVerdict::NonConvergence
}

/// Searches one ansatz depth for parameters meeting `config.epsilon`.
///
/// Hybrid strategy:
/// 1. **Global**: dual annealing over the full vector, categorical
///    included (the paper's optimizer).
/// 2. **Refine**: Adam descent on the continuous angles from the best
///    annealing iterate (its categorical held fixed).
/// 3. **Multi-start**: Adam from seeded random starts, sweeping the
///    categorical combinations — annealing's decode first, then
///    all-CCZ, then the rest.
fn search_layer(
    ansatz: &Ansatz,
    target: &CMatrix,
    config: &CompositionConfig,
    layers: usize,
    cancel: &CancelToken,
    telemetry: &Telemetry,
) -> Option<(f64, Vec<f64>)> {
    let bounds = Bounds::new(&ansatz.bounds());
    let objective = |params: &[f64]| hilbert_schmidt_distance(&ansatz.unitary(params), target);
    let base_seed = config
        .seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(layers as u64 * 131);

    // Phase 1: global annealing (bounded by the shared deadline).
    let da_cfg = DualAnnealingConfig::default()
        .with_seed(base_seed)
        .with_max_iters(config.anneal_iters)
        .with_target(config.epsilon * 0.5)
        .with_deadline(config.deadline)
        .with_cancel(cancel.clone());
    let global = dual_annealing(&objective, &bounds, &da_cfg);
    telemetry.counter_add("compose.anneal_evaluations", global.evaluations as u64);
    if global.evaluations > 0 {
        let permille = (global.accepted as u64).saturating_mul(1000) / global.evaluations as u64;
        telemetry.histogram_record("compose.acceptance_permille", permille);
    }
    if cancel.is_cancelled() {
        return None;
    }
    if global.fx <= config.epsilon {
        return Some((global.fx, global.x));
    }
    if config.deadline.expired() {
        return None;
    }

    // Phase 2: gradient refinement of the annealing iterate.
    let adam_cfg = AdamConfig {
        max_iters: 350,
        ..AdamConfig::default()
    }
    .with_target(config.epsilon * 0.5)
    .with_deadline(config.deadline)
    .with_cancel(cancel.clone());
    let refined = adam(&objective, &bounds, &global.x, &adam_cfg);
    let mut best = if refined.fx < global.fx {
        (refined.fx, refined.x)
    } else {
        (global.fx, global.x)
    };
    if best.0 <= config.epsilon {
        return Some(best);
    }

    // Phase 3: multi-start descent over categorical combinations.
    // Blocks stuck far from the target after the global+refine phases
    // almost never converge from fresh random starts either — spend
    // the expensive sweep only when the search is within striking
    // distance.
    let promising = best.0 <= (config.epsilon * 100.0).max(0.05);
    let mut rng = StdRng::seed_from_u64(base_seed ^ 0xabcd_ef01);
    let mut combos: Vec<Vec<f64>> = Vec::new();
    // Annealing's decoded categorical first.
    combos.push(
        categorical_slots(ansatz)
            .iter()
            .map(|&slot| best.1[slot])
            .collect(),
    );
    // All-CCZ (the most expressive entangler).
    combos.push(vec![0.0; layers]);
    // Remaining combinations (exhaustive for ≤ 2 layers, sampled above).
    if layers <= 2 {
        let n_combos = 4usize.pow(layers as u32);
        for code in 0..n_combos {
            let combo: Vec<f64> = (0..layers)
                .map(|l| ((code >> (2 * l)) & 3) as f64 + 0.5)
                .collect();
            combos.push(combo);
        }
    } else {
        for _ in 0..8 {
            combos.push((0..layers).map(|_| rng.gen_range(0.0..4.0)).collect());
        }
    }
    combos.dedup_by(|a, b| {
        a.iter()
            .zip(b.iter())
            .all(|(x, y)| Entangler::from_continuous(*x) == Entangler::from_continuous(*y))
    });

    if !promising {
        combos.truncate(2); // annealing decode + all-CCZ only
    }
    let starts = config.restarts.max(1);
    for combo in combos {
        for _ in 0..starts {
            if config.deadline.expired() || cancel.is_cancelled() {
                return None;
            }
            let mut x0: Vec<f64> = (0..ansatz.num_params())
                .map(|_| rng.gen_range(0.0..std::f64::consts::TAU))
                .collect();
            for (slot, &cat) in categorical_slots(ansatz).iter().zip(&combo) {
                x0[*slot] = cat;
            }
            // Freeze the categorical during descent by pinning its
            // bounds — Adam's finite difference would otherwise step
            // across the decode boundary.
            let mut pinned = ansatz.bounds();
            for (slot, &cat) in categorical_slots(ansatz).iter().zip(&combo) {
                pinned[*slot] = (cat, cat);
            }
            let pinned_bounds = Bounds::new(&pinned);
            let res = adam(&objective, &pinned_bounds, &x0, &adam_cfg);
            if res.fx < best.0 {
                best = (res.fx, res.x);
            }
            if best.0 <= config.epsilon {
                return Some(best);
            }
        }
    }
    if best.0 <= config.epsilon {
        Some(best)
    } else {
        None
    }
}

/// Indices of the categorical entangler parameters in the vector.
fn categorical_slots(ansatz: &Ansatz) -> Vec<usize> {
    (0..ansatz.layers()).map(|l| 9 + 10 * l).collect()
}

/// Returns `true` if the 8×8 unitary acts as the identity on local
/// qubit `q` — i.e. it commutes with both `X_q` and `Z_q` (commuting
/// with all of su(2) on a qubit forces a tensor-product identity
/// there).
fn qubit_untouched(target: &CMatrix, q: usize) -> bool {
    for pauli in [geyser_circuit::Gate::X, geyser_circuit::Gate::Z] {
        let full = geyser_sim::embed_gate(&pauli.matrix(), &[q], 3);
        let lhs = target.matmul(&full);
        let rhs = full.matmul(target);
        if !lhs.approx_eq(&rhs, 1e-9) {
            return false;
        }
    }
    true
}

/// Extracts the 4×4 unitary a 3-qubit unitary applies to two local
/// qubits, given the third is untouched: entries are read with the
/// idle qubit pinned to |0⟩.
fn reduce_to_pair(target: &CMatrix, active: [usize; 2]) -> CMatrix {
    let bit = |q: usize| 2 - q; // big-endian local bit position
    let full_index = |local: usize| -> usize {
        let mut idx = 0usize;
        for (j, &q) in active.iter().enumerate() {
            if (local >> (1 - j)) & 1 == 1 {
                idx |= 1 << bit(q);
            }
        }
        idx
    };
    CMatrix::from_fn(4, 4, |r, c| target[(full_index(r), full_index(c))])
}

/// Deterministic exact synthesis for blocks with ≤2-qubit support:
/// returns a minimal-pulse local circuit, or `None` when all three
/// qubits are genuinely engaged.
fn exact_small_support_candidate(target: &CMatrix) -> Option<Circuit> {
    let untouched: Vec<usize> = (0..3).filter(|&q| qubit_untouched(target, q)).collect();
    match untouched.len() {
        3 => Some(Circuit::new(3)), // identity (handled earlier, but safe)
        2 => {
            // Single-qubit support: one U3.
            let active = (0..3).find(|q| !untouched.contains(q))?;
            let pair_partner = untouched[0];
            let reduced = reduce_to_pair(target, [active, pair_partner]);
            // The partner is idle: the 4×4 is U ⊗ I; take the 2×2.
            let u2 = CMatrix::from_fn(2, 2, |r, c| reduced[(2 * r, 2 * c)]);
            let d = geyser_num::zyz_angles(&u2)?;
            let mut out = Circuit::new(3);
            out.u3(d.theta, d.phi, d.lambda, active);
            Some(out)
        }
        1 => {
            let idle = untouched[0];
            let active: Vec<usize> = (0..3).filter(|&q| q != idle).collect();
            let reduced = reduce_to_pair(target, [active[0], active[1]]);
            let local = geyser_synth::synthesize_two_qubit(&reduced)?;
            // Remap the 2-qubit circuit onto the block's active qubits.
            Some(local.remapped(3, |q| active[q]))
        }
        // All three qubits engaged: the unitary may still factor as a
        // tensor product of one qubit against an entangled pair.
        _ => bipartite_factor_candidate(target),
    }
}

/// Catches `U = U₁ ⊗ U₂` across the three lone-qubit bipartitions of
/// an 8×8 unitary where the lone factor is *not* the identity (the
/// commutation test misses those): emits one U3 plus an exact KAK
/// circuit for the pair.
fn bipartite_factor_candidate(target: &CMatrix) -> Option<Circuit> {
    // (lone qubit, permuted pair order) after swapping `lone` to the
    // most significant position.
    const CASES: [(usize, [usize; 2]); 3] = [(0, [1, 2]), (1, [0, 2]), (2, [1, 0])];
    for (lone, pair) in CASES {
        let permuted = if lone == 0 {
            target.clone()
        } else {
            let swap = geyser_sim::embed_gate(&geyser_circuit::Gate::Swap.matrix(), &[0, lone], 3);
            swap.matmul(target).matmul(&swap)
        };
        let Some((u1, u4)) = geyser_synth::split_tensor_product_dims(&permuted, 2, 1e-8) else {
            continue;
        };
        let mut out = Circuit::new(3);
        // Pair part first; ordering is irrelevant (disjoint qubits).
        let local = geyser_synth::synthesize_two_qubit(&u4)?;
        out.extend_from(&local.remapped(3, |q| pair[q]));
        if !is_identity_up_to_phase(&u1, 1e-9) {
            let d = geyser_num::zyz_angles(&u1)?;
            out.u3(d.theta, d.phi, d.lambda, lone);
        }
        return Some(out);
    }
    None
}

/// Composes every eligible triangle block of a blocked circuit in
/// parallel (the paper notes all blocks compose independently and
/// uses multiprocessing; here a crossbeam scoped-thread pool).
///
/// The returned circuit re-emits rounds/blocks in order, substituting
/// composed block bodies remapped onto their lattice nodes.
///
/// Deterministic for a fixed `(blocked, config)` regardless of thread
/// count (per-block seeds).
pub fn compose_blocked_circuit(
    blocked: &BlockedCircuit,
    config: &CompositionConfig,
) -> ComposedCircuit {
    try_compose_blocked_circuit(blocked, config).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`compose_blocked_circuit`] with no fault hooks.
pub fn try_compose_blocked_circuit(
    blocked: &BlockedCircuit,
    config: &CompositionConfig,
) -> Result<ComposedCircuit, ComposeError> {
    try_compose_blocked_circuit_with_faults(blocked, config, &ComposeFaults::none())
}

/// Callback invoked by the composition pool as each block finishes.
///
/// Runs on the worker thread that composed the block, so
/// implementations must be `Sync`; checkpoint writers use it to
/// persist per-block results as they land. Observers are *not*
/// notified for resumed blocks (results injected via `prior`), and
/// should ignore [`FallbackReason::Cancelled`] fallbacks — a cancelled
/// block was never actually attempted.
pub trait BlockObserver: Sync {
    /// Called once per freshly composed (non-resumed) eligible block.
    fn block_finished(&self, index: usize, result: &CompositionResult);
}

/// Renders a `catch_unwind` payload as text.
fn panic_payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// [`try_compose_blocked_circuit`] with test/bench-only fault
/// injection.
///
/// Each block's composition runs under `catch_unwind`: a panicking
/// block (injected or real) records [`BlockOutcome::Failed`], keeps
/// its original pulses, and never poisons the worker pool — the scope
/// always joins cleanly and the remaining blocks compose normally.
pub fn try_compose_blocked_circuit_with_faults(
    blocked: &BlockedCircuit,
    config: &CompositionConfig,
    faults: &ComposeFaults,
) -> Result<ComposedCircuit, ComposeError> {
    try_compose_blocked_circuit_supervised(
        blocked,
        config,
        faults,
        &CancelToken::none(),
        &[],
        None,
        &Telemetry::disabled(),
    )
}

/// The fully supervised composition entry point: fault injection plus
/// cooperative cancellation, checkpoint resume, and per-block
/// completion observation.
///
/// * `cancel` — polled before every block and inside every annealing
///   chain move; once fired, remaining blocks fall back with
///   [`FallbackReason::Cancelled`] and the pool drains promptly.
/// * `prior` — per-block results from an earlier (interrupted) run,
///   indexed like the blocked circuit's blocks; a `Some` slot is
///   restored verbatim (counted in
///   [`CompositionStats::blocks_resumed`]) instead of recomposed.
///   Because every block derives its seed from `(config.seed, index)`,
///   a resumed run is bit-identical to an uninterrupted one.
/// * `observer` — notified on the worker thread as each fresh block
///   finishes (checkpoint writers hook in here).
/// * `telemetry` — records a `compose.block` span per fresh block plus
///   annealer counters and the acceptance-rate histogram. Timings are
///   observational only: results are bit-identical with telemetry
///   enabled or disabled.
#[allow(clippy::too_many_arguments)]
pub fn try_compose_blocked_circuit_supervised(
    blocked: &BlockedCircuit,
    config: &CompositionConfig,
    faults: &ComposeFaults,
    cancel: &CancelToken,
    prior: &[Option<CompositionResult>],
    observer: Option<&dyn BlockObserver>,
    telemetry: &Telemetry,
) -> Result<ComposedCircuit, ComposeError> {
    let source = blocked.source();
    let blocks: Vec<_> = blocked.blocks().collect();
    let num_blocks = blocks.len();

    // Work queue over block indices; results slot per block.
    let results: Mutex<Vec<Option<CompositionResult>>> = Mutex::new(vec![None; num_blocks]);
    let next = AtomicUsize::new(0);
    let resumed = AtomicUsize::new(0);
    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        config.threads
    };

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.min(num_blocks.max(1)) {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= num_blocks {
                    break;
                }
                let block = blocks[i];
                let result = if block.is_triangle() {
                    let local = block.subcircuit(source);
                    if let Some(prev) = prior.get(i).and_then(|p| p.as_ref()) {
                        // Checkpoint resume: restore the recorded result
                        // without paying for the search again.
                        resumed.fetch_add(1, Ordering::Relaxed);
                        telemetry.counter_add("compose.blocks_resumed", 1);
                        Some(prev.clone())
                    } else {
                        let cfg = config.with_seed(config.seed.wrapping_add(i as u64));
                        let corrupt = faults.corrupt_blocks.contains(&i);
                        let inject_panic = faults.panic_blocks.contains(&i);
                        let mut span = telemetry.span("compose", "compose.block");
                        span.attr("index", i);
                        // Panic isolation: one block's panic (injected or a
                        // genuine solver bug) must not take down the pool.
                        let attempt = catch_unwind(AssertUnwindSafe(|| {
                            if inject_panic {
                                panic!("injected composition fault in block {i}");
                            }
                            compose_block_inner(&local, &cfg, corrupt, cancel, telemetry)
                        }));
                        let res = match attempt {
                            Ok(res) => res,
                            Err(payload) => CompositionResult {
                                circuit: local.clone(),
                                hsd: 0.0,
                                composed: false,
                                layers: 0,
                                outcome: BlockOutcome::Failed {
                                    detail: panic_payload_message(payload),
                                },
                            },
                        };
                        match &res.outcome {
                            BlockOutcome::Composed { layers, .. } => {
                                span.attr("outcome", "composed");
                                span.attr("layers", layers);
                                telemetry.counter_add("compose.blocks_composed", 1);
                            }
                            BlockOutcome::FellBack { reason } => {
                                span.attr("outcome", reason.label());
                                telemetry.counter_add("compose.blocks_fell_back", 1);
                            }
                            BlockOutcome::Failed { .. } => {
                                span.attr("outcome", "failed");
                                telemetry.counter_add("compose.blocks_failed", 1);
                            }
                            BlockOutcome::Skipped => {}
                        }
                        drop(span);
                        if let Some(obs) = observer {
                            obs.block_finished(i, &res);
                        }
                        Some(res)
                    }
                } else {
                    None
                };
                // Lock holders only assign a Vec slot; recover the data
                // even if another worker somehow poisoned the mutex.
                results
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)[i] = result;
            });
        }
    })
    // Worker bodies are wrapped in catch_unwind above, so a scope-level
    // panic means the pool infrastructure itself failed — surface it as
    // a typed error rather than unwinding through the pipeline.
    .map_err(|payload| ComposeError::WorkerPanicked {
        detail: panic_payload_message(payload),
    })?;

    // The scope joined every worker above; recover from poisoning the
    // same way as the assignment sites.
    let results = results
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);

    // Reassemble with substitutions.
    let mut out = Circuit::new(source.num_qubits());
    let mut stats = CompositionStats {
        blocks_total: num_blocks,
        blocks_resumed: resumed.load(Ordering::Relaxed),
        ..CompositionStats::default()
    };
    let mut outcomes = Vec::with_capacity(num_blocks);
    for (block, result) in blocks.iter().zip(&results) {
        let before: u64 = block.pulses(source);
        stats.pulses_before += before;
        match result {
            Some(res) => {
                stats.blocks_eligible += 1;
                match &res.outcome {
                    BlockOutcome::Composed { .. } => {
                        stats.blocks_composed += 1;
                        stats.max_accepted_hsd = stats.max_accepted_hsd.max(res.hsd);
                    }
                    BlockOutcome::FellBack { reason } => {
                        stats.blocks_fell_back += 1;
                        if *reason == FallbackReason::Cancelled {
                            stats.blocks_cancelled += 1;
                        }
                    }
                    BlockOutcome::Failed { .. } => stats.blocks_failed += 1,
                    BlockOutcome::Skipped => {}
                }
                outcomes.push(res.outcome.clone());
                stats.pulses_after += res.circuit.total_pulses();
                let remapped = res
                    .circuit
                    .remapped(source.num_qubits(), |q| block.qubits()[q]);
                out.extend_from(&remapped);
            }
            None => {
                outcomes.push(BlockOutcome::Skipped);
                stats.pulses_after += before;
                for &i in block.op_indices() {
                    out.push(source.ops()[i].clone());
                }
            }
        }
    }
    Ok(ComposedCircuit {
        circuit: out,
        stats,
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use geyser_blocking::{block_circuit, BlockingConfig};
    use geyser_topology::Lattice;

    /// The paper's Fig. 11 example: a CCZ decomposed into 6 CZ and
    /// 8 single-qubit gates (26 pulses).
    fn decomposed_ccz() -> Circuit {
        let mut c = Circuit::new(3);
        let cx = |c: &mut Circuit, a: usize, b: usize| {
            c.h(b);
            c.cz(a, b);
            c.h(b);
        };
        cx(&mut c, 1, 2);
        c.tdg(2);
        cx(&mut c, 0, 2);
        c.t(2);
        cx(&mut c, 1, 2);
        c.tdg(2);
        cx(&mut c, 0, 2);
        c.t(1);
        c.t(2);
        cx(&mut c, 0, 1);
        c.t(0);
        c.tdg(1);
        cx(&mut c, 0, 1);
        c
    }

    #[test]
    fn identity_block_composes_to_nothing() {
        let mut block = Circuit::new(3);
        block.h(0).h(0).cz(1, 2).cz(1, 2);
        let res = compose_block(&block, &CompositionConfig::fast());
        assert!(res.composed);
        assert!(res.circuit.is_empty());
        assert!(res.hsd < 1e-9);
    }

    #[test]
    fn tiny_block_is_kept() {
        // 2 pulses: cheaper than any ansatz — must pass through.
        let mut block = Circuit::new(3);
        block.h(0).t(1);
        let res = compose_block(&block, &CompositionConfig::fast());
        assert!(!res.composed);
        assert_eq!(res.circuit.ops(), block.ops());
    }

    #[test]
    fn composition_never_increases_pulses() {
        let mut block = Circuit::new(3);
        block.h(0).cz(0, 1).t(1).cz(1, 2).h(2).cz(0, 1);
        let res = compose_block(&block, &CompositionConfig::fast());
        assert!(res.circuit.total_pulses() <= block.total_pulses());
    }

    #[test]
    fn decomposed_ccz_recomposes_to_native_form() {
        // The marquee example: 26 pulses of U3/CZ collapse back to a
        // CCZ-bearing form far below the original cost.
        let block = decomposed_ccz();
        // 37 raw pulses here; OptiMap's 1q fusion would bring it to
        // the paper's 26 (8 fused U3 + 6 CZ). Either way composition
        // must find the ~11-pulse CCZ form.
        assert_eq!(block.total_pulses(), 37);
        let cfg = CompositionConfig {
            epsilon: 1e-3,
            max_layers: 1,
            anneal_iters: 400,
            restarts: 4,
            seed: 11,
            threads: 1,
            ..CompositionConfig::default()
        };
        let res = compose_block(&block, &cfg);
        assert!(res.composed, "composition failed, hsd = {}", res.hsd);
        assert!(
            res.circuit.total_pulses() <= 11,
            "pulses = {}",
            res.circuit.total_pulses()
        );
        // Verify true equivalence of the accepted candidate.
        let d = hilbert_schmidt_distance(&circuit_unitary(&block), &circuit_unitary(&res.circuit));
        assert!(d <= 1.5e-3, "accepted candidate diverges: {d}");
    }

    #[test]
    fn composed_circuit_matches_source_distribution() {
        let lat = Lattice::triangular(2, 2);
        let mut c = Circuit::new(4);
        c.h(0).cz(0, 1).h(1).cz(1, 2).h(2).cz(0, 2).h(0).cz(1, 2);
        let blocked = block_circuit(&c, &lat, &BlockingConfig::default());
        let composed = compose_blocked_circuit(&blocked, &CompositionConfig::fast().with_seed(3));
        assert_eq!(composed.stats.blocks_total, blocked.num_blocks());
        // Equivalence within the accepted HSD budget: compare ideal
        // output distributions.
        let p1 = geyser_sim::ideal_distribution(&c);
        let p2 = geyser_sim::ideal_distribution(&composed.circuit);
        let tvd = geyser_sim::total_variation_distance(&p1, &p2);
        assert!(tvd < 1e-2, "TVD = {tvd}");
    }

    #[test]
    fn stats_account_for_all_blocks() {
        let lat = Lattice::triangular(2, 3);
        let mut c = Circuit::new(6);
        c.h(0).cz(0, 1).cz(3, 4).h(4).cz(4, 5).t(5);
        let blocked = block_circuit(&c, &lat, &BlockingConfig::default());
        let composed = compose_blocked_circuit(&blocked, &CompositionConfig::fast());
        assert_eq!(composed.stats.blocks_total, blocked.num_blocks());
        assert!(composed.stats.pulses_after <= composed.stats.pulses_before);
        assert_eq!(composed.stats.pulses_before, c.total_pulses());
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let lat = Lattice::triangular(2, 3);
        let mut c = Circuit::new(6);
        c.h(0).cz(0, 1).h(1).cz(1, 2).cz(3, 4).h(4).cz(4, 5);
        let blocked = block_circuit(&c, &lat, &BlockingConfig::default());
        let mut cfg1 = CompositionConfig::fast();
        cfg1.threads = 1;
        let mut cfg4 = CompositionConfig::fast();
        cfg4.threads = 4;
        let a = compose_blocked_circuit(&blocked, &cfg1);
        let b = compose_blocked_circuit(&blocked, &cfg4);
        assert_eq!(a.circuit.ops(), b.circuit.ops());
    }

    #[test]
    #[should_panic(expected = "3-qubit blocks")]
    fn wrong_block_size_panics() {
        let _ = compose_block(&Circuit::new(2), &CompositionConfig::fast());
    }

    #[test]
    fn single_qubit_support_block_fuses_to_one_u3() {
        // Many gates on one qubit (others idle): exact path collapses
        // them to a single pulse without touching the annealer.
        let mut block = Circuit::new(3);
        block.h(1).t(1).ry(0.4, 1).h(1).rz(1.1, 1);
        let res = compose_block(&block, &CompositionConfig::fast());
        assert!(res.composed);
        assert_eq!(res.circuit.len(), 1);
        assert_eq!(res.circuit.total_pulses(), 1);
        assert!(res.hsd < 1e-8);
    }

    #[test]
    fn two_qubit_support_block_uses_exact_kak() {
        // A diagonal (ZZ-class) pattern on qubits (0, 2): exact KAK
        // needs only two CZ, far below the original's four.
        let mut block = Circuit::new(3);
        block
            .cz(0, 2)
            .rz(0.3, 0)
            .rz(0.4, 2)
            .cz(0, 2)
            .t(0)
            .cz(0, 2)
            .rz(0.2, 2)
            .cz(0, 2);
        let original_pulses = block.total_pulses();
        let res = compose_block(&block, &CompositionConfig::fast());
        assert!(res.composed, "exact path should fire");
        assert!(res.circuit.total_pulses() < original_pulses);
        assert!(res.hsd < 1e-7, "hsd = {}", res.hsd);
        // Idle qubit 1 must stay idle.
        assert!(res.circuit.iter().all(|op| !op.acts_on(1)));
        // True equivalence.
        let d = hilbert_schmidt_distance(&circuit_unitary(&block), &circuit_unitary(&res.circuit));
        assert!(d < 1e-7);
    }

    #[test]
    fn bipartite_factor_blocks_synthesize_exactly() {
        // Qubit 1 does its own single-qubit dance while (0, 2) build a
        // diagonal entangler: U = U₁q ⊗ U₂q across the bipartition.
        let mut block = Circuit::new(3);
        block
            .h(1)
            .cz(0, 2)
            .t(1)
            .rz(0.3, 0)
            .cz(0, 2)
            .ry(0.4, 1)
            .cz(0, 2)
            .rz(0.2, 2)
            .cz(0, 2)
            .h(1);
        let res = compose_block(&block, &CompositionConfig::fast());
        assert!(res.composed, "bipartite exact path should fire");
        assert!(res.hsd < 1e-7, "hsd = {}", res.hsd);
        assert!(res.circuit.total_pulses() < block.total_pulses());
        let d = hilbert_schmidt_distance(&circuit_unitary(&block), &circuit_unitary(&res.circuit));
        assert!(d < 1e-7, "equivalence broken: {d}");
    }

    #[test]
    fn exact_path_respects_pulse_acceptance() {
        // Cheap 2q block already minimal: exact candidate cannot be
        // cheaper, so the original is kept.
        let mut block = Circuit::new(3);
        block.cz(0, 1);
        let res = compose_block(&block, &CompositionConfig::fast());
        assert!(!res.composed);
        assert_eq!(res.circuit.ops(), block.ops());
    }

    /// A 4-qubit circuit whose blocking yields at least one eligible
    /// triangle block, shared by the fault-injection tests.
    fn blocked_fixture() -> (Circuit, BlockedCircuit) {
        let lat = Lattice::triangular(2, 2);
        let mut c = Circuit::new(4);
        c.h(0).cz(0, 1).h(1).cz(1, 2).h(2).cz(0, 2).h(0).cz(1, 2);
        let blocked = block_circuit(&c, &lat, &BlockingConfig::default());
        (c, blocked)
    }

    #[test]
    fn outcomes_cover_every_block() {
        let (_, blocked) = blocked_fixture();
        let composed = compose_blocked_circuit(&blocked, &CompositionConfig::fast());
        assert_eq!(composed.outcomes.len(), composed.stats.blocks_total);
        assert_eq!(
            composed.stats.blocks_eligible,
            composed.stats.blocks_composed
                + composed.stats.blocks_fell_back
                + composed.stats.blocks_failed
        );
    }

    #[test]
    fn injected_panic_is_isolated_and_keeps_original_pulses() {
        let (c, blocked) = blocked_fixture();
        let eligible: Vec<usize> = blocked
            .blocks()
            .enumerate()
            .filter(|(_, b)| b.is_triangle())
            .map(|(i, _)| i)
            .collect();
        assert!(!eligible.is_empty(), "fixture must have a triangle block");
        let faults = ComposeFaults {
            panic_blocks: vec![eligible[0]],
            ..ComposeFaults::none()
        };
        let composed =
            try_compose_blocked_circuit_with_faults(&blocked, &CompositionConfig::fast(), &faults)
                .expect("panic must be isolated per block, not surfaced");
        assert_eq!(composed.stats.blocks_failed, 1);
        match &composed.outcomes[eligible[0]] {
            BlockOutcome::Failed { detail } => {
                assert!(detail.contains("injected composition fault"), "{detail}");
            }
            other => panic!("expected Failed outcome, got {other:?}"),
        }
        // The degraded circuit still matches the source distribution.
        let p1 = geyser_sim::ideal_distribution(&c);
        let p2 = geyser_sim::ideal_distribution(&composed.circuit);
        assert!(geyser_sim::total_variation_distance(&p1, &p2) < 1e-2);
    }

    #[test]
    fn corrupted_candidate_is_caught_by_reverification() {
        let (c, blocked) = blocked_fixture();
        let all: Vec<usize> = (0..blocked.num_blocks()).collect();
        let faults = ComposeFaults {
            corrupt_blocks: all,
            ..ComposeFaults::none()
        };
        let composed =
            try_compose_blocked_circuit_with_faults(&blocked, &CompositionConfig::fast(), &faults)
                .expect("corruption must degrade, not error");
        // No corrupted candidate may slip through the ε re-check: every
        // eligible block either legitimately fell back or had its
        // corrupted winner rejected — so the output equals the source.
        assert_eq!(composed.stats.blocks_composed, 0);
        assert!(composed
            .outcomes
            .iter()
            .all(|o| matches!(o, BlockOutcome::FellBack { .. } | BlockOutcome::Skipped)));
        let p1 = geyser_sim::ideal_distribution(&c);
        let p2 = geyser_sim::ideal_distribution(&composed.circuit);
        assert!(geyser_sim::total_variation_distance(&p1, &p2) < 1e-9);
    }

    #[test]
    fn expired_deadline_falls_back_budget_exhausted() {
        let (c, blocked) = blocked_fixture();
        let cfg = CompositionConfig::fast().with_deadline(Deadline::already_expired());
        let composed = compose_blocked_circuit(&blocked, &cfg);
        assert_eq!(composed.stats.blocks_composed, 0);
        assert!(composed.stats.blocks_fell_back > 0);
        assert!(composed.outcomes.iter().any(|o| matches!(
            o,
            BlockOutcome::FellBack {
                reason: FallbackReason::BudgetExhausted
            }
        )));
        // Budget exhaustion still yields a runnable, equivalent circuit.
        assert_eq!(composed.stats.pulses_after, composed.stats.pulses_before);
        let p1 = geyser_sim::ideal_distribution(&c);
        let p2 = geyser_sim::ideal_distribution(&composed.circuit);
        assert!(geyser_sim::total_variation_distance(&p1, &p2) < 1e-9);
    }

    #[test]
    fn retry_backoff_is_deterministic() {
        let (_, blocked) = blocked_fixture();
        let mut cfg = CompositionConfig::fast();
        cfg.retry_attempts = 2;
        let a = compose_blocked_circuit(&blocked, &cfg);
        let b = compose_blocked_circuit(&blocked, &cfg);
        assert_eq!(a.circuit.ops(), b.circuit.ops());
        assert_eq!(a.outcomes, b.outcomes);
    }

    /// Test observer recording every fresh block completion.
    struct Recorder {
        seen: Mutex<Vec<(usize, CompositionResult)>>,
    }

    impl BlockObserver for Recorder {
        fn block_finished(&self, index: usize, result: &CompositionResult) {
            self.seen.lock().unwrap().push((index, result.clone()));
        }
    }

    #[test]
    fn pre_cancelled_token_falls_back_every_block_as_cancelled() {
        let (c, blocked) = blocked_fixture();
        let token = CancelToken::new();
        token.cancel();
        let composed = try_compose_blocked_circuit_supervised(
            &blocked,
            &CompositionConfig::fast(),
            &ComposeFaults::none(),
            &token,
            &[],
            None,
            &Telemetry::disabled(),
        )
        .expect("cancellation degrades, it does not error");
        assert_eq!(composed.stats.blocks_composed, 0);
        assert!(composed.stats.blocks_cancelled > 0);
        assert_eq!(
            composed.stats.blocks_cancelled,
            composed.stats.blocks_fell_back
        );
        assert!(composed.outcomes.iter().all(|o| matches!(
            o,
            BlockOutcome::FellBack {
                reason: FallbackReason::Cancelled
            } | BlockOutcome::Skipped
        )));
        // Cancelled composition still hands back the original circuit.
        let p1 = geyser_sim::ideal_distribution(&c);
        let p2 = geyser_sim::ideal_distribution(&composed.circuit);
        assert!(geyser_sim::total_variation_distance(&p1, &p2) < 1e-9);
    }

    #[test]
    fn observer_sees_every_eligible_block_exactly_once() {
        let (_, blocked) = blocked_fixture();
        let recorder = Recorder {
            seen: Mutex::new(Vec::new()),
        };
        let composed = try_compose_blocked_circuit_supervised(
            &blocked,
            &CompositionConfig::fast(),
            &ComposeFaults::none(),
            &CancelToken::none(),
            &[],
            Some(&recorder),
            &Telemetry::disabled(),
        )
        .unwrap();
        let mut seen = recorder.seen.into_inner().unwrap();
        seen.sort_by_key(|(i, _)| *i);
        assert_eq!(seen.len(), composed.stats.blocks_eligible);
        let mut indices: Vec<usize> = seen.iter().map(|(i, _)| *i).collect();
        indices.dedup();
        assert_eq!(indices.len(), seen.len(), "duplicate notifications");
    }

    #[test]
    fn resume_from_prior_results_is_bit_identical_and_skips_work() {
        let (_, blocked) = blocked_fixture();
        let cfg = CompositionConfig::fast().with_seed(7);
        let recorder = Recorder {
            seen: Mutex::new(Vec::new()),
        };
        let full = try_compose_blocked_circuit_supervised(
            &blocked,
            &cfg,
            &ComposeFaults::none(),
            &CancelToken::none(),
            &[],
            Some(&recorder),
            &Telemetry::disabled(),
        )
        .unwrap();
        // Build a partial checkpoint: keep only the first recorded
        // block, as if the run was killed after one completion.
        let mut prior: Vec<Option<CompositionResult>> = vec![None; blocked.num_blocks()];
        let seen = recorder.seen.into_inner().unwrap();
        assert!(!seen.is_empty());
        let (idx, res) = &seen[0];
        prior[*idx] = Some(res.clone());

        let resumed_recorder = Recorder {
            seen: Mutex::new(Vec::new()),
        };
        let resumed = try_compose_blocked_circuit_supervised(
            &blocked,
            &cfg,
            &ComposeFaults::none(),
            &CancelToken::none(),
            &prior,
            Some(&resumed_recorder),
            &Telemetry::disabled(),
        )
        .unwrap();
        // Same seed + per-block seeding ⇒ bit-identical to the
        // uninterrupted run, with the checkpointed block restored.
        assert_eq!(resumed.circuit.ops(), full.circuit.ops());
        assert_eq!(resumed.outcomes, full.outcomes);
        assert_eq!(resumed.stats.blocks_resumed, 1);
        // The restored block must not be re-announced to the observer.
        let resumed_seen = resumed_recorder.seen.into_inner().unwrap();
        assert!(resumed_seen.iter().all(|(i, _)| i != idx));
        assert_eq!(resumed_seen.len(), full.stats.blocks_eligible - 1);
    }

    #[test]
    fn fallback_reason_labels_round_trip() {
        for reason in [
            FallbackReason::NotCheaper,
            FallbackReason::NonConvergence,
            FallbackReason::BudgetExhausted,
            FallbackReason::EpsilonRejected,
            FallbackReason::Cancelled,
        ] {
            assert_eq!(FallbackReason::from_label(reason.label()), Some(reason));
        }
        assert_eq!(FallbackReason::from_label("nonsense"), None);
    }
}
