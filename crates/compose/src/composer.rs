//! Algorithm 2: layer-growing composition with dual annealing, and
//! parallel whole-circuit composition.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use geyser_blocking::BlockedCircuit;
use geyser_circuit::Circuit;
use geyser_num::{hilbert_schmidt_distance, CMatrix};
use geyser_optimize::{adam, dual_annealing, AdamConfig, Bounds, DualAnnealingConfig};
use geyser_sim::circuit_unitary;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Ansatz, ComposeError, Entangler};

/// Configuration for block composition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompositionConfig {
    /// HSD acceptance threshold ε (Algorithm 2). The paper quotes
    /// 1e-5 for strict equivalence; 1e-3 is ample for the TVD
    /// experiments (ideal-output TVD stays ≪ 1e-2, Sec. 6).
    pub epsilon: f64,
    /// Maximum ansatz layers to try before giving up.
    pub max_layers: usize,
    /// Dual-annealing outer iterations per attempt.
    pub anneal_iters: usize,
    /// Independent annealing restarts per layer count.
    pub restarts: usize,
    /// Base RNG seed (each block/restart derives its own).
    pub seed: u64,
    /// Worker threads for whole-circuit composition (0 = all cores).
    pub threads: usize,
}

impl Default for CompositionConfig {
    fn default() -> Self {
        CompositionConfig {
            epsilon: 1e-3,
            max_layers: 3,
            anneal_iters: 220,
            restarts: 3,
            seed: 0,
            threads: 0,
        }
    }
}

impl CompositionConfig {
    /// A reduced-budget configuration for tests and smoke runs.
    pub fn fast() -> Self {
        CompositionConfig {
            epsilon: 1e-3,
            max_layers: 2,
            anneal_iters: 60,
            restarts: 1,
            seed: 0,
            threads: 1,
        }
    }

    /// Returns a copy with the given seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Outcome of composing one block.
#[derive(Debug, Clone)]
pub struct CompositionResult {
    /// The block circuit to execute (composed, or the original when
    /// composition did not win).
    pub circuit: Circuit,
    /// HSD between the returned circuit and the original block.
    pub hsd: f64,
    /// Whether the composed candidate replaced the original.
    pub composed: bool,
    /// Ansatz layers of the accepted candidate (0 if not composed).
    pub layers: usize,
}

/// Aggregate statistics of whole-circuit composition.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CompositionStats {
    /// Total blocks examined.
    pub blocks_total: usize,
    /// Triangle blocks eligible for composition.
    pub blocks_eligible: usize,
    /// Blocks where the composed candidate won.
    pub blocks_composed: usize,
    /// Pulses across all blocks before composition.
    pub pulses_before: u64,
    /// Pulses across all blocks after composition.
    pub pulses_after: u64,
    /// Largest HSD among accepted candidates (composition error bound).
    pub max_accepted_hsd: f64,
}

/// A fully composed circuit with its statistics.
#[derive(Debug, Clone)]
pub struct ComposedCircuit {
    /// The final flat circuit over the source qubit space.
    pub circuit: Circuit,
    /// Composition statistics.
    pub stats: CompositionStats,
}

/// Returns `true` if the unitary is the identity up to global phase.
fn is_identity_up_to_phase(u: &CMatrix, tol: f64) -> bool {
    let phase = u[(0, 0)];
    if (phase.norm() - 1.0).abs() > tol {
        return false;
    }
    u.approx_eq(&CMatrix::identity(u.rows()).scale(phase), tol)
}

/// Composes a single 3-qubit block circuit per Algorithm 2.
///
/// Grows the ansatz one layer at a time, minimizing the HSD with dual
/// annealing; accepts the first candidate that meets `epsilon` *and*
/// uses fewer pulses than the original; otherwise returns the
/// original block unchanged.
///
/// Deterministic for a fixed `(block, config)`.
///
/// # Panics
///
/// Panics if the block is not a 3-qubit circuit.
pub fn compose_block(block: &Circuit, config: &CompositionConfig) -> CompositionResult {
    try_compose_block(block, config).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`compose_block`]: returns
/// [`ComposeError::NotThreeQubit`] instead of panicking when the block
/// is not a 3-qubit circuit.
///
/// # Example
///
/// ```
/// use geyser_circuit::Circuit;
/// use geyser_compose::{try_compose_block, ComposeError, CompositionConfig};
/// let block = Circuit::new(2);
/// let err = try_compose_block(&block, &CompositionConfig::fast());
/// assert!(matches!(err, Err(ComposeError::NotThreeQubit { qubits: 2 })));
/// ```
pub fn try_compose_block(
    block: &Circuit,
    config: &CompositionConfig,
) -> Result<CompositionResult, ComposeError> {
    if block.num_qubits() != 3 {
        return Err(ComposeError::NotThreeQubit {
            qubits: block.num_qubits(),
        });
    }
    Ok(compose_block_inner(block, config))
}

fn compose_block_inner(block: &Circuit, config: &CompositionConfig) -> CompositionResult {
    let original_pulses = block.total_pulses();
    let keep_original = || CompositionResult {
        circuit: block.clone(),
        hsd: 0.0,
        composed: false,
        layers: 0,
    };

    if block.is_empty() {
        return keep_original();
    }
    let target = circuit_unitary(block);

    // Degenerate win: the block is the identity — drop it entirely.
    if is_identity_up_to_phase(&target, config.epsilon.min(1e-9)) && original_pulses > 0 {
        return CompositionResult {
            circuit: Circuit::new(3),
            hsd: hilbert_schmidt_distance(&target, &CMatrix::identity(8)),
            composed: true,
            layers: 0,
        };
    }

    // Exact fast path: blocks whose unitary touches at most two of the
    // three qubits synthesize deterministically — single U3 via ZYZ or
    // a ≤6-CZ KAK circuit — with no annealing at all.
    if let Some(exact) = exact_small_support_candidate(&target) {
        if exact.total_pulses() < original_pulses {
            let hsd = hilbert_schmidt_distance(&circuit_unitary(&exact), &target);
            if hsd <= config.epsilon {
                return CompositionResult {
                    circuit: exact,
                    hsd,
                    composed: true,
                    layers: 0,
                };
            }
        }
    }

    for layers in 1..=config.max_layers {
        let ansatz = Ansatz::new(layers);
        // Algorithm 2's loop guard: stop once even the cheapest
        // candidate of this depth cannot beat the original.
        if ansatz.min_pulses() >= original_pulses {
            break;
        }
        if let Some((hsd, params)) = search_layer(&ansatz, &target, config, layers) {
            let candidate = ansatz.to_circuit(&params);
            if candidate.total_pulses() < original_pulses {
                return CompositionResult {
                    circuit: candidate,
                    hsd,
                    composed: true,
                    layers,
                };
            }
            // Meeting ε at this depth but not cheaper: deeper ansätze
            // only cost more pulses, so the original is final.
            break;
        }
    }
    keep_original()
}

/// Searches one ansatz depth for parameters meeting `config.epsilon`.
///
/// Hybrid strategy:
/// 1. **Global**: dual annealing over the full vector, categorical
///    included (the paper's optimizer).
/// 2. **Refine**: Adam descent on the continuous angles from the best
///    annealing iterate (its categorical held fixed).
/// 3. **Multi-start**: Adam from seeded random starts, sweeping the
///    categorical combinations — annealing's decode first, then
///    all-CCZ, then the rest.
fn search_layer(
    ansatz: &Ansatz,
    target: &CMatrix,
    config: &CompositionConfig,
    layers: usize,
) -> Option<(f64, Vec<f64>)> {
    let bounds = Bounds::new(&ansatz.bounds());
    let objective = |params: &[f64]| hilbert_schmidt_distance(&ansatz.unitary(params), target);
    let base_seed = config
        .seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(layers as u64 * 131);

    // Phase 1: global annealing.
    let da_cfg = DualAnnealingConfig::default()
        .with_seed(base_seed)
        .with_max_iters(config.anneal_iters)
        .with_target(config.epsilon * 0.5);
    let global = dual_annealing(&objective, &bounds, &da_cfg);
    if global.fx <= config.epsilon {
        return Some((global.fx, global.x));
    }

    // Phase 2: gradient refinement of the annealing iterate.
    let adam_cfg = AdamConfig {
        max_iters: 350,
        ..AdamConfig::default()
    }
    .with_target(config.epsilon * 0.5);
    let refined = adam(&objective, &bounds, &global.x, &adam_cfg);
    let mut best = if refined.fx < global.fx {
        (refined.fx, refined.x)
    } else {
        (global.fx, global.x)
    };
    if best.0 <= config.epsilon {
        return Some(best);
    }

    // Phase 3: multi-start descent over categorical combinations.
    // Blocks stuck far from the target after the global+refine phases
    // almost never converge from fresh random starts either — spend
    // the expensive sweep only when the search is within striking
    // distance.
    let promising = best.0 <= (config.epsilon * 100.0).max(0.05);
    let mut rng = StdRng::seed_from_u64(base_seed ^ 0xabcd_ef01);
    let mut combos: Vec<Vec<f64>> = Vec::new();
    // Annealing's decoded categorical first.
    combos.push(
        categorical_slots(ansatz)
            .iter()
            .map(|&slot| best.1[slot])
            .collect(),
    );
    // All-CCZ (the most expressive entangler).
    combos.push(vec![0.0; layers]);
    // Remaining combinations (exhaustive for ≤ 2 layers, sampled above).
    if layers <= 2 {
        let n_combos = 4usize.pow(layers as u32);
        for code in 0..n_combos {
            let combo: Vec<f64> = (0..layers)
                .map(|l| ((code >> (2 * l)) & 3) as f64 + 0.5)
                .collect();
            combos.push(combo);
        }
    } else {
        for _ in 0..8 {
            combos.push((0..layers).map(|_| rng.gen_range(0.0..4.0)).collect());
        }
    }
    combos.dedup_by(|a, b| {
        a.iter()
            .zip(b.iter())
            .all(|(x, y)| Entangler::from_continuous(*x) == Entangler::from_continuous(*y))
    });

    if !promising {
        combos.truncate(2); // annealing decode + all-CCZ only
    }
    let starts = config.restarts.max(1);
    for combo in combos {
        for _ in 0..starts {
            let mut x0: Vec<f64> = (0..ansatz.num_params())
                .map(|_| rng.gen_range(0.0..std::f64::consts::TAU))
                .collect();
            for (slot, &cat) in categorical_slots(ansatz).iter().zip(&combo) {
                x0[*slot] = cat;
            }
            // Freeze the categorical during descent by pinning its
            // bounds — Adam's finite difference would otherwise step
            // across the decode boundary.
            let mut pinned = ansatz.bounds();
            for (slot, &cat) in categorical_slots(ansatz).iter().zip(&combo) {
                pinned[*slot] = (cat, cat);
            }
            let pinned_bounds = Bounds::new(&pinned);
            let res = adam(&objective, &pinned_bounds, &x0, &adam_cfg);
            if res.fx < best.0 {
                best = (res.fx, res.x);
            }
            if best.0 <= config.epsilon {
                return Some(best);
            }
        }
    }
    if best.0 <= config.epsilon {
        Some(best)
    } else {
        None
    }
}

/// Indices of the categorical entangler parameters in the vector.
fn categorical_slots(ansatz: &Ansatz) -> Vec<usize> {
    (0..ansatz.layers()).map(|l| 9 + 10 * l).collect()
}

/// Returns `true` if the 8×8 unitary acts as the identity on local
/// qubit `q` — i.e. it commutes with both `X_q` and `Z_q` (commuting
/// with all of su(2) on a qubit forces a tensor-product identity
/// there).
fn qubit_untouched(target: &CMatrix, q: usize) -> bool {
    for pauli in [geyser_circuit::Gate::X, geyser_circuit::Gate::Z] {
        let full = geyser_sim::embed_gate(&pauli.matrix(), &[q], 3);
        let lhs = target.matmul(&full);
        let rhs = full.matmul(target);
        if !lhs.approx_eq(&rhs, 1e-9) {
            return false;
        }
    }
    true
}

/// Extracts the 4×4 unitary a 3-qubit unitary applies to two local
/// qubits, given the third is untouched: entries are read with the
/// idle qubit pinned to |0⟩.
fn reduce_to_pair(target: &CMatrix, active: [usize; 2]) -> CMatrix {
    let bit = |q: usize| 2 - q; // big-endian local bit position
    let full_index = |local: usize| -> usize {
        let mut idx = 0usize;
        for (j, &q) in active.iter().enumerate() {
            if (local >> (1 - j)) & 1 == 1 {
                idx |= 1 << bit(q);
            }
        }
        idx
    };
    CMatrix::from_fn(4, 4, |r, c| target[(full_index(r), full_index(c))])
}

/// Deterministic exact synthesis for blocks with ≤2-qubit support:
/// returns a minimal-pulse local circuit, or `None` when all three
/// qubits are genuinely engaged.
fn exact_small_support_candidate(target: &CMatrix) -> Option<Circuit> {
    let untouched: Vec<usize> = (0..3).filter(|&q| qubit_untouched(target, q)).collect();
    match untouched.len() {
        3 => Some(Circuit::new(3)), // identity (handled earlier, but safe)
        2 => {
            // Single-qubit support: one U3.
            let active = (0..3).find(|q| !untouched.contains(q))?;
            let pair_partner = untouched[0];
            let reduced = reduce_to_pair(target, [active, pair_partner]);
            // The partner is idle: the 4×4 is U ⊗ I; take the 2×2.
            let u2 = CMatrix::from_fn(2, 2, |r, c| reduced[(2 * r, 2 * c)]);
            let d = geyser_num::zyz_angles(&u2)?;
            let mut out = Circuit::new(3);
            out.u3(d.theta, d.phi, d.lambda, active);
            Some(out)
        }
        1 => {
            let idle = untouched[0];
            let active: Vec<usize> = (0..3).filter(|&q| q != idle).collect();
            let reduced = reduce_to_pair(target, [active[0], active[1]]);
            let local = geyser_synth::synthesize_two_qubit(&reduced)?;
            // Remap the 2-qubit circuit onto the block's active qubits.
            Some(local.remapped(3, |q| active[q]))
        }
        // All three qubits engaged: the unitary may still factor as a
        // tensor product of one qubit against an entangled pair.
        _ => bipartite_factor_candidate(target),
    }
}

/// Catches `U = U₁ ⊗ U₂` across the three lone-qubit bipartitions of
/// an 8×8 unitary where the lone factor is *not* the identity (the
/// commutation test misses those): emits one U3 plus an exact KAK
/// circuit for the pair.
fn bipartite_factor_candidate(target: &CMatrix) -> Option<Circuit> {
    // (lone qubit, permuted pair order) after swapping `lone` to the
    // most significant position.
    const CASES: [(usize, [usize; 2]); 3] = [(0, [1, 2]), (1, [0, 2]), (2, [1, 0])];
    for (lone, pair) in CASES {
        let permuted = if lone == 0 {
            target.clone()
        } else {
            let swap = geyser_sim::embed_gate(&geyser_circuit::Gate::Swap.matrix(), &[0, lone], 3);
            swap.matmul(target).matmul(&swap)
        };
        let Some((u1, u4)) = geyser_synth::split_tensor_product_dims(&permuted, 2, 1e-8) else {
            continue;
        };
        let mut out = Circuit::new(3);
        // Pair part first; ordering is irrelevant (disjoint qubits).
        let local = geyser_synth::synthesize_two_qubit(&u4)?;
        out.extend_from(&local.remapped(3, |q| pair[q]));
        if !is_identity_up_to_phase(&u1, 1e-9) {
            let d = geyser_num::zyz_angles(&u1)?;
            out.u3(d.theta, d.phi, d.lambda, lone);
        }
        return Some(out);
    }
    None
}

/// Composes every eligible triangle block of a blocked circuit in
/// parallel (the paper notes all blocks compose independently and
/// uses multiprocessing; here a crossbeam scoped-thread pool).
///
/// The returned circuit re-emits rounds/blocks in order, substituting
/// composed block bodies remapped onto their lattice nodes.
///
/// Deterministic for a fixed `(blocked, config)` regardless of thread
/// count (per-block seeds).
pub fn compose_blocked_circuit(
    blocked: &BlockedCircuit,
    config: &CompositionConfig,
) -> ComposedCircuit {
    try_compose_blocked_circuit(blocked, config).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`compose_blocked_circuit`].
///
/// Cannot currently fail — triangle blocks are 3-qubit by construction
/// and non-triangle blocks pass through untouched — but carries the
/// typed-error signature so pipeline drivers compose uniformly over
/// fallible stages.
pub fn try_compose_blocked_circuit(
    blocked: &BlockedCircuit,
    config: &CompositionConfig,
) -> Result<ComposedCircuit, ComposeError> {
    let source = blocked.source();
    let blocks: Vec<_> = blocked.blocks().collect();
    let num_blocks = blocks.len();

    // Work queue over block indices; results slot per block.
    let results: Mutex<Vec<Option<CompositionResult>>> = Mutex::new(vec![None; num_blocks]);
    let next = AtomicUsize::new(0);
    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        config.threads
    };

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.min(num_blocks.max(1)) {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= num_blocks {
                    break;
                }
                let block = blocks[i];
                let result = if block.is_triangle() {
                    let local = block.subcircuit(source);
                    let cfg = config.with_seed(config.seed.wrapping_add(i as u64));
                    Some(compose_block(&local, &cfg))
                } else {
                    None
                };
                // invariant: lock holders only assign a Vec slot and
                // cannot panic, so the mutex is never poisoned.
                results.lock().expect("no panics hold the lock")[i] = result;
            });
        }
    })
    // invariant: workers run panic-free numeric code; a panic here is a
    // compiler bug, not a user-input failure.
    .expect("composition worker panicked");

    // invariant: the scope joined every worker above, so the mutex has
    // no other holders.
    let results = results.into_inner().expect("scope joined all workers");

    // Reassemble with substitutions.
    let mut out = Circuit::new(source.num_qubits());
    let mut stats = CompositionStats {
        blocks_total: num_blocks,
        ..CompositionStats::default()
    };
    for (block, result) in blocks.iter().zip(&results) {
        let before: u64 = block.pulses(source);
        stats.pulses_before += before;
        match result {
            Some(res) => {
                stats.blocks_eligible += 1;
                if res.composed {
                    stats.blocks_composed += 1;
                    stats.max_accepted_hsd = stats.max_accepted_hsd.max(res.hsd);
                }
                stats.pulses_after += res.circuit.total_pulses();
                let remapped = res
                    .circuit
                    .remapped(source.num_qubits(), |q| block.qubits()[q]);
                out.extend_from(&remapped);
            }
            None => {
                stats.pulses_after += before;
                for &i in block.op_indices() {
                    out.push(source.ops()[i].clone());
                }
            }
        }
    }
    Ok(ComposedCircuit {
        circuit: out,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use geyser_blocking::{block_circuit, BlockingConfig};
    use geyser_topology::Lattice;

    /// The paper's Fig. 11 example: a CCZ decomposed into 6 CZ and
    /// 8 single-qubit gates (26 pulses).
    fn decomposed_ccz() -> Circuit {
        let mut c = Circuit::new(3);
        let cx = |c: &mut Circuit, a: usize, b: usize| {
            c.h(b);
            c.cz(a, b);
            c.h(b);
        };
        cx(&mut c, 1, 2);
        c.tdg(2);
        cx(&mut c, 0, 2);
        c.t(2);
        cx(&mut c, 1, 2);
        c.tdg(2);
        cx(&mut c, 0, 2);
        c.t(1);
        c.t(2);
        cx(&mut c, 0, 1);
        c.t(0);
        c.tdg(1);
        cx(&mut c, 0, 1);
        c
    }

    #[test]
    fn identity_block_composes_to_nothing() {
        let mut block = Circuit::new(3);
        block.h(0).h(0).cz(1, 2).cz(1, 2);
        let res = compose_block(&block, &CompositionConfig::fast());
        assert!(res.composed);
        assert!(res.circuit.is_empty());
        assert!(res.hsd < 1e-9);
    }

    #[test]
    fn tiny_block_is_kept() {
        // 2 pulses: cheaper than any ansatz — must pass through.
        let mut block = Circuit::new(3);
        block.h(0).t(1);
        let res = compose_block(&block, &CompositionConfig::fast());
        assert!(!res.composed);
        assert_eq!(res.circuit.ops(), block.ops());
    }

    #[test]
    fn composition_never_increases_pulses() {
        let mut block = Circuit::new(3);
        block.h(0).cz(0, 1).t(1).cz(1, 2).h(2).cz(0, 1);
        let res = compose_block(&block, &CompositionConfig::fast());
        assert!(res.circuit.total_pulses() <= block.total_pulses());
    }

    #[test]
    fn decomposed_ccz_recomposes_to_native_form() {
        // The marquee example: 26 pulses of U3/CZ collapse back to a
        // CCZ-bearing form far below the original cost.
        let block = decomposed_ccz();
        // 37 raw pulses here; OptiMap's 1q fusion would bring it to
        // the paper's 26 (8 fused U3 + 6 CZ). Either way composition
        // must find the ~11-pulse CCZ form.
        assert_eq!(block.total_pulses(), 37);
        let cfg = CompositionConfig {
            epsilon: 1e-3,
            max_layers: 1,
            anneal_iters: 400,
            restarts: 4,
            seed: 11,
            threads: 1,
        };
        let res = compose_block(&block, &cfg);
        assert!(res.composed, "composition failed, hsd = {}", res.hsd);
        assert!(
            res.circuit.total_pulses() <= 11,
            "pulses = {}",
            res.circuit.total_pulses()
        );
        // Verify true equivalence of the accepted candidate.
        let d = hilbert_schmidt_distance(&circuit_unitary(&block), &circuit_unitary(&res.circuit));
        assert!(d <= 1.5e-3, "accepted candidate diverges: {d}");
    }

    #[test]
    fn composed_circuit_matches_source_distribution() {
        let lat = Lattice::triangular(2, 2);
        let mut c = Circuit::new(4);
        c.h(0).cz(0, 1).h(1).cz(1, 2).h(2).cz(0, 2).h(0).cz(1, 2);
        let blocked = block_circuit(&c, &lat, &BlockingConfig::default());
        let composed = compose_blocked_circuit(&blocked, &CompositionConfig::fast().with_seed(3));
        assert_eq!(composed.stats.blocks_total, blocked.num_blocks());
        // Equivalence within the accepted HSD budget: compare ideal
        // output distributions.
        let p1 = geyser_sim::ideal_distribution(&c);
        let p2 = geyser_sim::ideal_distribution(&composed.circuit);
        let tvd = geyser_sim::total_variation_distance(&p1, &p2);
        assert!(tvd < 1e-2, "TVD = {tvd}");
    }

    #[test]
    fn stats_account_for_all_blocks() {
        let lat = Lattice::triangular(2, 3);
        let mut c = Circuit::new(6);
        c.h(0).cz(0, 1).cz(3, 4).h(4).cz(4, 5).t(5);
        let blocked = block_circuit(&c, &lat, &BlockingConfig::default());
        let composed = compose_blocked_circuit(&blocked, &CompositionConfig::fast());
        assert_eq!(composed.stats.blocks_total, blocked.num_blocks());
        assert!(composed.stats.pulses_after <= composed.stats.pulses_before);
        assert_eq!(composed.stats.pulses_before, c.total_pulses());
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let lat = Lattice::triangular(2, 3);
        let mut c = Circuit::new(6);
        c.h(0).cz(0, 1).h(1).cz(1, 2).cz(3, 4).h(4).cz(4, 5);
        let blocked = block_circuit(&c, &lat, &BlockingConfig::default());
        let mut cfg1 = CompositionConfig::fast();
        cfg1.threads = 1;
        let mut cfg4 = CompositionConfig::fast();
        cfg4.threads = 4;
        let a = compose_blocked_circuit(&blocked, &cfg1);
        let b = compose_blocked_circuit(&blocked, &cfg4);
        assert_eq!(a.circuit.ops(), b.circuit.ops());
    }

    #[test]
    #[should_panic(expected = "3-qubit blocks")]
    fn wrong_block_size_panics() {
        let _ = compose_block(&Circuit::new(2), &CompositionConfig::fast());
    }

    #[test]
    fn single_qubit_support_block_fuses_to_one_u3() {
        // Many gates on one qubit (others idle): exact path collapses
        // them to a single pulse without touching the annealer.
        let mut block = Circuit::new(3);
        block.h(1).t(1).ry(0.4, 1).h(1).rz(1.1, 1);
        let res = compose_block(&block, &CompositionConfig::fast());
        assert!(res.composed);
        assert_eq!(res.circuit.len(), 1);
        assert_eq!(res.circuit.total_pulses(), 1);
        assert!(res.hsd < 1e-8);
    }

    #[test]
    fn two_qubit_support_block_uses_exact_kak() {
        // A diagonal (ZZ-class) pattern on qubits (0, 2): exact KAK
        // needs only two CZ, far below the original's four.
        let mut block = Circuit::new(3);
        block
            .cz(0, 2)
            .rz(0.3, 0)
            .rz(0.4, 2)
            .cz(0, 2)
            .t(0)
            .cz(0, 2)
            .rz(0.2, 2)
            .cz(0, 2);
        let original_pulses = block.total_pulses();
        let res = compose_block(&block, &CompositionConfig::fast());
        assert!(res.composed, "exact path should fire");
        assert!(res.circuit.total_pulses() < original_pulses);
        assert!(res.hsd < 1e-7, "hsd = {}", res.hsd);
        // Idle qubit 1 must stay idle.
        assert!(res.circuit.iter().all(|op| !op.acts_on(1)));
        // True equivalence.
        let d = hilbert_schmidt_distance(&circuit_unitary(&block), &circuit_unitary(&res.circuit));
        assert!(d < 1e-7);
    }

    #[test]
    fn bipartite_factor_blocks_synthesize_exactly() {
        // Qubit 1 does its own single-qubit dance while (0, 2) build a
        // diagonal entangler: U = U₁q ⊗ U₂q across the bipartition.
        let mut block = Circuit::new(3);
        block
            .h(1)
            .cz(0, 2)
            .t(1)
            .rz(0.3, 0)
            .cz(0, 2)
            .ry(0.4, 1)
            .cz(0, 2)
            .rz(0.2, 2)
            .cz(0, 2)
            .h(1);
        let res = compose_block(&block, &CompositionConfig::fast());
        assert!(res.composed, "bipartite exact path should fire");
        assert!(res.hsd < 1e-7, "hsd = {}", res.hsd);
        assert!(res.circuit.total_pulses() < block.total_pulses());
        let d = hilbert_schmidt_distance(&circuit_unitary(&block), &circuit_unitary(&res.circuit));
        assert!(d < 1e-7, "equivalence broken: {d}");
    }

    #[test]
    fn exact_path_respects_pulse_acceptance() {
        // Cheap 2q block already minimal: exact candidate cannot be
        // cheaper, so the original is kept.
        let mut block = Circuit::new(3);
        block.cz(0, 1);
        let res = compose_block(&block, &CompositionConfig::fast());
        assert!(!res.composed);
        assert_eq!(res.circuit.ops(), block.ops());
    }
}
