//! Algorithm 2: layer-growing composition with dual annealing, and
//! parallel whole-circuit composition.
//!
//! # Failure model
//!
//! Block composition is a stochastic search that can time out, fail to
//! converge, or (under fault injection / numerical trouble) produce an
//! unhealthy candidate. Every per-block attempt therefore ends in a
//! [`BlockOutcome`]: `Composed` on success, `FellBack` (with a
//! [`FallbackReason`]) when the original blocked pulses are kept, or
//! `Failed` when the worker panicked — the panic is isolated per block
//! with `catch_unwind`, so one poisoned block never takes down the
//! whole compilation. A circuit always composes; the outcomes record
//! how much of it degraded.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use geyser_blocking::BlockedCircuit;
use geyser_circuit::Circuit;
use geyser_num::{hilbert_schmidt_distance, CMatrix};
use geyser_optimize::{
    adam, dual_annealing, AdamConfig, Bounds, CancelToken, Deadline, DualAnnealingConfig,
};
use geyser_reuse::{BlockFingerprint, ReuseEntry, ReuseOutcome, ReuseSession, ReuseStats};
use geyser_sim::circuit_unitary;
use geyser_telemetry::Telemetry;
use geyser_verify::verify_block_candidate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Ansatz, ComposeError, Entangler};

/// Configuration for block composition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompositionConfig {
    /// HSD acceptance threshold ε (Algorithm 2). The paper quotes
    /// 1e-5 for strict equivalence; 1e-3 is ample for the TVD
    /// experiments (ideal-output TVD stays ≪ 1e-2, Sec. 6).
    pub epsilon: f64,
    /// Maximum ansatz layers to try before giving up.
    pub max_layers: usize,
    /// Dual-annealing outer iterations per attempt.
    pub anneal_iters: usize,
    /// Independent annealing restarts per layer count.
    pub restarts: usize,
    /// Reseeded retries of the whole layer search after
    /// non-convergence, each with a halved annealing budget (backoff).
    pub retry_attempts: usize,
    /// Base RNG seed (each block/restart derives its own).
    pub seed: u64,
    /// Worker threads for whole-circuit composition (0 = all cores).
    pub threads: usize,
    /// Started wall-clock budget shared by all blocks: once expired,
    /// remaining blocks fall back to their original pulses with
    /// [`FallbackReason::BudgetExhausted`].
    pub deadline: Deadline,
}

impl Default for CompositionConfig {
    fn default() -> Self {
        CompositionConfig {
            epsilon: 1e-3,
            max_layers: 3,
            anneal_iters: 220,
            restarts: 3,
            retry_attempts: 1,
            seed: 0,
            threads: 0,
            deadline: Deadline::none(),
        }
    }
}

impl CompositionConfig {
    /// A reduced-budget configuration for tests and smoke runs.
    pub fn fast() -> Self {
        CompositionConfig {
            epsilon: 1e-3,
            max_layers: 2,
            anneal_iters: 60,
            restarts: 1,
            retry_attempts: 0,
            seed: 0,
            threads: 1,
            deadline: Deadline::none(),
        }
    }

    /// Returns a copy with the given seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy bounded by the given started deadline.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }
}

/// Why a block kept its original (uncomposed) pulses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// The search met ε but no candidate needed fewer pulses than the
    /// original (the normal Algorithm 2 rejection) — or the block was
    /// too small for any ansatz to beat.
    NotCheaper,
    /// No candidate met ε within the annealing budget, even after
    /// `retry_attempts` reseeded retries.
    NonConvergence,
    /// The wall-clock budget expired before or during the search.
    BudgetExhausted,
    /// A candidate met ε inside the optimizer but failed the final
    /// re-verification against the block unitary (corrupted or
    /// numerically unhealthy candidate).
    EpsilonRejected,
    /// The job's cancellation token fired before or during the search;
    /// the original pulses were kept so the run could terminate
    /// promptly.
    Cancelled,
}

impl FallbackReason {
    /// Stable kebab-case label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            FallbackReason::NotCheaper => "not-cheaper",
            FallbackReason::NonConvergence => "non-convergence",
            FallbackReason::BudgetExhausted => "budget-exhausted",
            FallbackReason::EpsilonRejected => "epsilon-rejected",
            FallbackReason::Cancelled => "cancelled",
        }
    }

    /// Parses a [`FallbackReason::label`] back to the reason (used by
    /// checkpoint loaders).
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "not-cheaper" => Some(FallbackReason::NotCheaper),
            "non-convergence" => Some(FallbackReason::NonConvergence),
            "budget-exhausted" => Some(FallbackReason::BudgetExhausted),
            "epsilon-rejected" => Some(FallbackReason::EpsilonRejected),
            "cancelled" => Some(FallbackReason::Cancelled),
            _ => None,
        }
    }
}

/// Per-block outcome of whole-circuit composition.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockOutcome {
    /// The composed candidate replaced the original block.
    Composed {
        /// Ansatz layers of the accepted candidate (0 = exact path).
        layers: usize,
        /// Verified HSD between the candidate and the block unitary.
        hsd: f64,
    },
    /// The original blocked pulses were kept.
    FellBack {
        /// Why composition did not win.
        reason: FallbackReason,
    },
    /// The composition worker panicked; the original pulses were kept
    /// and the panic payload recorded.
    Failed {
        /// Rendered panic payload.
        detail: String,
    },
    /// The block was not eligible for composition (non-triangle).
    Skipped,
}

/// Outcome of composing one block.
#[derive(Debug, Clone)]
pub struct CompositionResult {
    /// The block circuit to execute (composed, or the original when
    /// composition did not win).
    pub circuit: Circuit,
    /// HSD between the returned circuit and the original block.
    pub hsd: f64,
    /// Whether the composed candidate replaced the original.
    pub composed: bool,
    /// Ansatz layers of the accepted candidate (0 if not composed).
    pub layers: usize,
    /// How the attempt ended.
    pub outcome: BlockOutcome,
}

/// Test/bench-only fault hooks for whole-circuit composition.
///
/// Injected faults must degrade gracefully: a corrupted candidate is
/// caught by the final ε re-verification and falls back; a panicking
/// worker is isolated per block and records [`BlockOutcome::Failed`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ComposeFaults {
    /// Block indices whose accepted candidate is corrupted before the
    /// final ε re-verification.
    pub corrupt_blocks: Vec<usize>,
    /// Block indices whose composition worker panics.
    pub panic_blocks: Vec<usize>,
}

impl ComposeFaults {
    /// No injected faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether any fault is configured.
    pub fn is_empty(&self) -> bool {
        self.corrupt_blocks.is_empty() && self.panic_blocks.is_empty()
    }
}

/// Aggregate statistics of whole-circuit composition.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CompositionStats {
    /// Total blocks examined.
    pub blocks_total: usize,
    /// Triangle blocks eligible for composition.
    pub blocks_eligible: usize,
    /// Blocks where the composed candidate won.
    pub blocks_composed: usize,
    /// Pulses across all blocks before composition.
    pub pulses_before: u64,
    /// Pulses across all blocks after composition.
    pub pulses_after: u64,
    /// Eligible blocks that kept their original pulses (timeout,
    /// non-convergence, ε-rejection, or simply not cheaper).
    pub blocks_fell_back: usize,
    /// Eligible blocks whose worker panicked (isolated; original
    /// pulses kept).
    pub blocks_failed: usize,
    /// Fallbacks (a subset of [`CompositionStats::blocks_fell_back`])
    /// caused by a fired cancellation token.
    pub blocks_cancelled: usize,
    /// Blocks whose result was restored from a prior run (checkpoint
    /// resume) instead of being recomposed.
    pub blocks_resumed: usize,
    /// Largest HSD among accepted candidates (composition error bound).
    pub max_accepted_hsd: f64,
    /// Reuse accounting when a [`ReuseSession`] drove this composition
    /// (`None` when reuse was off).
    pub reuse: Option<ReuseStats>,
}

/// A fully composed circuit with its statistics.
#[derive(Debug, Clone)]
pub struct ComposedCircuit {
    /// The final flat circuit over the source qubit space.
    pub circuit: Circuit,
    /// Composition statistics.
    pub stats: CompositionStats,
    /// Per-block outcome, indexed like the blocked circuit's blocks.
    pub outcomes: Vec<BlockOutcome>,
}

/// Returns `true` if the unitary is the identity up to global phase.
fn is_identity_up_to_phase(u: &CMatrix, tol: f64) -> bool {
    let phase = u[(0, 0)];
    if (phase.norm() - 1.0).abs() > tol {
        return false;
    }
    u.approx_eq(&CMatrix::identity(u.rows()).scale(phase), tol)
}

/// Composes a single 3-qubit block circuit per Algorithm 2.
///
/// Grows the ansatz one layer at a time, minimizing the HSD with dual
/// annealing; accepts the first candidate that meets `epsilon` *and*
/// uses fewer pulses than the original; otherwise returns the
/// original block unchanged.
///
/// Deterministic for a fixed `(block, config)`.
///
/// # Panics
///
/// Panics if the block is not a 3-qubit circuit.
pub fn compose_block(block: &Circuit, config: &CompositionConfig) -> CompositionResult {
    try_compose_block(block, config).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`compose_block`]: returns
/// [`ComposeError::NotThreeQubit`] instead of panicking when the block
/// is not a 3-qubit circuit.
///
/// # Example
///
/// ```
/// use geyser_circuit::Circuit;
/// use geyser_compose::{try_compose_block, ComposeError, CompositionConfig};
/// let block = Circuit::new(2);
/// let err = try_compose_block(&block, &CompositionConfig::fast());
/// assert!(matches!(err, Err(ComposeError::NotThreeQubit { qubits: 2 })));
/// ```
pub fn try_compose_block(
    block: &Circuit,
    config: &CompositionConfig,
) -> Result<CompositionResult, ComposeError> {
    if block.num_qubits() != 3 {
        return Err(ComposeError::NotThreeQubit {
            qubits: block.num_qubits(),
        });
    }
    Ok(compose_block_inner(
        block,
        config,
        false,
        &CancelToken::none(),
        &Telemetry::disabled(),
    ))
}

/// How one reseeded pass over the layer ladder ended.
enum SearchVerdict {
    Accepted(CompositionResult),
    NotCheaper,
    EpsilonRejected,
    NonConvergence,
    BudgetExhausted,
    Cancelled,
}

/// Per-block reuse directive, computed in the serial planning phase so
/// the parallel waves stay deterministic across thread counts.
#[derive(Debug, Clone)]
enum ReusePlan {
    /// No applicable cached knowledge: search normally.
    Fresh,
    /// Near-miss (coarse-fingerprint) hit: warm-start the annealer
    /// from the cached parameters with a reduced iteration budget.
    WarmStart {
        /// Cached ansatz parameters (the annealer's starting point).
        params: Vec<f64>,
        /// Ansatz layer count the parameters belong to.
        layers: usize,
    },
    /// Exact-fingerprint hit: replay the cached entry (through the ε
    /// re-verification gate) instead of annealing.
    Replay {
        entry: ReuseEntry,
        /// CHAOS ONLY: accept the replay without re-verification.
        skip_verify: bool,
    },
    /// Same fingerprint as an earlier block in this run: composed in
    /// the second wave, after the leader's result is published.
    Follower,
}

/// Reuse side-channel threaded through one block's search: annealer
/// cost, the winning parameters (for publication), and what the replay
/// / warm-start machinery actually did.
#[derive(Debug, Clone, Default)]
struct ReuseTrace {
    /// Annealer objective evaluations this block spent (mirrors the
    /// `compose.anneal_evaluations` telemetry counter).
    evaluations: u64,
    /// Parameters + layer count of the accepted annealed candidate.
    winning: Option<(Vec<f64>, usize)>,
    /// The annealer was actually seeded from a near-miss entry.
    warm_applied: bool,
    /// The block was resolved by replaying a cached entry.
    exact_hit: bool,
    /// A replay was rejected by re-verification (fell through to a
    /// fresh search).
    exact_rejected: bool,
    /// A replay was accepted *without* re-verification (chaos fault).
    unverified_replay: bool,
    /// Evaluations the original composition spent, saved by replay.
    evals_saved: u64,
}

fn compose_block_inner(
    block: &Circuit,
    config: &CompositionConfig,
    corrupt: bool,
    cancel: &CancelToken,
    telemetry: &Telemetry,
) -> CompositionResult {
    compose_block_planned(
        block,
        config,
        corrupt,
        cancel,
        telemetry,
        &ReusePlan::Fresh,
        &mut ReuseTrace::default(),
    )
}

fn compose_block_planned(
    block: &Circuit,
    config: &CompositionConfig,
    corrupt: bool,
    cancel: &CancelToken,
    telemetry: &Telemetry,
    plan: &ReusePlan,
    trace: &mut ReuseTrace,
) -> CompositionResult {
    let original_pulses = block.total_pulses();
    let fall_back = |reason: FallbackReason| CompositionResult {
        circuit: block.clone(),
        hsd: 0.0,
        composed: false,
        layers: 0,
        outcome: BlockOutcome::FellBack { reason },
    };

    if block.is_empty() {
        return fall_back(FallbackReason::NotCheaper);
    }
    if cancel.is_cancelled() {
        return fall_back(FallbackReason::Cancelled);
    }
    if config.deadline.expired() {
        return fall_back(FallbackReason::BudgetExhausted);
    }
    let target = circuit_unitary(block);
    if !target.is_finite() {
        // Numerically unhealthy block unitary: nothing downstream of it
        // can be trusted, so keep the original pulses verbatim.
        return fall_back(FallbackReason::EpsilonRejected);
    }

    // Degenerate win: the block is the identity — drop it entirely.
    if is_identity_up_to_phase(&target, config.epsilon.min(1e-9)) && original_pulses > 0 {
        let hsd = hilbert_schmidt_distance(&target, &CMatrix::identity(8));
        return CompositionResult {
            circuit: Circuit::new(3),
            hsd,
            composed: true,
            layers: 0,
            outcome: BlockOutcome::Composed { layers: 0, hsd },
        };
    }

    // Exact fast path: blocks whose unitary touches at most two of the
    // three qubits synthesize deterministically — single U3 via ZYZ or
    // a ≤6-CZ KAK circuit — with no annealing at all.
    if let Some(mut exact) = exact_small_support_candidate(&target) {
        if exact.total_pulses() < original_pulses {
            if corrupt {
                exact.t(0);
            }
            // Shared oracle check (geyser-verify): the same acceptance
            // rule `--verify` trusts, so the two can never disagree.
            let check = verify_block_candidate(&exact, &target, config.epsilon);
            if check.accepted {
                let hsd = check.hsd;
                return CompositionResult {
                    circuit: exact,
                    hsd,
                    composed: true,
                    layers: 0,
                    outcome: BlockOutcome::Composed { layers: 0, hsd },
                };
            }
            // Exact synthesis missed ε (corrupted or numerically off):
            // fall through to the annealed search rather than trusting it.
        }
    }

    // Exact reuse hit: replay the cached entry instead of annealing.
    // The replayed candidate goes through the *same* shared-oracle ε
    // check as a fresh one — a poisoned or stale entry is rejected
    // here and the block falls through to a normal search.
    if let ReusePlan::Replay { entry, skip_verify } = plan {
        match entry.outcome {
            ReuseOutcome::NotCheaper => {
                trace.exact_hit = true;
                trace.evals_saved += entry.evaluations;
                telemetry.counter_add("reuse.exact_hits", 1);
                return fall_back(FallbackReason::NotCheaper);
            }
            ReuseOutcome::EpsilonRejected => {
                trace.exact_hit = true;
                trace.evals_saved += entry.evaluations;
                telemetry.counter_add("reuse.exact_hits", 1);
                return fall_back(FallbackReason::EpsilonRejected);
            }
            ReuseOutcome::NonConvergent => {
                trace.exact_hit = true;
                trace.evals_saved += entry.evaluations;
                telemetry.counter_add("reuse.exact_hits", 1);
                return fall_back(FallbackReason::NonConvergence);
            }
            ReuseOutcome::Composed => {
                let ansatz = Ansatz::new(entry.layers);
                if entry.layers >= 1 && entry.params.len() == ansatz.num_params() {
                    let mut candidate = ansatz.to_circuit(&entry.params);
                    if corrupt {
                        candidate.t(0);
                    }
                    if candidate.total_pulses() < original_pulses {
                        if *skip_verify {
                            // CHAOS ONLY: trust the entry blindly. The
                            // geyser-verify reuse invariant trips on the
                            // nonzero unverified_replays counter.
                            trace.exact_hit = true;
                            trace.unverified_replay = true;
                            trace.evals_saved += entry.evaluations;
                            telemetry.counter_add("reuse.exact_hits", 1);
                            telemetry.counter_add("reuse.unverified_replays", 1);
                            return CompositionResult {
                                circuit: candidate,
                                hsd: entry.hsd,
                                composed: true,
                                layers: entry.layers,
                                outcome: BlockOutcome::Composed {
                                    layers: entry.layers,
                                    hsd: entry.hsd,
                                },
                            };
                        }
                        let check = verify_block_candidate(&candidate, &target, config.epsilon);
                        if check.accepted {
                            trace.exact_hit = true;
                            trace.evals_saved += entry.evaluations;
                            telemetry.counter_add("reuse.exact_hits", 1);
                            let hsd = check.hsd;
                            return CompositionResult {
                                circuit: candidate,
                                hsd,
                                composed: true,
                                layers: entry.layers,
                                outcome: BlockOutcome::Composed {
                                    layers: entry.layers,
                                    hsd,
                                },
                            };
                        }
                    }
                }
                trace.exact_rejected = true;
                telemetry.counter_add("reuse.exact_hits_rejected", 1);
                // Fall through to the fresh annealed search below.
            }
        }
    }
    let warm: Option<(&[f64], usize)> = match plan {
        ReusePlan::WarmStart { params, layers } => Some((params.as_slice(), *layers)),
        _ => None,
    };

    // Annealed layer search with reseeded retries: each retry derives a
    // fresh seed and halves the annealing budget (backoff), so a block
    // that refuses to converge costs a bounded, shrinking amount.
    let mut attempt_cfg = *config;
    for attempt in 0..=config.retry_attempts {
        if cancel.is_cancelled() {
            return fall_back(FallbackReason::Cancelled);
        }
        if config.deadline.expired() {
            return fall_back(FallbackReason::BudgetExhausted);
        }
        match search_all_layers(
            &target,
            &attempt_cfg,
            original_pulses,
            corrupt,
            cancel,
            telemetry,
            warm,
            trace,
        ) {
            SearchVerdict::Accepted(result) => return result,
            SearchVerdict::NotCheaper => return fall_back(FallbackReason::NotCheaper),
            SearchVerdict::EpsilonRejected => return fall_back(FallbackReason::EpsilonRejected),
            SearchVerdict::BudgetExhausted => return fall_back(FallbackReason::BudgetExhausted),
            SearchVerdict::Cancelled => return fall_back(FallbackReason::Cancelled),
            SearchVerdict::NonConvergence => {
                telemetry.counter_add("compose.retries", 1);
                attempt_cfg.seed = attempt_cfg
                    .seed
                    .wrapping_add(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(attempt as u64);
                attempt_cfg.anneal_iters = (attempt_cfg.anneal_iters / 2).max(16);
            }
        }
    }
    fall_back(FallbackReason::NonConvergence)
}

/// One pass over the layer ladder (Algorithm 2's outer loop) with the
/// final candidate re-verification.
#[allow(clippy::too_many_arguments)]
fn search_all_layers(
    target: &CMatrix,
    config: &CompositionConfig,
    original_pulses: u64,
    corrupt: bool,
    cancel: &CancelToken,
    telemetry: &Telemetry,
    warm: Option<(&[f64], usize)>,
    trace: &mut ReuseTrace,
) -> SearchVerdict {
    for layers in 1..=config.max_layers {
        let ansatz = Ansatz::new(layers);
        // Algorithm 2's loop guard: stop once even the cheapest
        // candidate of this depth cannot beat the original.
        if ansatz.min_pulses() >= original_pulses {
            return SearchVerdict::NotCheaper;
        }
        match search_layer(
            &ansatz, target, config, layers, cancel, telemetry, warm, trace,
        ) {
            Some((_, params)) => {
                trace.winning = Some((params.clone(), layers));
                let mut candidate = ansatz.to_circuit(&params);
                if corrupt {
                    candidate.t(0);
                }
                // Re-verify the emitted *circuit* against the block
                // unitary with the shared geyser-verify oracle check:
                // the optimizer's objective was the ansatz matrix, and
                // the candidate may have been corrupted in between
                // (fault injection) or decode unhealthily.
                let check = verify_block_candidate(&candidate, target, config.epsilon);
                if !check.accepted {
                    return SearchVerdict::EpsilonRejected;
                }
                let verified = check.hsd;
                if candidate.total_pulses() < original_pulses {
                    return SearchVerdict::Accepted(CompositionResult {
                        circuit: candidate,
                        hsd: verified,
                        composed: true,
                        layers,
                        outcome: BlockOutcome::Composed {
                            layers,
                            hsd: verified,
                        },
                    });
                }
                // Meeting ε at this depth but not cheaper: deeper
                // ansätze only cost more pulses, so the original is
                // final.
                return SearchVerdict::NotCheaper;
            }
            None if cancel.is_cancelled() => return SearchVerdict::Cancelled,
            None if config.deadline.expired() => return SearchVerdict::BudgetExhausted,
            None => {}
        }
    }
    SearchVerdict::NonConvergence
}

/// Searches one ansatz depth for parameters meeting `config.epsilon`.
///
/// Hybrid strategy:
/// 1. **Global**: dual annealing over the full vector, categorical
///    included (the paper's optimizer).
/// 2. **Refine**: Adam descent on the continuous angles from the best
///    annealing iterate (its categorical held fixed).
/// 3. **Multi-start**: Adam from seeded random starts, sweeping the
///    categorical combinations — annealing's decode first, then
///    all-CCZ, then the rest.
#[allow(clippy::too_many_arguments)]
fn search_layer(
    ansatz: &Ansatz,
    target: &CMatrix,
    config: &CompositionConfig,
    layers: usize,
    cancel: &CancelToken,
    telemetry: &Telemetry,
    warm: Option<(&[f64], usize)>,
    trace: &mut ReuseTrace,
) -> Option<(f64, Vec<f64>)> {
    let bounds = Bounds::new(&ansatz.bounds());
    let objective = |params: &[f64]| hilbert_schmidt_distance(&ansatz.unitary(params), target);
    let base_seed = config
        .seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(layers as u64 * 131);

    // Phase 1: global annealing (bounded by the shared deadline). A
    // near-miss reuse hit at this depth seeds the chain from the
    // cached parameters with a reduced iteration budget: if the cached
    // optimum is close, the chain converges almost immediately; if
    // not, the refine/multi-start phases below run as usual.
    let mut da_cfg = DualAnnealingConfig::default()
        .with_seed(base_seed)
        .with_max_iters(config.anneal_iters)
        .with_target(config.epsilon * 0.5)
        .with_deadline(config.deadline)
        .with_cancel(cancel.clone());
    if let Some((hint, warm_layers)) = warm {
        if warm_layers == layers && hint.len() == ansatz.num_params() {
            if !trace.warm_applied {
                telemetry.counter_add("reuse.warm_starts", 1);
            }
            trace.warm_applied = true;
            da_cfg = da_cfg
                .with_x0(hint.to_vec())
                .with_max_iters((config.anneal_iters / 4).max(16));
        }
    }
    let global = dual_annealing(&objective, &bounds, &da_cfg);
    trace.evaluations += global.evaluations as u64;
    telemetry.counter_add("compose.anneal_evaluations", global.evaluations as u64);
    if global.evaluations > 0 {
        let permille = (global.accepted as u64).saturating_mul(1000) / global.evaluations as u64;
        telemetry.histogram_record("compose.acceptance_permille", permille);
    }
    if cancel.is_cancelled() {
        return None;
    }
    if global.fx <= config.epsilon {
        return Some((global.fx, global.x));
    }
    if config.deadline.expired() {
        return None;
    }

    // Phase 2: gradient refinement of the annealing iterate.
    let adam_cfg = AdamConfig {
        max_iters: 350,
        ..AdamConfig::default()
    }
    .with_target(config.epsilon * 0.5)
    .with_deadline(config.deadline)
    .with_cancel(cancel.clone());
    let refined = adam(&objective, &bounds, &global.x, &adam_cfg);
    let mut best = if refined.fx < global.fx {
        (refined.fx, refined.x)
    } else {
        (global.fx, global.x)
    };
    if best.0 <= config.epsilon {
        return Some(best);
    }

    // Phase 3: multi-start descent over categorical combinations.
    // Blocks stuck far from the target after the global+refine phases
    // almost never converge from fresh random starts either — spend
    // the expensive sweep only when the search is within striking
    // distance.
    let promising = best.0 <= (config.epsilon * 100.0).max(0.05);
    let mut rng = StdRng::seed_from_u64(base_seed ^ 0xabcd_ef01);
    let mut combos: Vec<Vec<f64>> = Vec::new();
    // Annealing's decoded categorical first.
    combos.push(
        categorical_slots(ansatz)
            .iter()
            .map(|&slot| best.1[slot])
            .collect(),
    );
    // All-CCZ (the most expressive entangler).
    combos.push(vec![0.0; layers]);
    // Remaining combinations (exhaustive for ≤ 2 layers, sampled above).
    if layers <= 2 {
        let n_combos = 4usize.pow(layers as u32);
        for code in 0..n_combos {
            let combo: Vec<f64> = (0..layers)
                .map(|l| ((code >> (2 * l)) & 3) as f64 + 0.5)
                .collect();
            combos.push(combo);
        }
    } else {
        for _ in 0..8 {
            combos.push((0..layers).map(|_| rng.gen_range(0.0..4.0)).collect());
        }
    }
    combos.dedup_by(|a, b| {
        a.iter()
            .zip(b.iter())
            .all(|(x, y)| Entangler::from_continuous(*x) == Entangler::from_continuous(*y))
    });

    if !promising {
        combos.truncate(2); // annealing decode + all-CCZ only
    }
    let starts = config.restarts.max(1);
    for combo in combos {
        for _ in 0..starts {
            if config.deadline.expired() || cancel.is_cancelled() {
                return None;
            }
            let mut x0: Vec<f64> = (0..ansatz.num_params())
                .map(|_| rng.gen_range(0.0..std::f64::consts::TAU))
                .collect();
            for (slot, &cat) in categorical_slots(ansatz).iter().zip(&combo) {
                x0[*slot] = cat;
            }
            // Freeze the categorical during descent by pinning its
            // bounds — Adam's finite difference would otherwise step
            // across the decode boundary.
            let mut pinned = ansatz.bounds();
            for (slot, &cat) in categorical_slots(ansatz).iter().zip(&combo) {
                pinned[*slot] = (cat, cat);
            }
            let pinned_bounds = Bounds::new(&pinned);
            let res = adam(&objective, &pinned_bounds, &x0, &adam_cfg);
            if res.fx < best.0 {
                best = (res.fx, res.x);
            }
            if best.0 <= config.epsilon {
                return Some(best);
            }
        }
    }
    if best.0 <= config.epsilon {
        Some(best)
    } else {
        None
    }
}

/// Indices of the categorical entangler parameters in the vector.
fn categorical_slots(ansatz: &Ansatz) -> Vec<usize> {
    (0..ansatz.layers()).map(|l| 9 + 10 * l).collect()
}

/// Returns `true` if the 8×8 unitary acts as the identity on local
/// qubit `q` — i.e. it commutes with both `X_q` and `Z_q` (commuting
/// with all of su(2) on a qubit forces a tensor-product identity
/// there).
fn qubit_untouched(target: &CMatrix, q: usize) -> bool {
    for pauli in [geyser_circuit::Gate::X, geyser_circuit::Gate::Z] {
        let full = geyser_sim::embed_gate(&pauli.matrix(), &[q], 3);
        let lhs = target.matmul(&full);
        let rhs = full.matmul(target);
        if !lhs.approx_eq(&rhs, 1e-9) {
            return false;
        }
    }
    true
}

/// Extracts the 4×4 unitary a 3-qubit unitary applies to two local
/// qubits, given the third is untouched: entries are read with the
/// idle qubit pinned to |0⟩.
fn reduce_to_pair(target: &CMatrix, active: [usize; 2]) -> CMatrix {
    let bit = |q: usize| 2 - q; // big-endian local bit position
    let full_index = |local: usize| -> usize {
        let mut idx = 0usize;
        for (j, &q) in active.iter().enumerate() {
            if (local >> (1 - j)) & 1 == 1 {
                idx |= 1 << bit(q);
            }
        }
        idx
    };
    CMatrix::from_fn(4, 4, |r, c| target[(full_index(r), full_index(c))])
}

/// Deterministic exact synthesis for blocks with ≤2-qubit support:
/// returns a minimal-pulse local circuit, or `None` when all three
/// qubits are genuinely engaged.
fn exact_small_support_candidate(target: &CMatrix) -> Option<Circuit> {
    let untouched: Vec<usize> = (0..3).filter(|&q| qubit_untouched(target, q)).collect();
    match untouched.len() {
        3 => Some(Circuit::new(3)), // identity (handled earlier, but safe)
        2 => {
            // Single-qubit support: one U3.
            let active = (0..3).find(|q| !untouched.contains(q))?;
            let pair_partner = untouched[0];
            let reduced = reduce_to_pair(target, [active, pair_partner]);
            // The partner is idle: the 4×4 is U ⊗ I; take the 2×2.
            let u2 = CMatrix::from_fn(2, 2, |r, c| reduced[(2 * r, 2 * c)]);
            let d = geyser_num::zyz_angles(&u2)?;
            let mut out = Circuit::new(3);
            out.u3(d.theta, d.phi, d.lambda, active);
            Some(out)
        }
        1 => {
            let idle = untouched[0];
            let active: Vec<usize> = (0..3).filter(|&q| q != idle).collect();
            let reduced = reduce_to_pair(target, [active[0], active[1]]);
            let local = geyser_synth::synthesize_two_qubit(&reduced)?;
            // Remap the 2-qubit circuit onto the block's active qubits.
            Some(local.remapped(3, |q| active[q]))
        }
        // All three qubits engaged: the unitary may still factor as a
        // tensor product of one qubit against an entangled pair.
        _ => bipartite_factor_candidate(target),
    }
}

/// Catches `U = U₁ ⊗ U₂` across the three lone-qubit bipartitions of
/// an 8×8 unitary where the lone factor is *not* the identity (the
/// commutation test misses those): emits one U3 plus an exact KAK
/// circuit for the pair.
fn bipartite_factor_candidate(target: &CMatrix) -> Option<Circuit> {
    // (lone qubit, permuted pair order) after swapping `lone` to the
    // most significant position.
    const CASES: [(usize, [usize; 2]); 3] = [(0, [1, 2]), (1, [0, 2]), (2, [1, 0])];
    for (lone, pair) in CASES {
        let permuted = if lone == 0 {
            target.clone()
        } else {
            let swap = geyser_sim::embed_gate(&geyser_circuit::Gate::Swap.matrix(), &[0, lone], 3);
            swap.matmul(target).matmul(&swap)
        };
        let Some((u1, u4)) = geyser_synth::split_tensor_product_dims(&permuted, 2, 1e-8) else {
            continue;
        };
        let mut out = Circuit::new(3);
        // Pair part first; ordering is irrelevant (disjoint qubits).
        let local = geyser_synth::synthesize_two_qubit(&u4)?;
        out.extend_from(&local.remapped(3, |q| pair[q]));
        if !is_identity_up_to_phase(&u1, 1e-9) {
            let d = geyser_num::zyz_angles(&u1)?;
            out.u3(d.theta, d.phi, d.lambda, lone);
        }
        return Some(out);
    }
    None
}

/// Composes every eligible triangle block of a blocked circuit in
/// parallel (the paper notes all blocks compose independently and
/// uses multiprocessing; here a crossbeam scoped-thread pool).
///
/// The returned circuit re-emits rounds/blocks in order, substituting
/// composed block bodies remapped onto their lattice nodes.
///
/// Deterministic for a fixed `(blocked, config)` regardless of thread
/// count (per-block seeds).
pub fn compose_blocked_circuit(
    blocked: &BlockedCircuit,
    config: &CompositionConfig,
) -> ComposedCircuit {
    try_compose_blocked_circuit(blocked, config).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`compose_blocked_circuit`] with no fault hooks.
pub fn try_compose_blocked_circuit(
    blocked: &BlockedCircuit,
    config: &CompositionConfig,
) -> Result<ComposedCircuit, ComposeError> {
    try_compose_blocked_circuit_with_faults(blocked, config, &ComposeFaults::none())
}

/// Callback invoked by the composition pool as each block finishes.
///
/// Runs on the worker thread that composed the block, so
/// implementations must be `Sync`; checkpoint writers use it to
/// persist per-block results as they land. Observers are *not*
/// notified for resumed blocks (results injected via `prior`), and
/// should ignore [`FallbackReason::Cancelled`] fallbacks — a cancelled
/// block was never actually attempted.
pub trait BlockObserver: Sync {
    /// Called once per freshly composed (non-resumed) eligible block.
    fn block_finished(&self, index: usize, result: &CompositionResult);
}

/// Renders a `catch_unwind` payload as text.
fn panic_payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// [`try_compose_blocked_circuit`] with test/bench-only fault
/// injection.
///
/// Each block's composition runs under `catch_unwind`: a panicking
/// block (injected or real) records [`BlockOutcome::Failed`], keeps
/// its original pulses, and never poisons the worker pool — the scope
/// always joins cleanly and the remaining blocks compose normally.
pub fn try_compose_blocked_circuit_with_faults(
    blocked: &BlockedCircuit,
    config: &CompositionConfig,
    faults: &ComposeFaults,
) -> Result<ComposedCircuit, ComposeError> {
    try_compose_blocked_circuit_supervised(
        blocked,
        config,
        faults,
        &CancelToken::none(),
        &[],
        None,
        &Telemetry::disabled(),
    )
}

/// The fully supervised composition entry point: fault injection plus
/// cooperative cancellation, checkpoint resume, and per-block
/// completion observation.
///
/// * `cancel` — polled before every block and inside every annealing
///   chain move; once fired, remaining blocks fall back with
///   [`FallbackReason::Cancelled`] and the pool drains promptly.
/// * `prior` — per-block results from an earlier (interrupted) run,
///   indexed like the blocked circuit's blocks; a `Some` slot is
///   restored verbatim (counted in
///   [`CompositionStats::blocks_resumed`]) instead of recomposed.
///   Because every block derives its seed from `(config.seed, index)`,
///   a resumed run is bit-identical to an uninterrupted one.
/// * `observer` — notified on the worker thread as each fresh block
///   finishes (checkpoint writers hook in here).
/// * `telemetry` — records a `compose.block` span per fresh block plus
///   annealer counters and the acceptance-rate histogram. Timings are
///   observational only: results are bit-identical with telemetry
///   enabled or disabled.
#[allow(clippy::too_many_arguments)]
pub fn try_compose_blocked_circuit_supervised(
    blocked: &BlockedCircuit,
    config: &CompositionConfig,
    faults: &ComposeFaults,
    cancel: &CancelToken,
    prior: &[Option<CompositionResult>],
    observer: Option<&dyn BlockObserver>,
    telemetry: &Telemetry,
) -> Result<ComposedCircuit, ComposeError> {
    try_compose_blocked_circuit_reusing(
        blocked, config, faults, cancel, prior, observer, telemetry, None,
    )
}

/// Consults the coarse (near-miss) index for a warm-start plan.
fn warm_plan(sess: &ReuseSession, coarse: Option<BlockFingerprint>) -> ReusePlan {
    if !sess.warm_start() {
        return ReusePlan::Fresh;
    }
    match coarse.and_then(|cf| sess.lookup_coarse(cf)) {
        Some((params, layers)) => ReusePlan::WarmStart {
            params: params.to_vec(),
            layers,
        },
        None => ReusePlan::Fresh,
    }
}

/// Folds one wave's reuse traces into the session (serially, in block
/// order) and publishes fresh composition outcomes into the index.
///
/// Blocks with injected faults never publish: a corrupted candidate's
/// ε-rejection is an artifact of the fault, not a property of the
/// fingerprint. Replays never republish (their key is already
/// indexed), and only final, deterministic outcomes are cached —
/// cancellation and budget exhaustion are transient, so they stay out.
fn publish_wave(
    sess: &mut ReuseSession,
    wave: &[usize],
    fps: &[Option<(BlockFingerprint, Option<BlockFingerprint>)>],
    results: &Mutex<Vec<Option<CompositionResult>>>,
    traces: &Mutex<Vec<Option<ReuseTrace>>>,
    faults: &ComposeFaults,
    telemetry: &Telemetry,
) {
    let results = results
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let traces = traces
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for &i in wave {
        let Some(trace) = traces[i].as_ref() else {
            continue;
        };
        sess.stats.exact_hits += trace.exact_hit as u64;
        sess.stats.exact_hits_rejected += trace.exact_rejected as u64;
        sess.stats.warm_starts += trace.warm_applied as u64;
        sess.stats.evals_saved += trace.evals_saved;
        sess.stats.unverified_replays += trace.unverified_replay as u64;
        if trace.evals_saved > 0 {
            telemetry.counter_add("reuse.evals_saved", trace.evals_saved);
        }
        if trace.exact_hit {
            continue; // replays never republish their own key
        }
        let Some((fp, coarse)) = fps[i] else {
            continue;
        };
        if faults.corrupt_blocks.contains(&i) || faults.panic_blocks.contains(&i) {
            continue;
        }
        let Some(res) = results[i].as_ref() else {
            continue;
        };
        let entry = match &res.outcome {
            BlockOutcome::Composed { layers, hsd } if *layers >= 1 => {
                trace.winning.as_ref().map(|(params, l)| ReuseEntry {
                    outcome: ReuseOutcome::Composed,
                    params: params.clone(),
                    layers: *l,
                    hsd: *hsd,
                    evaluations: trace.evaluations,
                })
            }
            BlockOutcome::FellBack {
                reason: FallbackReason::NotCheaper,
            } => Some(ReuseEntry {
                outcome: ReuseOutcome::NotCheaper,
                params: Vec::new(),
                layers: 0,
                hsd: 0.0,
                evaluations: trace.evaluations,
            }),
            BlockOutcome::FellBack {
                reason: FallbackReason::EpsilonRejected,
            } => Some(ReuseEntry {
                outcome: ReuseOutcome::EpsilonRejected,
                params: Vec::new(),
                layers: 0,
                hsd: 0.0,
                evaluations: trace.evaluations,
            }),
            // The most valuable negative cache of all: a block that
            // burned the whole budget (including reseeded retries)
            // without converging will almost surely do it again for
            // every equal unitary in the job stream. The fallback
            // pulses are always correct, so the only thing replaying
            // the failure can cost is the slim chance a different
            // block-derived seed would have converged.
            BlockOutcome::FellBack {
                reason: FallbackReason::NonConvergence,
            } => Some(ReuseEntry {
                outcome: ReuseOutcome::NonConvergent,
                params: Vec::new(),
                layers: 0,
                hsd: 0.0,
                evaluations: trace.evaluations,
            }),
            _ => None,
        };
        if let Some(entry) = entry {
            let before = sess.stats.entries_published;
            sess.publish(fp, coarse, entry);
            if sess.stats.entries_published > before {
                telemetry.counter_add("reuse.entries_published", 1);
            }
        }
    }
}

/// [`try_compose_blocked_circuit_supervised`] with an optional
/// composition-reuse session.
///
/// With `session = Some(..)` the composer runs a serial planning phase
/// before annealing: every eligible block is fingerprinted
/// ([`BlockFingerprint`]) and matched against the session index. An
/// exact hit replays the cached entry (through the ε re-verification
/// gate) instead of annealing; a near-miss hit warm-starts the
/// annealer from the cached parameters with a reduced budget; blocks
/// sharing a fingerprint *within* this run compose once (the lowest
/// index leads, the rest replay the leader's published result in a
/// second wave). Planning, publication, and statistics folding are all
/// serial and in block order, so results stay deterministic across
/// thread counts for a fixed session content.
///
/// Reuse trades the bit-for-bit checkpoint-resume guarantee for saved
/// annealing work: a resumed run no longer publishes entries for the
/// restored blocks, so their followers may anneal fresh (and converge
/// to a different, equally ε-verified candidate). Every replayed
/// composition passes the same shared-oracle check as a fresh one
/// unless the session's `reuse-skip-verify` chaos fault is armed.
#[allow(clippy::too_many_arguments)]
pub fn try_compose_blocked_circuit_reusing(
    blocked: &BlockedCircuit,
    config: &CompositionConfig,
    faults: &ComposeFaults,
    cancel: &CancelToken,
    prior: &[Option<CompositionResult>],
    observer: Option<&dyn BlockObserver>,
    telemetry: &Telemetry,
    mut session: Option<&mut ReuseSession>,
) -> Result<ComposedCircuit, ComposeError> {
    let source = blocked.source();
    let blocks: Vec<_> = blocked.blocks().collect();
    let num_blocks = blocks.len();

    // Results and reuse-trace slot per block.
    let results: Mutex<Vec<Option<CompositionResult>>> = Mutex::new(vec![None; num_blocks]);
    let traces: Mutex<Vec<Option<ReuseTrace>>> = Mutex::new(vec![None; num_blocks]);
    let resumed = AtomicUsize::new(0);
    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        config.threads
    };

    // Serial planning phase: fingerprint eligible blocks and decide
    // replay / warm-start / follower before any worker starts, so the
    // waves below are embarrassingly parallel again.
    let mut plans: Vec<ReusePlan> = vec![ReusePlan::Fresh; num_blocks];
    let mut fps: Vec<Option<(BlockFingerprint, Option<BlockFingerprint>)>> = vec![None; num_blocks];
    let mut wave1: Vec<usize> = Vec::with_capacity(num_blocks);
    let mut wave2: Vec<usize> = Vec::new();
    if let Some(sess) = session.as_deref_mut() {
        let mut leaders: std::collections::HashSet<geyser_reuse::ReuseKey> =
            std::collections::HashSet::new();
        for (i, block) in blocks.iter().enumerate() {
            let fresh_triangle =
                block.is_triangle() && prior.get(i).and_then(|p| p.as_ref()).is_none();
            if !fresh_triangle {
                wave1.push(i);
                continue;
            }
            let local = block.subcircuit(source);
            if local.is_empty() {
                wave1.push(i);
                continue;
            }
            let target = circuit_unitary(&local);
            let Some(fp) = BlockFingerprint::of(&target) else {
                wave1.push(i);
                continue;
            };
            let coarse = BlockFingerprint::coarse(&target);
            sess.stats.blocks_fingerprinted += 1;
            telemetry.counter_add("reuse.blocks_fingerprinted", 1);
            fps[i] = Some((fp, coarse));
            if let Some(entry) = sess.lookup(fp) {
                plans[i] = ReusePlan::Replay {
                    entry: entry.clone(),
                    skip_verify: sess.skip_verify(),
                };
                wave1.push(i);
            } else if !leaders.insert(sess.key(fp)) {
                // An earlier block in this run owns the fingerprint:
                // compose it once, replay here in the second wave.
                plans[i] = ReusePlan::Follower;
                wave2.push(i);
            } else {
                plans[i] = warm_plan(sess, coarse);
                wave1.push(i);
            }
        }
    } else {
        wave1 = (0..num_blocks).collect();
    }

    // Runs one parallel wave over the given block indices.
    let run_wave = |wave: &[usize], plans: &[ReusePlan]| -> Result<(), ComposeError> {
        let next = AtomicUsize::new(0);
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads.min(wave.len().max(1)) {
                scope.spawn(|_| loop {
                    let w = next.fetch_add(1, Ordering::Relaxed);
                    if w >= wave.len() {
                        break;
                    }
                    let i = wave[w];
                    let block = blocks[i];
                    let mut trace_slot: Option<ReuseTrace> = None;
                    let result = if block.is_triangle() {
                        let local = block.subcircuit(source);
                        if let Some(prev) = prior.get(i).and_then(|p| p.as_ref()) {
                            // Checkpoint resume: restore the recorded result
                            // without paying for the search again.
                            resumed.fetch_add(1, Ordering::Relaxed);
                            telemetry.counter_add("compose.blocks_resumed", 1);
                            Some(prev.clone())
                        } else {
                            let cfg = config.with_seed(config.seed.wrapping_add(i as u64));
                            let corrupt = faults.corrupt_blocks.contains(&i);
                            let inject_panic = faults.panic_blocks.contains(&i);
                            let mut span = telemetry.span("compose", "compose.block");
                            span.attr("index", i);
                            let mut trace = ReuseTrace::default();
                            // Panic isolation: one block's panic (injected or a
                            // genuine solver bug) must not take down the pool.
                            let attempt = catch_unwind(AssertUnwindSafe(|| {
                                if inject_panic {
                                    panic!("injected composition fault in block {i}");
                                }
                                compose_block_planned(
                                    &local, &cfg, corrupt, cancel, telemetry, &plans[i], &mut trace,
                                )
                            }));
                            let res = match attempt {
                                Ok(res) => res,
                                Err(payload) => CompositionResult {
                                    circuit: local.clone(),
                                    hsd: 0.0,
                                    composed: false,
                                    layers: 0,
                                    outcome: BlockOutcome::Failed {
                                        detail: panic_payload_message(payload),
                                    },
                                },
                            };
                            trace_slot = Some(trace);
                            match &res.outcome {
                                BlockOutcome::Composed { layers, .. } => {
                                    span.attr("outcome", "composed");
                                    span.attr("layers", layers);
                                    telemetry.counter_add("compose.blocks_composed", 1);
                                }
                                BlockOutcome::FellBack { reason } => {
                                    span.attr("outcome", reason.label());
                                    telemetry.counter_add("compose.blocks_fell_back", 1);
                                }
                                BlockOutcome::Failed { .. } => {
                                    span.attr("outcome", "failed");
                                    telemetry.counter_add("compose.blocks_failed", 1);
                                }
                                BlockOutcome::Skipped => {}
                            }
                            drop(span);
                            if let Some(obs) = observer {
                                obs.block_finished(i, &res);
                            }
                            Some(res)
                        }
                    } else {
                        None
                    };
                    // Lock holders only assign a Vec slot; recover the data
                    // even if another worker somehow poisoned the mutex.
                    results
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)[i] = result;
                    traces
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)[i] = trace_slot;
                });
            }
        })
        // Worker bodies are wrapped in catch_unwind above, so a scope-level
        // panic means the pool infrastructure itself failed — surface it as
        // a typed error rather than unwinding through the pipeline.
        .map_err(|payload| ComposeError::WorkerPanicked {
            detail: panic_payload_message(payload),
        })
    };

    run_wave(&wave1, &plans)?;

    if let Some(sess) = session.as_deref_mut() {
        // Serial publish of the first wave, then plan the followers:
        // their leader's entry is indexed now (or the leader failed
        // transiently and the follower searches fresh).
        publish_wave(sess, &wave1, &fps, &results, &traces, faults, telemetry);
        for &i in &wave2 {
            let Some((fp, coarse)) = fps[i] else {
                continue;
            };
            plans[i] = match sess.lookup(fp) {
                Some(entry) => ReusePlan::Replay {
                    entry: entry.clone(),
                    skip_verify: sess.skip_verify(),
                },
                None => warm_plan(sess, coarse),
            };
        }
        run_wave(&wave2, &plans)?;
        publish_wave(sess, &wave2, &fps, &results, &traces, faults, telemetry);
    }

    // The scope joined every worker above; recover from poisoning the
    // same way as the assignment sites.
    let results = results
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);

    // Reassemble with substitutions.
    let mut out = Circuit::new(source.num_qubits());
    let mut stats = CompositionStats {
        blocks_total: num_blocks,
        blocks_resumed: resumed.load(Ordering::Relaxed),
        reuse: session.as_ref().map(|s| s.stats),
        ..CompositionStats::default()
    };
    let mut outcomes = Vec::with_capacity(num_blocks);
    for (block, result) in blocks.iter().zip(&results) {
        let before: u64 = block.pulses(source);
        stats.pulses_before += before;
        match result {
            Some(res) => {
                stats.blocks_eligible += 1;
                match &res.outcome {
                    BlockOutcome::Composed { .. } => {
                        stats.blocks_composed += 1;
                        stats.max_accepted_hsd = stats.max_accepted_hsd.max(res.hsd);
                    }
                    BlockOutcome::FellBack { reason } => {
                        stats.blocks_fell_back += 1;
                        if *reason == FallbackReason::Cancelled {
                            stats.blocks_cancelled += 1;
                        }
                    }
                    BlockOutcome::Failed { .. } => stats.blocks_failed += 1,
                    BlockOutcome::Skipped => {}
                }
                outcomes.push(res.outcome.clone());
                stats.pulses_after += res.circuit.total_pulses();
                let remapped = res
                    .circuit
                    .remapped(source.num_qubits(), |q| block.qubits()[q]);
                out.extend_from(&remapped);
            }
            None => {
                outcomes.push(BlockOutcome::Skipped);
                stats.pulses_after += before;
                for &i in block.op_indices() {
                    out.push(source.ops()[i].clone());
                }
            }
        }
    }
    Ok(ComposedCircuit {
        circuit: out,
        stats,
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use geyser_blocking::{block_circuit, BlockingConfig};
    use geyser_topology::Lattice;

    /// The paper's Fig. 11 example: a CCZ decomposed into 6 CZ and
    /// 8 single-qubit gates (26 pulses).
    fn decomposed_ccz() -> Circuit {
        let mut c = Circuit::new(3);
        let cx = |c: &mut Circuit, a: usize, b: usize| {
            c.h(b);
            c.cz(a, b);
            c.h(b);
        };
        cx(&mut c, 1, 2);
        c.tdg(2);
        cx(&mut c, 0, 2);
        c.t(2);
        cx(&mut c, 1, 2);
        c.tdg(2);
        cx(&mut c, 0, 2);
        c.t(1);
        c.t(2);
        cx(&mut c, 0, 1);
        c.t(0);
        c.tdg(1);
        cx(&mut c, 0, 1);
        c
    }

    #[test]
    fn identity_block_composes_to_nothing() {
        let mut block = Circuit::new(3);
        block.h(0).h(0).cz(1, 2).cz(1, 2);
        let res = compose_block(&block, &CompositionConfig::fast());
        assert!(res.composed);
        assert!(res.circuit.is_empty());
        assert!(res.hsd < 1e-9);
    }

    #[test]
    fn tiny_block_is_kept() {
        // 2 pulses: cheaper than any ansatz — must pass through.
        let mut block = Circuit::new(3);
        block.h(0).t(1);
        let res = compose_block(&block, &CompositionConfig::fast());
        assert!(!res.composed);
        assert_eq!(res.circuit.ops(), block.ops());
    }

    #[test]
    fn composition_never_increases_pulses() {
        let mut block = Circuit::new(3);
        block.h(0).cz(0, 1).t(1).cz(1, 2).h(2).cz(0, 1);
        let res = compose_block(&block, &CompositionConfig::fast());
        assert!(res.circuit.total_pulses() <= block.total_pulses());
    }

    #[test]
    fn decomposed_ccz_recomposes_to_native_form() {
        // The marquee example: 26 pulses of U3/CZ collapse back to a
        // CCZ-bearing form far below the original cost.
        let block = decomposed_ccz();
        // 37 raw pulses here; OptiMap's 1q fusion would bring it to
        // the paper's 26 (8 fused U3 + 6 CZ). Either way composition
        // must find the ~11-pulse CCZ form.
        assert_eq!(block.total_pulses(), 37);
        let cfg = CompositionConfig {
            epsilon: 1e-3,
            max_layers: 1,
            anneal_iters: 400,
            restarts: 4,
            seed: 11,
            threads: 1,
            ..CompositionConfig::default()
        };
        let res = compose_block(&block, &cfg);
        assert!(res.composed, "composition failed, hsd = {}", res.hsd);
        assert!(
            res.circuit.total_pulses() <= 11,
            "pulses = {}",
            res.circuit.total_pulses()
        );
        // Verify true equivalence of the accepted candidate.
        let d = hilbert_schmidt_distance(&circuit_unitary(&block), &circuit_unitary(&res.circuit));
        assert!(d <= 1.5e-3, "accepted candidate diverges: {d}");
    }

    #[test]
    fn composed_circuit_matches_source_distribution() {
        let lat = Lattice::triangular(2, 2);
        let mut c = Circuit::new(4);
        c.h(0).cz(0, 1).h(1).cz(1, 2).h(2).cz(0, 2).h(0).cz(1, 2);
        let blocked = block_circuit(&c, &lat, &BlockingConfig::default());
        let composed = compose_blocked_circuit(&blocked, &CompositionConfig::fast().with_seed(3));
        assert_eq!(composed.stats.blocks_total, blocked.num_blocks());
        // Equivalence within the accepted HSD budget: compare ideal
        // output distributions.
        let p1 = geyser_sim::ideal_distribution(&c);
        let p2 = geyser_sim::ideal_distribution(&composed.circuit);
        let tvd = geyser_sim::total_variation_distance(&p1, &p2);
        assert!(tvd < 1e-2, "TVD = {tvd}");
    }

    #[test]
    fn stats_account_for_all_blocks() {
        let lat = Lattice::triangular(2, 3);
        let mut c = Circuit::new(6);
        c.h(0).cz(0, 1).cz(3, 4).h(4).cz(4, 5).t(5);
        let blocked = block_circuit(&c, &lat, &BlockingConfig::default());
        let composed = compose_blocked_circuit(&blocked, &CompositionConfig::fast());
        assert_eq!(composed.stats.blocks_total, blocked.num_blocks());
        assert!(composed.stats.pulses_after <= composed.stats.pulses_before);
        assert_eq!(composed.stats.pulses_before, c.total_pulses());
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let lat = Lattice::triangular(2, 3);
        let mut c = Circuit::new(6);
        c.h(0).cz(0, 1).h(1).cz(1, 2).cz(3, 4).h(4).cz(4, 5);
        let blocked = block_circuit(&c, &lat, &BlockingConfig::default());
        let mut cfg1 = CompositionConfig::fast();
        cfg1.threads = 1;
        let mut cfg4 = CompositionConfig::fast();
        cfg4.threads = 4;
        let a = compose_blocked_circuit(&blocked, &cfg1);
        let b = compose_blocked_circuit(&blocked, &cfg4);
        assert_eq!(a.circuit.ops(), b.circuit.ops());
    }

    #[test]
    #[should_panic(expected = "3-qubit blocks")]
    fn wrong_block_size_panics() {
        let _ = compose_block(&Circuit::new(2), &CompositionConfig::fast());
    }

    #[test]
    fn single_qubit_support_block_fuses_to_one_u3() {
        // Many gates on one qubit (others idle): exact path collapses
        // them to a single pulse without touching the annealer.
        let mut block = Circuit::new(3);
        block.h(1).t(1).ry(0.4, 1).h(1).rz(1.1, 1);
        let res = compose_block(&block, &CompositionConfig::fast());
        assert!(res.composed);
        assert_eq!(res.circuit.len(), 1);
        assert_eq!(res.circuit.total_pulses(), 1);
        assert!(res.hsd < 1e-8);
    }

    #[test]
    fn two_qubit_support_block_uses_exact_kak() {
        // A diagonal (ZZ-class) pattern on qubits (0, 2): exact KAK
        // needs only two CZ, far below the original's four.
        let mut block = Circuit::new(3);
        block
            .cz(0, 2)
            .rz(0.3, 0)
            .rz(0.4, 2)
            .cz(0, 2)
            .t(0)
            .cz(0, 2)
            .rz(0.2, 2)
            .cz(0, 2);
        let original_pulses = block.total_pulses();
        let res = compose_block(&block, &CompositionConfig::fast());
        assert!(res.composed, "exact path should fire");
        assert!(res.circuit.total_pulses() < original_pulses);
        assert!(res.hsd < 1e-7, "hsd = {}", res.hsd);
        // Idle qubit 1 must stay idle.
        assert!(res.circuit.iter().all(|op| !op.acts_on(1)));
        // True equivalence.
        let d = hilbert_schmidt_distance(&circuit_unitary(&block), &circuit_unitary(&res.circuit));
        assert!(d < 1e-7);
    }

    #[test]
    fn bipartite_factor_blocks_synthesize_exactly() {
        // Qubit 1 does its own single-qubit dance while (0, 2) build a
        // diagonal entangler: U = U₁q ⊗ U₂q across the bipartition.
        let mut block = Circuit::new(3);
        block
            .h(1)
            .cz(0, 2)
            .t(1)
            .rz(0.3, 0)
            .cz(0, 2)
            .ry(0.4, 1)
            .cz(0, 2)
            .rz(0.2, 2)
            .cz(0, 2)
            .h(1);
        let res = compose_block(&block, &CompositionConfig::fast());
        assert!(res.composed, "bipartite exact path should fire");
        assert!(res.hsd < 1e-7, "hsd = {}", res.hsd);
        assert!(res.circuit.total_pulses() < block.total_pulses());
        let d = hilbert_schmidt_distance(&circuit_unitary(&block), &circuit_unitary(&res.circuit));
        assert!(d < 1e-7, "equivalence broken: {d}");
    }

    #[test]
    fn exact_path_respects_pulse_acceptance() {
        // Cheap 2q block already minimal: exact candidate cannot be
        // cheaper, so the original is kept.
        let mut block = Circuit::new(3);
        block.cz(0, 1);
        let res = compose_block(&block, &CompositionConfig::fast());
        assert!(!res.composed);
        assert_eq!(res.circuit.ops(), block.ops());
    }

    /// A 4-qubit circuit whose blocking yields at least one eligible
    /// triangle block, shared by the fault-injection tests.
    fn blocked_fixture() -> (Circuit, BlockedCircuit) {
        let lat = Lattice::triangular(2, 2);
        let mut c = Circuit::new(4);
        c.h(0).cz(0, 1).h(1).cz(1, 2).h(2).cz(0, 2).h(0).cz(1, 2);
        let blocked = block_circuit(&c, &lat, &BlockingConfig::default());
        (c, blocked)
    }

    #[test]
    fn outcomes_cover_every_block() {
        let (_, blocked) = blocked_fixture();
        let composed = compose_blocked_circuit(&blocked, &CompositionConfig::fast());
        assert_eq!(composed.outcomes.len(), composed.stats.blocks_total);
        assert_eq!(
            composed.stats.blocks_eligible,
            composed.stats.blocks_composed
                + composed.stats.blocks_fell_back
                + composed.stats.blocks_failed
        );
    }

    #[test]
    fn injected_panic_is_isolated_and_keeps_original_pulses() {
        let (c, blocked) = blocked_fixture();
        let eligible: Vec<usize> = blocked
            .blocks()
            .enumerate()
            .filter(|(_, b)| b.is_triangle())
            .map(|(i, _)| i)
            .collect();
        assert!(!eligible.is_empty(), "fixture must have a triangle block");
        let faults = ComposeFaults {
            panic_blocks: vec![eligible[0]],
            ..ComposeFaults::none()
        };
        let composed =
            try_compose_blocked_circuit_with_faults(&blocked, &CompositionConfig::fast(), &faults)
                .expect("panic must be isolated per block, not surfaced");
        assert_eq!(composed.stats.blocks_failed, 1);
        match &composed.outcomes[eligible[0]] {
            BlockOutcome::Failed { detail } => {
                assert!(detail.contains("injected composition fault"), "{detail}");
            }
            other => panic!("expected Failed outcome, got {other:?}"),
        }
        // The degraded circuit still matches the source distribution.
        let p1 = geyser_sim::ideal_distribution(&c);
        let p2 = geyser_sim::ideal_distribution(&composed.circuit);
        assert!(geyser_sim::total_variation_distance(&p1, &p2) < 1e-2);
    }

    #[test]
    fn corrupted_candidate_is_caught_by_reverification() {
        let (c, blocked) = blocked_fixture();
        let all: Vec<usize> = (0..blocked.num_blocks()).collect();
        let faults = ComposeFaults {
            corrupt_blocks: all,
            ..ComposeFaults::none()
        };
        let composed =
            try_compose_blocked_circuit_with_faults(&blocked, &CompositionConfig::fast(), &faults)
                .expect("corruption must degrade, not error");
        // No corrupted candidate may slip through the ε re-check: every
        // eligible block either legitimately fell back or had its
        // corrupted winner rejected — so the output equals the source.
        assert_eq!(composed.stats.blocks_composed, 0);
        assert!(composed
            .outcomes
            .iter()
            .all(|o| matches!(o, BlockOutcome::FellBack { .. } | BlockOutcome::Skipped)));
        let p1 = geyser_sim::ideal_distribution(&c);
        let p2 = geyser_sim::ideal_distribution(&composed.circuit);
        assert!(geyser_sim::total_variation_distance(&p1, &p2) < 1e-9);
    }

    #[test]
    fn expired_deadline_falls_back_budget_exhausted() {
        let (c, blocked) = blocked_fixture();
        let cfg = CompositionConfig::fast().with_deadline(Deadline::already_expired());
        let composed = compose_blocked_circuit(&blocked, &cfg);
        assert_eq!(composed.stats.blocks_composed, 0);
        assert!(composed.stats.blocks_fell_back > 0);
        assert!(composed.outcomes.iter().any(|o| matches!(
            o,
            BlockOutcome::FellBack {
                reason: FallbackReason::BudgetExhausted
            }
        )));
        // Budget exhaustion still yields a runnable, equivalent circuit.
        assert_eq!(composed.stats.pulses_after, composed.stats.pulses_before);
        let p1 = geyser_sim::ideal_distribution(&c);
        let p2 = geyser_sim::ideal_distribution(&composed.circuit);
        assert!(geyser_sim::total_variation_distance(&p1, &p2) < 1e-9);
    }

    #[test]
    fn retry_backoff_is_deterministic() {
        let (_, blocked) = blocked_fixture();
        let mut cfg = CompositionConfig::fast();
        cfg.retry_attempts = 2;
        let a = compose_blocked_circuit(&blocked, &cfg);
        let b = compose_blocked_circuit(&blocked, &cfg);
        assert_eq!(a.circuit.ops(), b.circuit.ops());
        assert_eq!(a.outcomes, b.outcomes);
    }

    /// Test observer recording every fresh block completion.
    struct Recorder {
        seen: Mutex<Vec<(usize, CompositionResult)>>,
    }

    impl BlockObserver for Recorder {
        fn block_finished(&self, index: usize, result: &CompositionResult) {
            self.seen.lock().unwrap().push((index, result.clone()));
        }
    }

    #[test]
    fn pre_cancelled_token_falls_back_every_block_as_cancelled() {
        let (c, blocked) = blocked_fixture();
        let token = CancelToken::new();
        token.cancel();
        let composed = try_compose_blocked_circuit_supervised(
            &blocked,
            &CompositionConfig::fast(),
            &ComposeFaults::none(),
            &token,
            &[],
            None,
            &Telemetry::disabled(),
        )
        .expect("cancellation degrades, it does not error");
        assert_eq!(composed.stats.blocks_composed, 0);
        assert!(composed.stats.blocks_cancelled > 0);
        assert_eq!(
            composed.stats.blocks_cancelled,
            composed.stats.blocks_fell_back
        );
        assert!(composed.outcomes.iter().all(|o| matches!(
            o,
            BlockOutcome::FellBack {
                reason: FallbackReason::Cancelled
            } | BlockOutcome::Skipped
        )));
        // Cancelled composition still hands back the original circuit.
        let p1 = geyser_sim::ideal_distribution(&c);
        let p2 = geyser_sim::ideal_distribution(&composed.circuit);
        assert!(geyser_sim::total_variation_distance(&p1, &p2) < 1e-9);
    }

    #[test]
    fn observer_sees_every_eligible_block_exactly_once() {
        let (_, blocked) = blocked_fixture();
        let recorder = Recorder {
            seen: Mutex::new(Vec::new()),
        };
        let composed = try_compose_blocked_circuit_supervised(
            &blocked,
            &CompositionConfig::fast(),
            &ComposeFaults::none(),
            &CancelToken::none(),
            &[],
            Some(&recorder),
            &Telemetry::disabled(),
        )
        .unwrap();
        let mut seen = recorder.seen.into_inner().unwrap();
        seen.sort_by_key(|(i, _)| *i);
        assert_eq!(seen.len(), composed.stats.blocks_eligible);
        let mut indices: Vec<usize> = seen.iter().map(|(i, _)| *i).collect();
        indices.dedup();
        assert_eq!(indices.len(), seen.len(), "duplicate notifications");
    }

    #[test]
    fn resume_from_prior_results_is_bit_identical_and_skips_work() {
        let (_, blocked) = blocked_fixture();
        let cfg = CompositionConfig::fast().with_seed(7);
        let recorder = Recorder {
            seen: Mutex::new(Vec::new()),
        };
        let full = try_compose_blocked_circuit_supervised(
            &blocked,
            &cfg,
            &ComposeFaults::none(),
            &CancelToken::none(),
            &[],
            Some(&recorder),
            &Telemetry::disabled(),
        )
        .unwrap();
        // Build a partial checkpoint: keep only the first recorded
        // block, as if the run was killed after one completion.
        let mut prior: Vec<Option<CompositionResult>> = vec![None; blocked.num_blocks()];
        let seen = recorder.seen.into_inner().unwrap();
        assert!(!seen.is_empty());
        let (idx, res) = &seen[0];
        prior[*idx] = Some(res.clone());

        let resumed_recorder = Recorder {
            seen: Mutex::new(Vec::new()),
        };
        let resumed = try_compose_blocked_circuit_supervised(
            &blocked,
            &cfg,
            &ComposeFaults::none(),
            &CancelToken::none(),
            &prior,
            Some(&resumed_recorder),
            &Telemetry::disabled(),
        )
        .unwrap();
        // Same seed + per-block seeding ⇒ bit-identical to the
        // uninterrupted run, with the checkpointed block restored.
        assert_eq!(resumed.circuit.ops(), full.circuit.ops());
        assert_eq!(resumed.outcomes, full.outcomes);
        assert_eq!(resumed.stats.blocks_resumed, 1);
        // The restored block must not be re-announced to the observer.
        let resumed_seen = resumed_recorder.seen.into_inner().unwrap();
        assert!(resumed_seen.iter().all(|(i, _)| i != idx));
        assert_eq!(resumed_seen.len(), full.stats.blocks_eligible - 1);
    }

    /// A circuit with *repeated* identical triangle blocks: fixed-angle
    /// QAOA literally repeats one cost-plus-mixer layer, and blocking a
    /// deep instance yields many blocks with equal unitaries.
    fn repeated_blocked_fixture(layers: usize) -> (Circuit, BlockedCircuit) {
        let lat = Lattice::triangular(2, 2);
        let c = geyser_workloads::qaoa_fixed(4, layers, 5);
        let blocked = block_circuit(&c, &lat, &BlockingConfig::default());
        (c, blocked)
    }

    fn reuse_compose(
        blocked: &BlockedCircuit,
        cfg: &CompositionConfig,
        session: &mut geyser_reuse::ReuseSession,
    ) -> ComposedCircuit {
        try_compose_blocked_circuit_reusing(
            blocked,
            cfg,
            &ComposeFaults::none(),
            &CancelToken::none(),
            &[],
            None,
            &Telemetry::disabled(),
            Some(session),
        )
        .unwrap()
    }

    fn fast_session() -> geyser_reuse::ReuseSession {
        let cfg = CompositionConfig::fast();
        geyser_reuse::ReuseSession::new(
            0x51,
            geyser_reuse::reuse_config_hash(
                cfg.epsilon,
                cfg.max_layers,
                cfg.anneal_iters,
                cfg.restarts,
                cfg.retry_attempts,
            ),
        )
    }

    #[test]
    fn reuse_replays_repeated_blocks_within_one_run() {
        let (c, blocked) = repeated_blocked_fixture(4);
        let cfg = CompositionConfig::fast().with_seed(5);
        let mut session = fast_session();
        let composed = reuse_compose(&blocked, &cfg, &mut session);
        let stats = composed.stats.reuse.expect("session attached");
        assert!(stats.blocks_fingerprinted >= 2, "{stats:?}");
        assert!(
            stats.exact_hits >= 1,
            "repeated blocks must replay: {stats:?}"
        );
        assert_eq!(stats.unverified_replays, 0);
        // Replayed compositions are ε-verified: the whole circuit still
        // matches the source distribution.
        let p1 = geyser_sim::ideal_distribution(&c);
        let p2 = geyser_sim::ideal_distribution(&composed.circuit);
        assert!(geyser_sim::total_variation_distance(&p1, &p2) < 1e-2);
    }

    #[test]
    fn reuse_session_is_deterministic_across_thread_counts() {
        let (_, blocked) = repeated_blocked_fixture(3);
        let mut cfg1 = CompositionConfig::fast().with_seed(9);
        cfg1.threads = 1;
        let mut cfg4 = cfg1;
        cfg4.threads = 4;
        let mut s1 = fast_session();
        let mut s4 = fast_session();
        let a = reuse_compose(&blocked, &cfg1, &mut s1);
        let b = reuse_compose(&blocked, &cfg4, &mut s4);
        assert_eq!(a.circuit.ops(), b.circuit.ops());
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(s1.stats, s4.stats);
    }

    #[test]
    fn second_run_against_warm_session_skips_annealing() {
        let (_, blocked) = repeated_blocked_fixture(3);
        let cfg = CompositionConfig::fast().with_seed(7);
        let mut session = fast_session();
        let first = reuse_compose(&blocked, &cfg, &mut session);
        let published = session.stats.entries_published;
        assert!(published >= 1, "first run must publish entries");
        // Annealer evaluations banked in the published entries. Blocks
        // the layer-ladder guard rejected before annealing (min_pulses
        // ≥ original) publish NotCheaper entries with zero
        // evaluations, so replaying them saves nothing.
        let replayable_evals: u64 = session
            .dirty()
            .iter()
            .filter_map(|(k, _)| session.get(k))
            .map(|e| e.evaluations)
            .sum();
        let before = session.stats;
        let second = reuse_compose(&blocked, &cfg, &mut session);
        let stats = second.stats.reuse.unwrap();
        // Every published entry replays at least once on the second
        // run. (Blocks the exact fast paths resolved — layers-0
        // results — never publish, so the hit count tracks published
        // entries, not all fingerprints.)
        assert!(
            stats.exact_hits - before.exact_hits >= published,
            "{stats:?}, published = {published}"
        );
        assert_eq!(stats.entries_published, published, "no new entries");
        if replayable_evals > 0 {
            assert!(stats.evals_saved > before.evals_saved, "{stats:?}");
        }
        // Replays reproduce the exact same circuits.
        assert_eq!(first.circuit.ops(), second.circuit.ops());
    }

    #[test]
    fn poisoned_entries_are_rejected_by_reverification() {
        let (c, blocked) = repeated_blocked_fixture(3);
        let cfg = CompositionConfig::fast().with_seed(3);
        let mut session = fast_session();
        let _ = reuse_compose(&blocked, &cfg, &mut session);
        // Poison only perturbs Composed entries; without one there is
        // nothing for the ε gate to catch.
        let has_composed_entry = session
            .dirty()
            .iter()
            .filter_map(|(k, _)| session.get(k))
            .any(|e| e.outcome == geyser_reuse::ReuseOutcome::Composed);
        if !has_composed_entry {
            return; // nothing composed at this budget; nothing to poison
        }
        session.poison_entries();
        let before = session.stats;
        let composed = reuse_compose(&blocked, &cfg, &mut session);
        let stats = composed.stats.reuse.unwrap();
        // The ε gate caught every poisoned replay of a composed entry,
        // and the compile stayed clean end to end.
        assert_eq!(stats.unverified_replays, 0);
        assert!(
            stats.exact_hits_rejected > before.exact_hits_rejected,
            "{stats:?}"
        );
        let p1 = geyser_sim::ideal_distribution(&c);
        let p2 = geyser_sim::ideal_distribution(&composed.circuit);
        assert!(geyser_sim::total_variation_distance(&p1, &p2) < 1e-2);
    }

    #[test]
    fn skip_verify_fault_lets_poison_escape_and_is_counted() {
        let (_, blocked) = repeated_blocked_fixture(3);
        let cfg = CompositionConfig::fast().with_seed(3);
        let mut seed_session = fast_session();
        let _ = reuse_compose(&blocked, &cfg, &mut seed_session);
        let has_composed_entry = seed_session
            .dirty()
            .iter()
            .filter_map(|(k, _)| seed_session.get(k))
            .any(|e| e.outcome == geyser_reuse::ReuseOutcome::Composed);
        if !has_composed_entry {
            return; // nothing composed at this budget; nothing to poison
        }
        seed_session.poison_entries();
        let mut session = seed_session.clone().with_skip_verify_fault(true);
        let composed = reuse_compose(&blocked, &cfg, &mut session);
        let stats = composed.stats.reuse.unwrap();
        // The ε gate was bypassed: poisoned candidates escape into the
        // output and the counter records it — exactly the signal the
        // geyser-verify reuse invariant trips on downstream.
        assert!(stats.unverified_replays > 0, "{stats:?}");
        // The escaped block's unitary really is garbage.
        let poisoned_survives = blocked
            .blocks()
            .zip(&composed.outcomes)
            .filter(|(b, _)| b.is_triangle())
            .any(|(_, o)| matches!(o, BlockOutcome::Composed { layers, .. } if *layers >= 1));
        assert!(poisoned_survives);
    }

    #[test]
    fn warm_start_plan_is_applied_from_coarse_index() {
        let (_, blocked) = repeated_blocked_fixture(3);
        let cfg = CompositionConfig::fast().with_seed(7);
        let mut first = fast_session();
        let _ = reuse_compose(&blocked, &cfg, &mut first);
        let composed_entries: Vec<_> = first
            .dirty()
            .iter()
            .filter_map(|(k, cf)| first.get(k).map(|e| (*k, *cf, e.clone())))
            .filter(|(_, _, e)| e.outcome == geyser_reuse::ReuseOutcome::Composed)
            .collect();
        if composed_entries.is_empty() {
            return;
        }
        // Rebuild a session holding only the *coarse* knowledge: keep
        // the coarse index entries but drop the exact keys by loading
        // them under a perturbed exact fingerprint.
        let mut session = fast_session().with_warm_start(true);
        for (key, coarse, entry) in &composed_entries {
            let mut shifted = *key;
            shifted.fingerprint = geyser_reuse::BlockFingerprint::Canonical {
                dim: 8,
                digest: 0xdead_beef,
            };
            session.insert_loaded(shifted, *coarse, entry.clone());
        }
        let composed = reuse_compose(&blocked, &cfg, &mut session);
        let stats = composed.stats.reuse.unwrap();
        assert!(stats.warm_starts >= 1, "{stats:?}");
    }

    #[test]
    fn fallback_reason_labels_round_trip() {
        for reason in [
            FallbackReason::NotCheaper,
            FallbackReason::NonConvergence,
            FallbackReason::BudgetExhausted,
            FallbackReason::EpsilonRejected,
            FallbackReason::Cancelled,
        ] {
            assert_eq!(FallbackReason::from_label(reason.label()), Some(reason));
        }
        assert_eq!(FallbackReason::from_label("nonsense"), None);
    }
}
