//! Geyser block composition (paper Sec. 3.4, Algorithm 2).
//!
//! Composition is the inverse of gate decomposition: given a 3-qubit
//! block circuit of U3/CZ gates, find an *equivalent* circuit built
//! from parameterized layers of U3 gates and a CZ-or-CCZ entangler
//! that needs **fewer physical pulses**. Equivalence is judged by the
//! Hilbert–Schmidt distance between the 8×8 unitaries; parameters are
//! found with dual annealing.
//!
//! Layer structure (paper Fig. 10): an initial wall of three U3 gates,
//! then per layer one entangler — a categorical choice among CCZ and
//! the three CZ placements — followed by another U3 wall. One layer =
//! 19 parameters (18 angles + 1 categorical), each further layer adds
//! 10. Composition stops when the distance threshold is met or the
//! candidate would need at least as many pulses as the original, in
//! which case the original block is kept (Geyser is never worse than
//! its input).
//!
//! # Example
//!
//! ```
//! use geyser_circuit::Circuit;
//! use geyser_compose::{compose_block, CompositionConfig};
//!
//! // A block that is secretly a CCZ decomposed into many gates will
//! // compose down to a handful of pulses.
//! let mut block = Circuit::new(3);
//! block.h(2).ccz(0, 1, 2).h(2); // 7 pulses already — tiny example
//! let result = compose_block(&block, &CompositionConfig::fast());
//! assert!(result.circuit.total_pulses() <= block.total_pulses());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ansatz;
mod composer;
mod error;
mod quad;

pub use ansatz::{Ansatz, Entangler};
pub use composer::{
    compose_block, compose_blocked_circuit, try_compose_block, try_compose_blocked_circuit,
    try_compose_blocked_circuit_reusing, try_compose_blocked_circuit_supervised,
    try_compose_blocked_circuit_with_faults, BlockObserver, BlockOutcome, ComposeFaults,
    ComposedCircuit, CompositionConfig, CompositionResult, CompositionStats, FallbackReason,
};
pub use error::ComposeError;
pub use geyser_optimize::{CancelToken, Deadline};
pub use geyser_reuse::{ReuseSession, ReuseStats};
pub use quad::{try_compose_quad, QuadAnsatz, QuadAttempt, PULSES_CCCZ, QUAD_ENTANGLER_CHOICES};
