//! Typed errors for the composition stage.

use std::fmt;

/// Why a block could not be composed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ComposeError {
    /// Composition targets 3-qubit triangle blocks; the given block
    /// has a different register size.
    NotThreeQubit {
        /// Qubit count of the offending block.
        qubits: usize,
    },
    /// The parallel composition pool itself panicked (per-block panics
    /// are isolated and recorded as `BlockOutcome::Failed` instead).
    WorkerPanicked {
        /// Rendered panic payload.
        detail: String,
    },
}

impl fmt::Display for ComposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComposeError::NotThreeQubit { qubits } => write!(
                f,
                "composition targets 3-qubit blocks, got a {qubits}-qubit block"
            ),
            ComposeError::WorkerPanicked { detail } => {
                write!(f, "composition worker pool panicked: {detail}")
            }
        }
    }
}

impl std::error::Error for ComposeError {}
