//! Typed errors for the composition stage.

use std::fmt;

/// Why a block could not be composed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ComposeError {
    /// Composition targets 3-qubit triangle blocks; the given block
    /// has a different register size.
    NotThreeQubit {
        /// Qubit count of the offending block.
        qubits: usize,
    },
}

impl fmt::Display for ComposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComposeError::NotThreeQubit { qubits } => write!(
                f,
                "composition targets 3-qubit blocks, got a {qubits}-qubit block"
            ),
        }
    }
}

impl std::error::Error for ComposeError {}
