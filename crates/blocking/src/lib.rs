//! Geyser circuit blocking (paper Sec. 3.3, Algorithm 1).
//!
//! Blocking partitions a mapped physical circuit into *blocks*: small
//! self-contained groups of operations on three mutually-adjacent
//! lattice nodes (triangles). Blocks formed in the same *round* have
//! non-overlapping restriction zones and therefore execute fully in
//! parallel; blocks formed in later rounds follow sequentially.
//!
//! The algorithm maintains a per-qubit *frontier* into the circuit and
//! repeatedly:
//!
//! 1. enumerates every lattice triangle and greedily absorbs the
//!    longest contiguous slice of frontier operations that stays
//!    inside the triangle,
//! 2. searches for the *block family* — a set of zone-compatible
//!    triangles — with the highest score (pulses by default: the
//!    paper performs blocking "in a pulse-aware manner"),
//! 3. commits the family as one round and advances the frontiers.
//!
//! Every operation of the input lands in exactly one block, and
//! concatenating the blocks round by round reproduces a valid
//! reordering of the original circuit (verified by unitary-equivalence
//! tests).
//!
//! # Example
//!
//! ```
//! use geyser_blocking::{block_circuit, BlockingConfig};
//! use geyser_circuit::Circuit;
//! use geyser_topology::Lattice;
//!
//! let lat = Lattice::triangular(2, 2);
//! let mut c = Circuit::new(4);
//! c.h(0).cz(0, 1).cz(1, 2).h(2);
//! let blocked = block_circuit(&c, &lat, &BlockingConfig::default());
//! assert_eq!(blocked.num_ops_covered(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm;
mod block;
mod error;

pub use algorithm::{block_circuit, try_block_circuit, try_block_circuit_traced, BlockingConfig};
pub use block::{Block, BlockedCircuit, Round};
pub use error::BlockError;
