//! Typed errors for the blocking stage.

use std::fmt;

/// Why a circuit could not be blocked over a lattice.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BlockError {
    /// The circuit is not expressed over the lattice's node space.
    RegisterMismatch {
        /// Qubit count of the circuit.
        circuit_qubits: usize,
        /// Node count of the lattice.
        lattice_nodes: usize,
    },
}

impl fmt::Display for BlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockError::RegisterMismatch {
                circuit_qubits,
                lattice_nodes,
            } => write!(
                f,
                "circuit must be over lattice nodes: circuit has \
                 {circuit_qubits} qubits, lattice has {lattice_nodes} nodes"
            ),
        }
    }
}

impl std::error::Error for BlockError {}
