//! The blocking algorithm (paper Algorithm 1).

use geyser_circuit::Circuit;
use geyser_telemetry::Telemetry;
use geyser_topology::Lattice;

use crate::{Block, BlockError, BlockedCircuit, Round};

/// Configuration for [`block_circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockingConfig {
    /// Score blocks by pulse count (the paper's pulse-aware mode).
    /// When `false`, blocks are scored by operation count — the
    /// gate-centric baseline used in the ablation study.
    pub pulse_aware: bool,
    /// Hardware cap on blocks pulsed simultaneously in one round:
    /// the family search stops growing a round at this many blocks.
    /// `None` (the paper's assumption) leaves parallelism unlimited.
    pub max_blocks_per_round: Option<usize>,
}

impl Default for BlockingConfig {
    fn default() -> Self {
        BlockingConfig {
            pulse_aware: true,
            max_blocks_per_round: None,
        }
    }
}

/// One block candidate during a round: `(qubits, absorbed op indices,
/// per-qubit frontier advance, score)`.
type Candidate = (Vec<usize>, Vec<usize>, Vec<(usize, usize)>, u64);

/// Per-qubit frontier state over the source circuit.
struct Frontier {
    /// `per_qubit[q]` = source op indices touching qubit `q`.
    per_qubit: Vec<Vec<usize>>,
    /// `ptr[q]` = how many of `per_qubit[q]` are already blocked.
    ptr: Vec<usize>,
}

impl Frontier {
    fn new(circuit: &Circuit) -> Self {
        Frontier {
            per_qubit: circuit.per_qubit_op_indices(),
            ptr: vec![0; circuit.num_qubits()],
        }
    }

    fn exhausted(&self) -> bool {
        self.ptr
            .iter()
            .zip(&self.per_qubit)
            .all(|(&p, ops)| p >= ops.len())
    }

    /// Next unblocked op index on qubit `q`, if any.
    fn next_on(&self, q: usize) -> Option<usize> {
        self.per_qubit[q].get(self.ptr[q]).copied()
    }
}

/// Greedily absorbs the maximal contiguous frontier slice that stays
/// inside `qubits`. Returns the absorbed op indices (ascending) and
/// the per-qubit count of absorbed ops.
fn absorb(
    circuit: &Circuit,
    frontier: &Frontier,
    qubits: &[usize],
) -> (Vec<usize>, Vec<(usize, usize)>) {
    let mut local: Vec<(usize, usize)> = qubits.iter().map(|&q| (q, frontier.ptr[q])).collect();
    let next_of = |local: &[(usize, usize)], q: usize| -> Option<usize> {
        let ptr = local.iter().find(|&&(lq, _)| lq == q)?.1;
        frontier.per_qubit[q].get(ptr).copied()
    };
    let mut absorbed = Vec::new();
    loop {
        // Find the smallest-index absorbable op among the frontier
        // candidates of the block's qubits.
        let mut best: Option<usize> = None;
        for &(q, _) in &local {
            let Some(idx) = next_of(&local, q) else {
                continue;
            };
            let op = &circuit.ops()[idx];
            // Absorbable: all its qubits are in the block and `idx` is
            // the next pending op on every one of them.
            let inside = op.qubits().iter().all(|qq| qubits.contains(qq));
            if !inside {
                continue;
            }
            let at_frontier = op
                .qubits()
                .iter()
                .all(|&qq| next_of(&local, qq) == Some(idx));
            if !at_frontier {
                continue;
            }
            best = Some(best.map_or(idx, |b: usize| b.min(idx)));
        }
        let Some(idx) = best else { break };
        absorbed.push(idx);
        for &qq in circuit.ops()[idx].qubits() {
            if let Some(entry) = local.iter_mut().find(|(lq, _)| *lq == qq) {
                entry.1 += 1;
            }
        }
    }
    absorbed.sort_unstable();
    let advanced: Vec<(usize, usize)> = local
        .iter()
        .map(|&(q, p)| (q, p - frontier.ptr[q]))
        .collect();
    (absorbed, advanced)
}

/// Blocks `circuit` (expressed over `lattice` nodes, native basis)
/// into rounds of zone-compatible triangle blocks per Algorithm 1.
///
/// Operations that cannot be hosted by any triangle (possible only on
/// lattices without triangles, e.g. a plain square grid) are emitted
/// as passthrough blocks so that the partition always covers the full
/// circuit.
///
/// # Panics
///
/// Panics if the circuit's qubit count differs from the lattice size.
///
/// # Example
///
/// ```
/// use geyser_blocking::{block_circuit, BlockingConfig};
/// use geyser_circuit::Circuit;
/// use geyser_topology::Lattice;
/// let lat = Lattice::triangular(2, 2);
/// let mut c = Circuit::new(4);
/// c.cz(0, 1).h(2);
/// let blocked = block_circuit(&c, &lat, &BlockingConfig::default());
/// assert_eq!(blocked.num_ops_covered(), 2);
/// ```
pub fn block_circuit(
    circuit: &Circuit,
    lattice: &Lattice,
    config: &BlockingConfig,
) -> BlockedCircuit {
    try_block_circuit(circuit, lattice, config).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`block_circuit`]: returns
/// [`BlockError::RegisterMismatch`] instead of panicking when the
/// circuit is not expressed over the lattice's node space.
///
/// # Example
///
/// ```
/// use geyser_blocking::{try_block_circuit, BlockError, BlockingConfig};
/// use geyser_circuit::Circuit;
/// use geyser_topology::Lattice;
/// let lat = Lattice::triangular(2, 2); // 4 nodes
/// let c = Circuit::new(3); // not over the node space
/// let err = try_block_circuit(&c, &lat, &BlockingConfig::default());
/// assert!(matches!(err, Err(BlockError::RegisterMismatch { .. })));
/// ```
pub fn try_block_circuit(
    circuit: &Circuit,
    lattice: &Lattice,
    config: &BlockingConfig,
) -> Result<BlockedCircuit, BlockError> {
    try_block_circuit_traced(circuit, lattice, config, &Telemetry::disabled())
}

/// [`try_block_circuit`] with telemetry: opens a span per round of the
/// block-family search (category `blocking`) and counts the rounds and
/// blocks produced. A disabled handle makes this identical to the
/// untraced form.
pub fn try_block_circuit_traced(
    circuit: &Circuit,
    lattice: &Lattice,
    config: &BlockingConfig,
    telemetry: &Telemetry,
) -> Result<BlockedCircuit, BlockError> {
    if circuit.num_qubits() != lattice.num_nodes() {
        return Err(BlockError::RegisterMismatch {
            circuit_qubits: circuit.num_qubits(),
            lattice_nodes: lattice.num_nodes(),
        });
    }
    let triangles = lattice.triangles();
    let mut frontier = Frontier::new(circuit);
    let mut rounds = Vec::new();

    let score = |block_ops: &[usize]| -> u64 {
        if config.pulse_aware {
            block_ops
                .iter()
                .map(|&i| circuit.ops()[i].pulses() as u64)
                .sum()
        } else {
            block_ops.len() as u64
        }
    };

    while !frontier.exhausted() {
        let mut round_span = telemetry.span("blocking", "blocking.round");
        // T: every triangle able to absorb at least one frontier op.
        let mut candidates: Vec<Candidate> = triangles
            .iter()
            .filter_map(|t| {
                let qubits = t.to_vec();
                let (ops, advanced) = absorb(circuit, &frontier, &qubits);
                if ops.is_empty() {
                    None
                } else {
                    let s = score(&ops);
                    Some((qubits, ops, advanced, s))
                }
            })
            .collect();
        candidates.sort_by_key(|c| std::cmp::Reverse(c.3));

        if candidates.is_empty() {
            // Fallback: the earliest fully-ready op (all predecessors
            // blocked) becomes a passthrough block.
            let idx = (0..circuit.num_qubits())
                .filter_map(|q| frontier.next_on(q))
                .filter(|&i| {
                    circuit.ops()[i]
                        .qubits()
                        .iter()
                        .all(|&q| frontier.next_on(q) == Some(i))
                })
                .min()
                // invariant: an unexhausted frontier always exposes at
                // least one op whose operands all sit at their
                // frontiers (the earliest unblocked op qualifies).
                .expect("frontier not exhausted implies a ready op exists");
            let op = &circuit.ops()[idx];
            let block = Block::new(op.qubits().to_vec(), vec![idx], false);
            for &q in op.qubits() {
                frontier.ptr[q] += 1;
            }
            round_span.attr("passthrough", true);
            telemetry.counter_add("blocking.passthrough_blocks", 1);
            rounds.push(Round::new(vec![block]));
            continue;
        }
        round_span.attr("candidates", candidates.len());

        // Block-family search: seed with each candidate, then greedily
        // add zone-compatible candidates by descending score
        // (paper Fig. 8's family construction), up to the hardware's
        // simultaneous-pulse cap.
        let cap = config.max_blocks_per_round.unwrap_or(usize::MAX).max(1);
        let mut best_family: Vec<usize> = Vec::new();
        let mut best_score = 0u64;
        for seed in 0..candidates.len() {
            let mut family = vec![seed];
            let mut family_score = candidates[seed].3;
            for (j, cand) in candidates.iter().enumerate() {
                if family.len() >= cap {
                    break;
                }
                if j == seed {
                    continue;
                }
                let compatible = family
                    .iter()
                    .all(|&k| !lattice.gates_conflict(&candidates[k].0, &cand.0));
                if compatible {
                    family.push(j);
                    family_score += cand.3;
                }
            }
            if family_score > best_score {
                best_score = family_score;
                best_family = family;
            }
        }

        // Commit the family as one round; advance the frontier.
        let mut blocks = Vec::new();
        for &k in &best_family {
            let (qubits, ops, advanced, _) = &candidates[k];
            blocks.push(Block::new(qubits.clone(), ops.clone(), true));
            for &(q, delta) in advanced {
                frontier.ptr[q] += delta;
            }
        }
        round_span.attr("blocks", blocks.len());
        telemetry.counter_add("blocking.triangle_blocks", blocks.len() as u64);
        rounds.push(Round::new(blocks));
    }
    telemetry.counter_add("blocking.rounds", rounds.len() as u64);

    Ok(BlockedCircuit::new(circuit.clone(), rounds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use geyser_num::hilbert_schmidt_distance;
    use geyser_sim::circuit_unitary;

    fn assert_partition_valid(blocked: &BlockedCircuit) {
        // Every op exactly once.
        let mut seen = vec![false; blocked.source().len()];
        for block in blocked.blocks() {
            for &i in block.op_indices() {
                assert!(!seen[i], "op {i} covered twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some op left uncovered");
        // Reassembly preserves the unitary (valid reordering).
        if blocked.source().num_qubits() <= 10 {
            let d = hilbert_schmidt_distance(
                &circuit_unitary(blocked.source()),
                &circuit_unitary(&blocked.reassemble()),
            );
            assert!(d < 1e-9, "reassembled circuit diverged, HSD = {d}");
        }
    }

    fn assert_rounds_zone_compatible(blocked: &BlockedCircuit, lattice: &Lattice) {
        for round in blocked.rounds() {
            let blocks = round.blocks();
            for i in 0..blocks.len() {
                for j in (i + 1)..blocks.len() {
                    assert!(
                        !lattice.gates_conflict(blocks[i].qubits(), blocks[j].qubits()),
                        "round contains conflicting blocks"
                    );
                }
            }
        }
    }

    #[test]
    fn simple_circuit_blocks_fully() {
        let lat = Lattice::triangular(2, 2);
        let mut c = Circuit::new(4);
        c.h(0).cz(0, 1).cz(1, 2).h(2).cz(0, 2);
        let blocked = block_circuit(&c, &lat, &BlockingConfig::default());
        assert_partition_valid(&blocked);
        assert_rounds_zone_compatible(&blocked, &lat);
        // 0,1,2 form a triangle: a single block should take everything.
        assert_eq!(blocked.num_blocks(), 1);
        assert!(blocked.blocks().next().unwrap().is_triangle());
    }

    #[test]
    fn ops_spanning_triangles_split_into_rounds() {
        let lat = Lattice::triangular(3, 3);
        let mut c = Circuit::new(9);
        // Chain crossing multiple triangles.
        c.cz(0, 1).cz(1, 2).cz(3, 4).cz(4, 5).cz(1, 4).cz(2, 5);
        let blocked = block_circuit(&c, &lat, &BlockingConfig::default());
        assert_partition_valid(&blocked);
        assert_rounds_zone_compatible(&blocked, &lat);
        assert!(blocked.num_blocks() >= 2);
    }

    #[test]
    fn parallel_blocks_share_a_round() {
        // Two independent CZ chains far apart on a 3×6 lattice.
        let lat = Lattice::triangular(3, 6);
        let mut c = Circuit::new(18);
        c.cz(0, 1).h(0).cz(16, 17).h(17);
        let blocked = block_circuit(&c, &lat, &BlockingConfig::default());
        assert_partition_valid(&blocked);
        assert_rounds_zone_compatible(&blocked, &lat);
        // Both groups fit in one round as two parallel blocks.
        assert_eq!(blocked.rounds().len(), 1);
        assert_eq!(blocked.rounds()[0].blocks().len(), 2);
    }

    #[test]
    fn square_lattice_degrades_to_passthrough() {
        // Square grids have no triangles: everything passes through.
        let lat = Lattice::square(2, 2);
        let mut c = Circuit::new(4);
        c.h(0).cz(0, 1).cz(2, 3);
        let blocked = block_circuit(&c, &lat, &BlockingConfig::default());
        assert_partition_valid(&blocked);
        assert_eq!(blocked.num_triangle_blocks(), 0);
        assert_eq!(blocked.num_blocks(), 3);
    }

    #[test]
    fn pulse_aware_vs_gate_aware_both_partition() {
        let lat = Lattice::triangular(3, 3);
        let mut c = Circuit::new(9);
        for i in 0..8 {
            c.cz(i, i + 1);
            c.h(i);
        }
        for cfg in [
            BlockingConfig {
                pulse_aware: true,
                ..BlockingConfig::default()
            },
            BlockingConfig {
                pulse_aware: false,
                ..BlockingConfig::default()
            },
        ] {
            let blocked = block_circuit(&c, &lat, &cfg);
            assert_partition_valid(&blocked);
            assert_rounds_zone_compatible(&blocked, &lat);
        }
    }

    #[test]
    fn round_cap_limits_simultaneous_blocks() {
        // A wide layer that unlimited blocking packs into multi-block
        // rounds must serialize under a cap of one block per round,
        // while still covering the circuit exactly.
        let lat = Lattice::triangular(3, 6);
        let mut c = Circuit::new(18);
        for q in 0..18 {
            c.h(q);
        }
        let unlimited = block_circuit(&c, &lat, &BlockingConfig::default());
        assert!(
            unlimited.rounds().iter().any(|r| r.blocks().len() > 1),
            "test premise: unlimited blocking parallelizes"
        );
        let capped_cfg = BlockingConfig {
            max_blocks_per_round: Some(1),
            ..BlockingConfig::default()
        };
        let capped = block_circuit(&c, &lat, &capped_cfg);
        assert_partition_valid(&capped);
        for round in capped.rounds() {
            assert!(round.blocks().len() <= 1);
        }
        assert!(capped.rounds().len() > unlimited.rounds().len());
    }

    #[test]
    fn empty_circuit_yields_no_rounds() {
        let lat = Lattice::triangular(2, 2);
        let blocked = block_circuit(&Circuit::new(4), &lat, &BlockingConfig::default());
        assert_eq!(blocked.num_blocks(), 0);
        assert!(blocked.rounds().is_empty());
    }

    #[test]
    fn deep_single_triangle_circuit_is_one_block() {
        let lat = Lattice::triangular(2, 2);
        let mut c = Circuit::new(4);
        for _ in 0..10 {
            c.cz(0, 1).h(1).cz(1, 2).h(0);
        }
        let blocked = block_circuit(&c, &lat, &BlockingConfig::default());
        assert_partition_valid(&blocked);
        assert_eq!(blocked.num_blocks(), 1);
        assert_eq!(blocked.blocks().next().unwrap().num_ops(), 40);
    }

    #[test]
    fn blocking_respects_dependencies_across_rounds() {
        // An op on (2,3) depends on an earlier op on (1,2): the
        // reassembled order must keep them correctly ordered, which
        // assert_partition_valid checks via the unitary.
        let lat = Lattice::triangular(2, 3);
        let mut c = Circuit::new(6);
        c.h(1).cz(1, 2).t(2).cz(2, 3).h(3).cz(0, 1).cz(4, 5);
        let blocked = block_circuit(&c, &lat, &BlockingConfig::default());
        assert_partition_valid(&blocked);
        assert_rounds_zone_compatible(&blocked, &lat);
    }

    #[test]
    #[should_panic(expected = "over lattice nodes")]
    fn size_mismatch_panics() {
        let lat = Lattice::triangular(2, 2);
        let _ = block_circuit(&Circuit::new(3), &lat, &BlockingConfig::default());
    }
}
