//! Block, round, and blocked-circuit data structures.

use geyser_circuit::Circuit;

/// A self-contained group of operations on a small qubit set.
///
/// Triangle blocks (`is_triangle() == true`) cover three mutually
/// adjacent lattice nodes and are candidates for CCZ-based
/// composition. Passthrough blocks carry operations that could not be
/// placed in any triangle (e.g. on degenerate lattices); they are
/// re-emitted unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    qubits: Vec<usize>,
    op_indices: Vec<usize>,
    is_triangle: bool,
}

impl Block {
    /// Creates a block over `qubits` covering the given source-circuit
    /// operation indices (ascending program order).
    ///
    /// # Panics
    ///
    /// Panics if `op_indices` is empty or not strictly ascending.
    pub fn new(qubits: Vec<usize>, op_indices: Vec<usize>, is_triangle: bool) -> Self {
        assert!(!op_indices.is_empty(), "block must cover operations");
        assert!(
            op_indices.windows(2).all(|w| w[0] < w[1]),
            "operation indices must be strictly ascending"
        );
        Block {
            qubits,
            op_indices,
            is_triangle,
        }
    }

    /// The lattice nodes this block engages (sorted for triangles).
    pub fn qubits(&self) -> &[usize] {
        &self.qubits
    }

    /// Indices into the source circuit, in program order.
    pub fn op_indices(&self) -> &[usize] {
        &self.op_indices
    }

    /// Whether the block is a three-qubit triangle (composable).
    pub fn is_triangle(&self) -> bool {
        self.is_triangle
    }

    /// Number of operations covered.
    pub fn num_ops(&self) -> usize {
        self.op_indices.len()
    }

    /// Total pulses of the covered operations.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range for `source`.
    pub fn pulses(&self, source: &Circuit) -> u64 {
        self.op_indices
            .iter()
            .map(|&i| source.ops()[i].pulses() as u64)
            .sum()
    }

    /// Extracts the block as a standalone circuit over local qubits
    /// `0..qubits.len()`, with `qubits()[k] → k`. Returns the local
    /// circuit; the mapping back is [`Block::qubits`].
    ///
    /// # Panics
    ///
    /// Panics if an operation touches a qubit outside the block.
    pub fn subcircuit(&self, source: &Circuit) -> Circuit {
        let mut local = Circuit::new(self.qubits.len());
        for &i in &self.op_indices {
            let op = &source.ops()[i];
            local.push(op.remapped(|q| {
                self.qubits
                    .iter()
                    .position(|&b| b == q)
                    .expect("operation escapes block qubits")
            }));
        }
        local
    }
}

/// A set of blocks whose restriction zones are mutually compatible —
/// they execute concurrently.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Round {
    blocks: Vec<Block>,
}

impl Round {
    /// Creates a round from blocks (compatibility is the algorithm's
    /// responsibility and is asserted in debug builds there).
    pub fn new(blocks: Vec<Block>) -> Self {
        Round { blocks }
    }

    /// The blocks of this round.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Total operations across the round's blocks.
    pub fn num_ops(&self) -> usize {
        self.blocks.iter().map(Block::num_ops).sum()
    }
}

/// The result of blocking: the source circuit partitioned into rounds
/// of parallel blocks.
#[derive(Debug, Clone)]
pub struct BlockedCircuit {
    source: Circuit,
    rounds: Vec<Round>,
}

impl BlockedCircuit {
    /// Assembles a blocked circuit (used by the blocking algorithm).
    pub fn new(source: Circuit, rounds: Vec<Round>) -> Self {
        BlockedCircuit { source, rounds }
    }

    /// The original circuit the blocks index into.
    pub fn source(&self) -> &Circuit {
        &self.source
    }

    /// Rounds in execution order.
    pub fn rounds(&self) -> &[Round] {
        &self.rounds
    }

    /// Iterates over all blocks across rounds.
    pub fn blocks(&self) -> impl Iterator<Item = &Block> {
        self.rounds.iter().flat_map(|r| r.blocks().iter())
    }

    /// Total number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.rounds.iter().map(|r| r.blocks().len()).sum()
    }

    /// Number of triangle (composable) blocks.
    pub fn num_triangle_blocks(&self) -> usize {
        self.blocks().filter(|b| b.is_triangle()).count()
    }

    /// Total operations covered by all blocks.
    pub fn num_ops_covered(&self) -> usize {
        self.rounds.iter().map(Round::num_ops).sum()
    }

    /// Mean operations per block (0 when there are no blocks).
    pub fn mean_block_size(&self) -> f64 {
        if self.num_blocks() == 0 {
            0.0
        } else {
            self.num_ops_covered() as f64 / self.num_blocks() as f64
        }
    }

    /// Re-emits the blocked circuit as a flat circuit: rounds in
    /// order, blocks within a round in order, operations within a
    /// block in program order. This is a valid dependency-preserving
    /// reordering of the source circuit.
    pub fn reassemble(&self) -> Circuit {
        let mut out = Circuit::new(self.source.num_qubits());
        for round in &self.rounds {
            for block in round.blocks() {
                for &i in block.op_indices() {
                    out.push(self.source.ops()[i].clone());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new(4);
        c.h(0).cz(0, 1).cz(1, 2).h(2).cz(2, 3);
        c
    }

    #[test]
    fn block_accessors() {
        let c = sample_circuit();
        let b = Block::new(vec![0, 1, 2], vec![0, 1, 2], true);
        assert_eq!(b.num_ops(), 3);
        assert!(b.is_triangle());
        assert_eq!(b.pulses(&c), 1 + 3 + 3);
    }

    #[test]
    fn subcircuit_remaps_to_local_qubits() {
        let c = sample_circuit();
        let b = Block::new(vec![1, 2, 3], vec![2, 3, 4], true);
        let local = b.subcircuit(&c);
        assert_eq!(local.num_qubits(), 3);
        // cz(1,2) → cz(0,1); h(2) → h(1); cz(2,3) → cz(1,2).
        assert_eq!(local.ops()[0].qubits(), &[0, 1]);
        assert_eq!(local.ops()[1].qubits(), &[1]);
        assert_eq!(local.ops()[2].qubits(), &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "escapes block qubits")]
    fn subcircuit_rejects_escaping_ops() {
        let c = sample_circuit();
        let b = Block::new(vec![0, 1], vec![2], false); // cz(1,2) ⊄ {0,1}
        let _ = b.subcircuit(&c);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_indices_panic() {
        let _ = Block::new(vec![0], vec![2, 1], false);
    }

    #[test]
    fn reassemble_concatenates_rounds() {
        let c = sample_circuit();
        let r1 = Round::new(vec![Block::new(vec![0, 1, 2], vec![0, 1, 2, 3], true)]);
        let r2 = Round::new(vec![Block::new(vec![2, 3], vec![4], false)]);
        let blocked = BlockedCircuit::new(c.clone(), vec![r1, r2]);
        assert_eq!(blocked.num_blocks(), 2);
        assert_eq!(blocked.num_triangle_blocks(), 1);
        assert_eq!(blocked.num_ops_covered(), 5);
        assert_eq!(blocked.reassemble().ops(), c.ops());
        assert!((blocked.mean_block_size() - 2.5).abs() < 1e-12);
    }
}
