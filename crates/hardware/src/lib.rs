//! One serializable value for an entire neutral-atom hardware
//! scenario.
//!
//! The paper's results are parameterized by a hardware model — lattice
//! family, atom spacing, Rydberg interaction radius, how many blocks
//! may pulse simultaneously, and per-pulse noise rates — but those
//! assumptions naturally scatter across crates (`geyser-topology`
//! owns geometry, `geyser-sim` owns noise, the pass pipeline picks
//! lattice kinds). [`HardwareSpec`] gathers them into a single
//! serde-serializable value with a stable content digest, so a
//! scenario is one JSON file: pipelines consume it through
//! `PipelineConfig`, and caches/checkpoints key on
//! [`HardwareSpec::digest`] so results compiled under one hardware
//! model can never be replayed under another.

use std::fmt;
use std::fs;
use std::hash::{Hash, Hasher};
use std::path::Path;

use geyser_sim::NoiseModel;
use geyser_topology::{Lattice, LatticeKind};
use serde::{Deserialize, Serialize};

/// Lattice geometry of a scenario: family, dimensions, and the two
/// lengths that induce the adjacency graph (and with it the
/// restriction-zone layout of every multi-qubit gate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatticeSpec {
    /// Geometric family (triangular, square, diagonal square).
    pub kind: LatticeKind,
    /// Fixed row count, or `0` to size the grid for each program
    /// (the near-square policy of [`Lattice::grid_dims`]).
    pub rows: usize,
    /// Fixed column count, or `0` to size per program.
    pub cols: usize,
    /// Distance between grid-adjacent atoms (arbitrary length unit;
    /// the paper's technological parameters fix it at a few μm).
    pub spacing: f64,
    /// Interaction radius as a multiple of `spacing`. The paper uses
    /// `1.01` for every family; [`LatticeKind::SquareDiagonal`]
    /// additionally scales by `√2` so the radius reaches diagonal
    /// neighbours (paper Fig. 7b).
    pub radius_factor: f64,
}

impl LatticeSpec {
    /// The absolute interaction radius this spec induces for `kind`
    /// (the diagonal square family carries the extra `√2`).
    pub fn radius_for(&self, kind: LatticeKind) -> f64 {
        let base = self.spacing * self.radius_factor;
        match kind {
            LatticeKind::Triangular | LatticeKind::Square => base,
            LatticeKind::SquareDiagonal => std::f64::consts::SQRT_2 * base,
        }
    }
}

/// A complete neutral-atom hardware scenario.
///
/// [`HardwareSpec::paper`] reproduces the repository's historical
/// behavior bit-identically; every other value is a counterfactual
/// machine for sweeps and ablations. The [`digest`](Self::digest)
/// folds every behavioral field into one `u64`, which cache keys and
/// checkpoint bindings embed so cross-scenario replay is impossible.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareSpec {
    /// Human-readable scenario label (file stems, scorecard rows).
    /// Not part of the digest: renaming a scenario does not invalidate
    /// results computed under it.
    pub name: String,
    /// Lattice geometry (also fixes restriction-zone layout).
    pub lattice: LatticeSpec,
    /// Maximum number of blocks the machine can pulse simultaneously
    /// in one blocking round (`0` = unlimited, the paper's
    /// assumption).
    pub max_parallel_blocks: usize,
    /// Per-pulse stochastic noise model.
    pub noise: NoiseModel,
    /// Probability an atom escapes the trap per shot (fed to the
    /// atom-loss simulation paths).
    pub atom_loss: f64,
}

impl HardwareSpec {
    /// The paper's machine: triangular lattice sized per program at
    /// unit spacing, radius `1.01·spacing`, unlimited parallel
    /// blocks, 0.1% symmetric per-pulse noise, no atom loss.
    /// Compiling under this spec is bit-identical to the
    /// pre-`HardwareSpec` pipeline.
    pub fn paper() -> Self {
        HardwareSpec {
            name: "paper".to_string(),
            lattice: LatticeSpec {
                kind: LatticeKind::Triangular,
                rows: 0,
                cols: 0,
                spacing: 1.0,
                radius_factor: 1.01,
            },
            max_parallel_blocks: 0,
            noise: NoiseModel::default(),
            atom_loss: 0.0,
        }
    }

    /// The diagonal-square ablation machine (paper Fig. 7b): same
    /// spacing and noise as [`paper`](Self::paper) but the interaction
    /// radius reaches diagonal neighbours.
    pub fn square_diagonal() -> Self {
        HardwareSpec {
            name: "square-diagonal".to_string(),
            lattice: LatticeSpec {
                kind: LatticeKind::SquareDiagonal,
                ..Self::paper().lattice
            },
            ..Self::paper()
        }
    }

    /// A pessimistic near-term machine: 0.5% per-pulse noise, a cap of
    /// four simultaneously-pulsed blocks, and 0.2% atom loss per shot.
    pub fn near_term() -> Self {
        HardwareSpec {
            name: "near-term".to_string(),
            max_parallel_blocks: 4,
            noise: NoiseModel::symmetric(0.005),
            atom_loss: 0.002,
            ..Self::paper()
        }
    }

    /// Returns a copy with a different scenario label (digest
    /// unchanged).
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// Stable content digest of every behavioral field (FNV-1a over a
    /// canonical rendering; the label is excluded). Two specs that
    /// compile circuits identically digest identically, and any change
    /// to geometry, pulse limits, or noise changes the digest —
    /// this is the value caches and checkpoints bind to.
    pub fn digest(&self) -> u64 {
        let canonical = format!(
            "kind={:?}|rows={}|cols={}|spacing={:?}|radius_factor={:?}|max_parallel_blocks={}|bit_flip={:?}|phase_flip={:?}|granularity={:?}|atom_loss={:?}",
            self.lattice.kind,
            self.lattice.rows,
            self.lattice.cols,
            self.lattice.spacing,
            self.lattice.radius_factor,
            self.max_parallel_blocks,
            self.noise.bit_flip,
            self.noise.phase_flip,
            self.noise.granularity,
            self.atom_loss,
        );
        fnv1a(&canonical)
    }

    /// `true` when this spec digests identically to
    /// [`HardwareSpec::paper`] (legacy on-disk artifacts without a
    /// digest were implicitly compiled under the paper machine).
    pub fn is_paper(&self) -> bool {
        self.digest() == Self::paper().digest()
    }

    /// Builds the lattice this scenario provides for a program of
    /// `num_qubits` qubits. `kind_override` substitutes the lattice
    /// family while keeping the spec's dimensions, spacing, and radius
    /// factor — the superconducting-comparison technique uses it to
    /// request a square grid on otherwise identical hardware.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is non-positive, or if `num_qubits == 0`
    /// with auto-sizing in force.
    pub fn build_lattice(&self, num_qubits: usize, kind_override: Option<LatticeKind>) -> Lattice {
        let kind = kind_override.unwrap_or(self.lattice.kind);
        let radius = self.lattice.radius_for(kind);
        if self.lattice.rows > 0 && self.lattice.cols > 0 {
            Lattice::with_geometry(
                kind,
                self.lattice.rows,
                self.lattice.cols,
                self.lattice.spacing,
                radius,
            )
        } else {
            Lattice::sized_for(kind, num_qubits, self.lattice.spacing, radius)
        }
    }

    /// The blocking-round parallelism cap as an `Option` (`0` means
    /// unlimited).
    pub fn parallel_block_limit(&self) -> Option<usize> {
        match self.max_parallel_blocks {
            0 => None,
            n => Some(n),
        }
    }

    /// Parses a scenario from JSON text.
    pub fn from_json(body: &str) -> Result<Self, HardwareSpecError> {
        let spec: HardwareSpec = serde_json::from_str(body)
            .map_err(|e| HardwareSpecError(format!("invalid hardware spec JSON: {e}")))?;
        spec.validate()?;
        Ok(spec)
    }

    /// Loads a scenario from a JSON file (the `--hardware spec.json`
    /// path on the bench binaries).
    pub fn load(path: &Path) -> Result<Self, HardwareSpecError> {
        let body = fs::read_to_string(path).map_err(|e| {
            HardwareSpecError(format!("cannot read hardware spec {}: {e}", path.display()))
        })?;
        Self::from_json(&body)
            .map_err(|e| HardwareSpecError(format!("{}: {}", path.display(), e.0)))
    }

    /// Serializes the scenario as pretty JSON (the committed example
    /// scenario files use this form).
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("hardware specs serialize")
    }

    /// Rejects physically meaningless scenarios with a message naming
    /// the offending field.
    pub fn validate(&self) -> Result<(), HardwareSpecError> {
        let l = &self.lattice;
        if !(l.spacing.is_finite() && l.spacing > 0.0) {
            return Err(HardwareSpecError(format!(
                "lattice.spacing must be positive and finite, got {:?}",
                l.spacing
            )));
        }
        if !(l.radius_factor.is_finite() && l.radius_factor > 0.0) {
            return Err(HardwareSpecError(format!(
                "lattice.radius_factor must be positive and finite, got {:?}",
                l.radius_factor
            )));
        }
        if (l.rows == 0) != (l.cols == 0) {
            return Err(HardwareSpecError(
                "lattice.rows and lattice.cols must both be fixed or both be 0 (auto)".to_string(),
            ));
        }
        for (field, rate) in [
            ("noise.bit_flip", self.noise.bit_flip),
            ("noise.phase_flip", self.noise.phase_flip),
            ("atom_loss", self.atom_loss),
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(HardwareSpecError(format!(
                    "{field} must be a probability in [0, 1], got {rate:?}"
                )));
            }
        }
        Ok(())
    }
}

impl Default for HardwareSpec {
    fn default() -> Self {
        Self::paper()
    }
}

// Equal specs render equal canonical strings, so hashing the digest
// is consistent with the derived `PartialEq`.
impl Hash for HardwareSpec {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.digest());
    }
}

/// A malformed or physically meaningless hardware scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HardwareSpecError(pub String);

impl fmt::Display for HardwareSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for HardwareSpecError {}

/// FNV-1a over a canonical text rendering — the workspace's standard
/// content-fingerprint construction (checkpoints and cache keys use
/// the same recipe).
fn fnv1a(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_historical_constants() {
        let spec = HardwareSpec::paper();
        assert_eq!(spec.lattice.kind, LatticeKind::Triangular);
        assert_eq!(spec.lattice.spacing, Lattice::SPACING);
        assert_eq!(spec.lattice.radius_factor, 1.01);
        assert_eq!(spec.parallel_block_limit(), None);
        assert_eq!(spec.noise, NoiseModel::default());
        assert_eq!(spec.atom_loss, 0.0);
        assert!(spec.is_paper());
    }

    #[test]
    fn paper_lattices_are_bit_identical_to_legacy_constructors() {
        let spec = HardwareSpec::paper();
        for n in 1..30 {
            assert_eq!(spec.build_lattice(n, None), Lattice::triangular_for(n));
            assert_eq!(
                spec.build_lattice(n, Some(LatticeKind::Square)),
                Lattice::square_for(n)
            );
        }
        let diag = HardwareSpec::square_diagonal();
        let lat = diag.build_lattice(9, None);
        assert_eq!(lat, Lattice::square_diagonal(3, 3));
    }

    #[test]
    fn digest_is_stable_and_label_independent() {
        let spec = HardwareSpec::paper();
        assert_eq!(spec.digest(), spec.clone().digest());
        assert_eq!(spec.digest(), spec.clone().named("renamed").digest());
        // Pin the value: any change here invalidates every cache and
        // checkpoint in the wild, so it must be deliberate.
        assert_eq!(spec.digest(), 0x7925_376e_27ff_4848);
    }

    #[test]
    fn digest_separates_every_behavioral_field() {
        let base = HardwareSpec::paper();
        let variants = [
            HardwareSpec {
                lattice: LatticeSpec {
                    kind: LatticeKind::Square,
                    ..base.lattice.clone()
                },
                ..base.clone()
            },
            HardwareSpec {
                lattice: LatticeSpec {
                    rows: 4,
                    cols: 4,
                    ..base.lattice.clone()
                },
                ..base.clone()
            },
            HardwareSpec {
                lattice: LatticeSpec {
                    spacing: 2.0,
                    ..base.lattice.clone()
                },
                ..base.clone()
            },
            HardwareSpec {
                lattice: LatticeSpec {
                    radius_factor: 1.5,
                    ..base.lattice.clone()
                },
                ..base.clone()
            },
            HardwareSpec {
                max_parallel_blocks: 2,
                ..base.clone()
            },
            HardwareSpec {
                noise: NoiseModel::symmetric(0.01),
                ..base.clone()
            },
            HardwareSpec {
                noise: NoiseModel::default().with_per_operation_granularity(),
                ..base.clone()
            },
            HardwareSpec {
                atom_loss: 0.01,
                ..base.clone()
            },
        ];
        let mut digests = vec![base.digest()];
        for v in &variants {
            let d = v.digest();
            assert!(!digests.contains(&d), "digest collision for {v:?}");
            digests.push(d);
        }
    }

    #[test]
    fn json_roundtrip_preserves_digest() {
        for spec in [
            HardwareSpec::paper(),
            HardwareSpec::square_diagonal(),
            HardwareSpec::near_term(),
        ] {
            let back = HardwareSpec::from_json(&spec.to_json_pretty()).unwrap();
            assert_eq!(back, spec);
            assert_eq!(back.digest(), spec.digest());
        }
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut bad = HardwareSpec::paper();
        bad.lattice.spacing = -1.0;
        assert!(bad.validate().is_err());
        let mut bad = HardwareSpec::paper();
        bad.lattice.rows = 3; // cols still 0
        assert!(bad.validate().is_err());
        let mut bad = HardwareSpec::paper();
        bad.atom_loss = 1.5;
        assert!(bad.validate().is_err());
        assert!(HardwareSpec::from_json("{").is_err());
    }

    #[test]
    fn fixed_dimensions_override_auto_sizing() {
        let mut spec = HardwareSpec::paper();
        spec.lattice.rows = 5;
        spec.lattice.cols = 2;
        let lat = spec.build_lattice(3, None);
        assert_eq!((lat.rows(), lat.cols()), (5, 2));
    }

    #[test]
    fn near_term_caps_parallel_blocks() {
        assert_eq!(HardwareSpec::near_term().parallel_block_limit(), Some(4));
    }
}
