//! End-to-end pipeline benches: full compile time per technique on
//! representative workloads, plus the noisy-simulation engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geyser::{compile, PipelineConfig, Technique};
use geyser_sim::{sample_noisy_distribution, NoiseModel};
use geyser_workloads::{adder, qaoa};

fn bench_compile_techniques(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    group.sample_size(10);
    let program = adder(4);
    let cfg = PipelineConfig::fast();
    for t in [Technique::Baseline, Technique::OptiMap, Technique::Geyser] {
        group.bench_with_input(BenchmarkId::new("adder-4", t.label()), &t, |b, &t| {
            b.iter(|| compile(&program, t, &cfg))
        });
    }
    group.finish();
}

fn bench_noisy_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("noisy_simulation");
    group.sample_size(10);
    let program = qaoa(5, 2, 1);
    let compiled = compile(&program, Technique::OptiMap, &PipelineConfig::fast());
    let noise = NoiseModel::symmetric(0.001);
    for trajectories in [10usize, 50] {
        group.bench_with_input(
            BenchmarkId::new("qaoa-5", trajectories),
            &trajectories,
            |b, &n| b.iter(|| sample_noisy_distribution(compiled.mapped().circuit(), &noise, n, 7)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_compile_techniques, bench_noisy_simulation);
criterion_main!(benches);
