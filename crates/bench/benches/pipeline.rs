//! End-to-end pipeline benches: full compile time per technique on
//! representative workloads, plus the noisy-simulation engine.

use geyser::{compile, PipelineConfig, Technique};
use geyser_bench::timing::bench_sampled;
use geyser_sim::{sample_noisy_distribution, NoiseModel};
use geyser_workloads::{adder, qaoa};

fn bench_compile_techniques() {
    let program = adder(4);
    let cfg = PipelineConfig::fast();
    for t in [Technique::Baseline, Technique::OptiMap, Technique::Geyser] {
        bench_sampled("compile", &format!("adder-4/{}", t.label()), 10, || {
            compile(&program, t, &cfg)
        });
    }
}

fn bench_noisy_simulation() {
    let program = qaoa(5, 2, 1);
    let compiled = compile(&program, Technique::OptiMap, &PipelineConfig::fast());
    let noise = NoiseModel::symmetric(0.001);
    for trajectories in [10usize, 50] {
        bench_sampled(
            "noisy_simulation",
            &format!("qaoa-5/{trajectories}"),
            10,
            || sample_noisy_distribution(compiled.mapped().circuit(), &noise, trajectories, 7),
        );
    }
}

fn main() {
    bench_compile_techniques();
    bench_noisy_simulation();
}
