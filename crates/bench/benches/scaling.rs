//! Scalability benches (paper Sec. 6): blocking scales ~O(c²) and
//! composition ~O(c) in the number of circuit operations. Criterion
//! measures wall-clock of each stage over a QFT size sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geyser_blocking::{block_circuit, BlockingConfig};
use geyser_compose::{compose_blocked_circuit, CompositionConfig};
use geyser_map::{map_circuit, MappingOptions};
use geyser_topology::Lattice;
use geyser_workloads::qft_with_input;

fn bench_blocking_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("blocking_scaling");
    for n in [4usize, 6, 8, 10] {
        let program = qft_with_input(n, (1 << n) - 1);
        let lattice = Lattice::triangular_for(n);
        let mapped = map_circuit(&program, &lattice, &MappingOptions::optimized());
        group.bench_with_input(
            BenchmarkId::new("qft", format!("{n}q/{}ops", mapped.circuit().len())),
            &n,
            |b, _| b.iter(|| block_circuit(mapped.circuit(), &lattice, &BlockingConfig::default())),
        );
    }
    group.finish();
}

fn bench_composition_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("composition_scaling");
    group.sample_size(10);
    for n in [4usize, 6, 8] {
        let program = qft_with_input(n, (1 << n) - 1);
        let lattice = Lattice::triangular_for(n);
        let mapped = map_circuit(&program, &lattice, &MappingOptions::optimized());
        let blocked = block_circuit(mapped.circuit(), &lattice, &BlockingConfig::default());
        // The smoke-budget composition isolates the per-block scaling
        // from the (configurable) annealing depth.
        let cfg = CompositionConfig::fast();
        group.bench_with_input(
            BenchmarkId::new("qft", format!("{n}q/{}blocks", blocked.num_blocks())),
            &n,
            |b, _| b.iter(|| compose_blocked_circuit(&blocked, &cfg)),
        );
    }
    group.finish();
}

fn bench_mapping_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping_scaling");
    for n in [4usize, 8, 12, 16] {
        let program = qft_with_input(n, (1 << (n - 1)) as u64);
        let lattice = Lattice::triangular_for(n);
        group.bench_with_input(BenchmarkId::new("qft", format!("{n}q")), &n, |b, _| {
            b.iter(|| map_circuit(&program, &lattice, &MappingOptions::optimized()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_mapping_scaling,
    bench_blocking_scaling,
    bench_composition_scaling
);
criterion_main!(benches);
