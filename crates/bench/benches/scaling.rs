//! Scalability benches (paper Sec. 6): blocking scales ~O(c²) and
//! composition ~O(c) in the number of circuit operations. Wall-clock
//! of each stage is measured over a QFT size sweep.

use geyser_bench::timing::bench_sampled;
use geyser_blocking::{block_circuit, BlockingConfig};
use geyser_compose::{compose_blocked_circuit, CompositionConfig};
use geyser_map::{map_circuit, MappingOptions};
use geyser_topology::Lattice;
use geyser_workloads::qft_with_input;

fn bench_mapping_scaling() {
    for n in [4usize, 8, 12, 16] {
        let program = qft_with_input(n, (1 << (n - 1)) as u64);
        let lattice = Lattice::triangular_for(n);
        bench_sampled("mapping_scaling", &format!("qft/{n}q"), 20, || {
            map_circuit(&program, &lattice, &MappingOptions::optimized())
        });
    }
}

fn bench_blocking_scaling() {
    for n in [4usize, 6, 8, 10] {
        let program = qft_with_input(n, (1 << n) - 1);
        let lattice = Lattice::triangular_for(n);
        let mapped = map_circuit(&program, &lattice, &MappingOptions::optimized());
        let label = format!("qft/{n}q/{}ops", mapped.circuit().len());
        bench_sampled("blocking_scaling", &label, 20, || {
            block_circuit(mapped.circuit(), &lattice, &BlockingConfig::default())
        });
    }
}

fn bench_composition_scaling() {
    for n in [4usize, 6, 8] {
        let program = qft_with_input(n, (1 << n) - 1);
        let lattice = Lattice::triangular_for(n);
        let mapped = map_circuit(&program, &lattice, &MappingOptions::optimized());
        let blocked = block_circuit(mapped.circuit(), &lattice, &BlockingConfig::default());
        // The smoke-budget composition isolates the per-block scaling
        // from the (configurable) annealing depth.
        let cfg = CompositionConfig::fast();
        let label = format!("qft/{n}q/{}blocks", blocked.num_blocks());
        bench_sampled("composition_scaling", &label, 10, || {
            compose_blocked_circuit(&blocked, &cfg)
        });
    }
}

fn main() {
    bench_mapping_scaling();
    bench_blocking_scaling();
    bench_composition_scaling();
}
