//! The unified exit-code contract, exercised through the real
//! binaries: usage errors are 2 everywhere, clean runs are 0, and the
//! `repair` scanner degrades exactly as documented. (The expensive
//! chaos paths — invariant violations exiting 5, kill/resume exiting
//! 3 — are covered by the CI chaos step; these tests stay fast.)

use std::path::PathBuf;
use std::process::Command;

use geyser_bench::exit_codes;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("geyser-cli-exit-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn chaos_rejects_unknown_flags_with_usage() {
    let status = Command::new(env!("CARGO_BIN_EXE_chaos"))
        .arg("--definitely-not-a-flag")
        .output()
        .unwrap();
    assert_eq!(status.status.code(), Some(exit_codes::USAGE));
}

#[test]
fn chaos_rejects_malformed_inject_specs_with_usage() {
    let status = Command::new(env!("CARGO_BIN_EXE_chaos"))
        .args(["--inject", "no-such-fault:whatever"])
        .output()
        .unwrap();
    assert_eq!(status.status.code(), Some(exit_codes::USAGE));
}

#[test]
fn chaos_with_zero_campaigns_exits_clean() {
    let out = Command::new(env!("CARGO_BIN_EXE_chaos"))
        .args(["--fast", "--campaigns", "0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("0 campaign(s)"),
        "summary line expected, got: {stdout}"
    );
}

#[test]
fn repair_rejects_unknown_flags_and_missing_stores_with_usage() {
    let status = Command::new(env!("CARGO_BIN_EXE_repair"))
        .arg("--bogus")
        .output()
        .unwrap();
    assert_eq!(status.status.code(), Some(exit_codes::USAGE));

    let status = Command::new(env!("CARGO_BIN_EXE_repair"))
        .args(["--store", "/definitely/not/a/store"])
        .output()
        .unwrap();
    assert_eq!(status.status.code(), Some(exit_codes::USAGE));
}

#[test]
fn repair_scans_quarantines_and_prunes() {
    let dir = tempdir("repair");
    // A committed record, then torn in half: repair must quarantine
    // it (exit 0 — the store is healthy again) and report the action.
    let victim = dir.join("entry.json");
    geyser::store::write_record_atomic(&victim, "{\"k\":1}").unwrap();
    let body = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &body[..body.len() / 2]).unwrap();
    std::fs::write(dir.join("stray.json.tmp"), "half-written").unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_repair"))
        .args(["--store", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("path=") && stderr.contains("digest="),
        "structured corruption warning expected, got: {stderr}"
    );
    assert!(!victim.exists(), "corrupt record must be moved aside");
    let sidecars = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().contains(".corrupt-"))
        .count();
    assert_eq!(sidecars, 1);

    // Second pass with --prune reclaims the sidecar and the stray tmp.
    let out = Command::new(env!("CARGO_BIN_EXE_repair"))
        .args(["--store", dir.to_str().unwrap(), "--prune"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let survivors = std::fs::read_dir(&dir).unwrap().count();
    assert_eq!(survivors, 0, "prune must reclaim sidecars and tmp files");
    let _ = std::fs::remove_dir_all(&dir);
}
