//! On-disk compilation cache.
//!
//! The Geyser technique's composition search is by far the most
//! expensive stage (minutes for the 16-qubit Heisenberg workload on
//! one core), and every figure binary needs the same compiled
//! circuits. This cache persists each `(workload, technique, seed,
//! budget)` compilation as JSON under `.geyser-cache/` so the full
//! figure suite compiles everything exactly once.

use std::path::PathBuf;

use geyser::store::{
    quarantine_corrupt, read_record_file_quarantining, write_record_atomic, StoreReadError,
};
use geyser::{
    compile, CompileReport, CompiledCircuit, PipelineConfig, Technique, Telemetry,
    VerificationStats,
};
use geyser_circuit::Circuit;
use geyser_compose::CompositionStats;
use geyser_map::{Layout, MappedCircuit};
use geyser_topology::{Lattice, LatticeKind};
use geyser_verify::VerifyConfig;
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize)]
struct CachedStats {
    blocks_total: usize,
    blocks_eligible: usize,
    blocks_composed: usize,
    pulses_before: u64,
    pulses_after: u64,
    blocks_fell_back: usize,
    blocks_failed: usize,
    blocks_cancelled: usize,
    blocks_resumed: usize,
    max_accepted_hsd: f64,
}

/// On-disk schema version. Bumped to 2 when entries started binding to
/// a hardware-spec digest; version-1 entries (and anything older,
/// which lacks the field entirely and fails deserialization) degrade
/// to a cache miss instead of silently replaying results compiled for
/// a different machine.
const CACHE_VERSION: u64 = 2;

#[derive(Serialize, Deserialize)]
struct CachedCompile {
    version: u64,
    /// Digest of the [`geyser::HardwareSpec`] the entry was compiled
    /// for; a mismatch at load time is a miss, never a replay.
    hardware_digest: u64,
    lattice_kind: String,
    rows: usize,
    cols: usize,
    /// Atom spacing the lattice was built with (spec geometry).
    spacing: f64,
    /// Interaction radius the lattice was built with (spec geometry).
    radius: f64,
    circuit: Circuit,
    initial_node_of: Vec<usize>,
    final_node_of: Vec<usize>,
    num_logical: usize,
    swaps: usize,
    stats: Option<CachedStats>,
    /// Equivalence-oracle verdict recorded when the entry was written
    /// (or back-filled by a later `--verify` run). The oracle is
    /// deterministic for a given seed and the seed is part of the
    /// cache key, so a stored verdict can be replayed verbatim.
    verification: Option<VerificationStats>,
}

/// Telemetry counter bumped when a cache entry parses but cannot be
/// replayed — stale schema version or a foreign hardware digest.
/// Distinct from `bench.cache_misses` (which also counts cold misses)
/// so version skew after an upgrade is visible as such.
pub const CACHE_VERSION_MISS_COUNTER: &str = "bench.cache_version_miss_total";

/// How a frame-valid cache payload classifies for the `repair`
/// scanner, which cannot see the private [`CachedCompile`] schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePayloadStatus {
    /// Parses and carries the current schema version.
    Current,
    /// Parses but was written by an older schema — a guaranteed cache
    /// miss that `repair --prune` may reclaim.
    StaleVersion,
    /// Frame verified but the payload is not a cache entry at all.
    Malformed,
}

/// Classifies a frame-valid payload against the cache entry schema.
pub fn classify_cache_payload(payload: &str) -> CachePayloadStatus {
    match serde_json::from_str::<CachedCompile>(payload) {
        Ok(entry) if entry.version == CACHE_VERSION => CachePayloadStatus::Current,
        Ok(_) => CachePayloadStatus::StaleVersion,
        Err(_) => CachePayloadStatus::Malformed,
    }
}

/// FNV-1a fingerprint of a circuit's debug form — changes whenever the
/// workload generator's output changes, invalidating stale entries.
fn fingerprint(program: &Circuit) -> u64 {
    let text = format!("{program:?}");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn cache_path(name: &str, technique: Technique, cfg_tag: &str, fp: u64) -> PathBuf {
    PathBuf::from(".geyser-cache").join(format!(
        "{name}-{}-{cfg_tag}-{fp:016x}.json",
        technique.label().to_lowercase()
    ))
}

fn rebuild_lattice(
    kind: &str,
    rows: usize,
    cols: usize,
    spacing: f64,
    radius: f64,
) -> Option<Lattice> {
    let kind = match kind {
        "triangular" => LatticeKind::Triangular,
        "square" => LatticeKind::Square,
        "square_diagonal" => LatticeKind::SquareDiagonal,
        _ => return None,
    };
    Some(Lattice::with_geometry(kind, rows, cols, spacing, radius))
}

fn lattice_kind_tag(kind: LatticeKind) -> &'static str {
    match kind {
        LatticeKind::Triangular => "triangular",
        LatticeKind::Square => "square",
        LatticeKind::SquareDiagonal => "square_diagonal",
    }
}

fn to_cached(
    compiled: &CompiledCircuit,
    verification: Option<VerificationStats>,
    cfg: &PipelineConfig,
) -> CachedCompile {
    let mapped = compiled.mapped();
    let lattice = mapped.lattice();
    CachedCompile {
        version: CACHE_VERSION,
        hardware_digest: cfg.hardware.digest(),
        lattice_kind: lattice_kind_tag(lattice.kind()).to_string(),
        rows: lattice.rows(),
        cols: lattice.cols(),
        spacing: cfg.hardware.lattice.spacing,
        radius: cfg.hardware.lattice.radius_for(lattice.kind()),
        circuit: mapped.circuit().clone(),
        initial_node_of: (0..mapped.num_logical())
            .map(|q| mapped.initial_layout().node_of(q))
            .collect(),
        final_node_of: (0..mapped.num_logical())
            .map(|q| mapped.final_layout().node_of(q))
            .collect(),
        num_logical: mapped.num_logical(),
        swaps: mapped.swaps_inserted(),
        stats: compiled.composition_stats().map(|s| CachedStats {
            blocks_total: s.blocks_total,
            blocks_eligible: s.blocks_eligible,
            blocks_composed: s.blocks_composed,
            pulses_before: s.pulses_before,
            pulses_after: s.pulses_after,
            blocks_fell_back: s.blocks_fell_back,
            blocks_failed: s.blocks_failed,
            blocks_cancelled: s.blocks_cancelled,
            blocks_resumed: s.blocks_resumed,
            max_accepted_hsd: s.max_accepted_hsd,
        }),
        verification,
    }
}

fn from_cached(
    cached: CachedCompile,
    technique: Technique,
    expected_digest: u64,
) -> Option<CompiledCircuit> {
    if cached.version != CACHE_VERSION || cached.hardware_digest != expected_digest {
        return None;
    }
    let lattice = rebuild_lattice(
        &cached.lattice_kind,
        cached.rows,
        cached.cols,
        cached.spacing,
        cached.radius,
    )?;
    if cached.circuit.num_qubits() != lattice.num_nodes() {
        return None;
    }
    let initial = Layout::from_assignment(cached.initial_node_of, lattice.num_nodes());
    let final_l = Layout::from_assignment(cached.final_node_of, lattice.num_nodes());
    let mapped = MappedCircuit::from_parts(
        cached.circuit,
        lattice,
        initial,
        final_l,
        cached.num_logical,
        cached.swaps,
    );
    // Entries written before the robustness fields existed fail to
    // deserialize upstream and degrade to a fresh compile, by design.
    let stats = cached.stats.map(|s| CompositionStats {
        blocks_total: s.blocks_total,
        blocks_eligible: s.blocks_eligible,
        blocks_composed: s.blocks_composed,
        pulses_before: s.pulses_before,
        pulses_after: s.pulses_after,
        blocks_fell_back: s.blocks_fell_back,
        blocks_failed: s.blocks_failed,
        blocks_cancelled: s.blocks_cancelled,
        blocks_resumed: s.blocks_resumed,
        max_accepted_hsd: s.max_accepted_hsd,
    });
    // A replayed circuit carries a report with the same schema as a
    // fresh compile — empty pass list (nothing ran in this process),
    // explicit `supervision`/`verification` keys serialized as `null`
    // when absent — so `--report`-style consumers see a stable JSON
    // shape whether an entry was compiled or replayed.
    let mut report = CompileReport::new(technique.label());
    if let Some(s) = &stats {
        report.blocks_fell_back = s.blocks_fell_back as u64;
        report.blocks_failed = s.blocks_failed as u64;
    }
    report.supervision = None;
    report.verification = cached.verification;
    let mut compiled = CompiledCircuit::from_parts(technique, mapped, stats);
    compiled.attach_report(report);
    Some(compiled)
}

/// Compiles through the on-disk cache: returns the cached compilation
/// when one exists for this exact `(workload, technique, config,
/// program)` tuple; otherwise compiles and stores the result.
///
/// Cache corruption or version skew degrades gracefully to a fresh
/// compile. `cfg_tag` should encode everything that affects the
/// output (seed, fast/paper budget, workload parameter overrides).
pub fn compile_cached(
    name: &str,
    program: &Circuit,
    technique: Technique,
    cfg: &PipelineConfig,
    cfg_tag: &str,
) -> CompiledCircuit {
    compile_cached_verified(name, program, technique, cfg, cfg_tag, None).0
}

/// [`compile_cached`] with an optional equivalence-oracle pass whose
/// verdict travels with the cache entry.
///
/// * Cache hit with a stored verdict — the verdict is replayed without
///   re-simulating (the oracle is deterministic for the seed encoded
///   in `cfg_tag`).
/// * Cache hit from a pre-verification run — the oracle runs now and
///   the verdict is back-filled into the entry atomically.
/// * Cache miss — compile, verify, store circuit and verdict together.
///
/// Without a `verify` config this is exactly [`compile_cached`]:
/// stored verdicts are preserved but none are computed.
pub fn compile_cached_verified(
    name: &str,
    program: &Circuit,
    technique: Technique,
    cfg: &PipelineConfig,
    cfg_tag: &str,
    verify: Option<&VerifyConfig>,
) -> (CompiledCircuit, Option<VerificationStats>) {
    compile_cached_verified_traced(
        name,
        program,
        technique,
        cfg,
        cfg_tag,
        verify,
        &Telemetry::disabled(),
    )
}

/// [`compile_cached_verified`] recording cache telemetry: hits bump
/// the `bench.cache_hits` counter, misses `bench.cache_misses`.
/// Observational only — the returned circuit is bit-identical with
/// telemetry enabled or disabled.
#[allow(clippy::too_many_arguments)]
pub fn compile_cached_verified_traced(
    name: &str,
    program: &Circuit,
    technique: Technique,
    cfg: &PipelineConfig,
    cfg_tag: &str,
    verify: Option<&VerifyConfig>,
    telemetry: &Telemetry,
) -> (CompiledCircuit, Option<VerificationStats>) {
    let fp = fingerprint(program);
    let path = cache_path(name, technique, cfg_tag, fp);
    // Frame corruption (torn write, bit rot) is quarantined to a
    // `.corrupt-<digest>` sidecar with a structured warning and a
    // `store_corrupt_total` bump inside the record reader; a framed
    // payload that then fails the schema is quarantined here. Both
    // degrade to a miss, but never silently.
    match read_record_file_quarantining(&path, "cache", telemetry) {
        Ok(payload) => match serde_json::from_str::<CachedCompile>(payload.text()) {
            Ok(cached) => {
                let stored = cached.verification.clone();
                if let Some(compiled) = from_cached(cached, technique, cfg.hardware.digest()) {
                    telemetry.counter_add("bench.cache_hits", 1);
                    let stats = match (verify, stored) {
                        (None, stored) => stored,
                        (Some(_), Some(stats)) => Some(stats),
                        (Some(vc), None) => {
                            let stats = geyser::verify_compiled(program, &compiled, vc);
                            store(&path, &compiled, Some(stats.clone()), cfg);
                            Some(stats)
                        }
                    };
                    return (compiled, stats);
                }
                // Parsed, but unusable in this process: schema version
                // or hardware-digest skew. Counted apart from cold
                // misses so operators can tell "cache was empty" from
                // "cache was full of entries a version bump orphaned"
                // — the latter is reclaimable with `repair --prune`.
                telemetry.counter_add(CACHE_VERSION_MISS_COUNTER, 1);
            }
            Err(_) => {
                let bytes = std::fs::read(&path).unwrap_or_default();
                quarantine_corrupt(
                    &path,
                    &bytes,
                    "cache entry JSON does not parse",
                    "cache",
                    telemetry,
                );
            }
        },
        Err(StoreReadError::Io(_)) | Err(StoreReadError::Corrupt(_)) => {}
    }
    telemetry.counter_add("bench.cache_misses", 1);
    let compiled = compile(program, technique, cfg);
    let stats = verify.map(|vc| geyser::verify_compiled(program, &compiled, vc));
    store(&path, &compiled, stats.clone(), cfg);
    (compiled, stats)
}

fn store(
    path: &std::path::Path,
    compiled: &CompiledCircuit,
    verification: Option<VerificationStats>,
    cfg: &PipelineConfig,
) {
    let _ = std::fs::create_dir_all(".geyser-cache");
    if let Ok(body) = serde_json::to_string(&to_cached(compiled, verification, cfg)) {
        write_atomic(path, &body);
    }
}

/// Crash-safe cache write: the body is framed with a length prefix and
/// FNV checksum (see [`geyser::store`]), lands in a `.tmp` sibling
/// first, and is renamed into place — a kill mid-write leaves either
/// the old entry or no entry, and a torn file fails the frame check on
/// load instead of poisoning later runs.
fn write_atomic(path: &std::path::Path, body: &str) {
    let _ = write_record_atomic(path, body);
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests that relocate the process cwd (the cache root is relative)
    // must not interleave.
    static CWD_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn sample_program() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).t(2);
        c
    }

    #[test]
    fn roundtrip_preserves_metrics() {
        let program = sample_program();
        let cfg = PipelineConfig::fast();
        for technique in [
            Technique::Baseline,
            Technique::Geyser,
            Technique::Superconducting,
        ] {
            let direct = compile(&program, technique, &cfg);
            let cached = to_cached(&direct, None, &cfg);
            let body = serde_json::to_string(&cached).unwrap();
            let back: CachedCompile = serde_json::from_str(&body).unwrap();
            let rebuilt =
                from_cached(back, technique, cfg.hardware.digest()).expect("rebuild succeeds");
            assert_eq!(rebuilt.total_pulses(), direct.total_pulses());
            assert_eq!(rebuilt.depth_pulses(), direct.depth_pulses());
            assert_eq!(rebuilt.gate_counts(), direct.gate_counts());
            assert_eq!(
                rebuilt.composition_stats().is_some(),
                direct.composition_stats().is_some()
            );
        }
    }

    #[test]
    fn entry_for_a_different_hardware_spec_is_a_miss() {
        let program = sample_program();
        let cfg = PipelineConfig::fast();
        let direct = compile(&program, Technique::Baseline, &cfg);
        let cached = to_cached(&direct, None, &cfg);
        let other = geyser::HardwareSpec::near_term();
        assert!(
            from_cached(cached, Technique::Baseline, other.digest()).is_none(),
            "a digest mismatch must never replay a foreign compilation"
        );
    }

    #[test]
    fn stale_version_entry_is_a_miss() {
        let program = sample_program();
        let cfg = PipelineConfig::fast();
        let direct = compile(&program, Technique::Baseline, &cfg);
        let mut cached = to_cached(&direct, None, &cfg);
        cached.version = CACHE_VERSION - 1;
        assert!(from_cached(cached, Technique::Baseline, cfg.hardware.digest()).is_none());
    }

    #[test]
    fn pre_versioning_entry_fails_to_deserialize() {
        // Entries written before the schema carried `version` /
        // `hardware_digest` / geometry fields look like this. They
        // must fail to parse (→ cache miss upstream), never replay.
        #[derive(Serialize)]
        struct LegacyCachedCompile {
            lattice_kind: String,
            rows: usize,
            cols: usize,
            circuit: Circuit,
            initial_node_of: Vec<usize>,
            final_node_of: Vec<usize>,
            num_logical: usize,
            swaps: usize,
            stats: Option<CachedStats>,
            verification: Option<VerificationStats>,
        }
        let legacy = LegacyCachedCompile {
            lattice_kind: "triangular".into(),
            rows: 2,
            cols: 2,
            circuit: sample_program(),
            initial_node_of: vec![0, 1, 2],
            final_node_of: vec![0, 1, 2],
            num_logical: 3,
            swaps: 0,
            stats: None,
            verification: None,
        };
        let body = serde_json::to_string(&legacy).unwrap();
        assert!(
            serde_json::from_str::<CachedCompile>(&body).is_err(),
            "legacy entries lacking the hardware digest must be invalidated"
        );
    }

    #[test]
    fn fingerprint_distinguishes_programs() {
        let a = sample_program();
        let mut b = sample_program();
        b.h(2);
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_eq!(fingerprint(&a), fingerprint(&sample_program()));
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_tmp_behind() {
        let dir = std::env::temp_dir().join(format!("geyser-cache-atomic-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("entry.json");
        std::fs::write(&path, "old").unwrap();
        write_atomic(&path, "new");
        let decoded = geyser::store::read_record_file(&path).unwrap();
        assert!(decoded.is_framed(), "cache entries are framed records");
        assert_eq!(decoded.text(), "new");
        assert!(
            !path.with_extension("json.tmp").exists(),
            "temp file must be renamed away"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_cache_entry_is_quarantined_and_recompiled() {
        let _cwd = CWD_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("geyser-cache-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::create_dir_all(&dir);
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();

        let program = sample_program();
        let cfg = PipelineConfig::fast();
        let telemetry = Telemetry::enabled();
        let (first, _) = compile_cached_verified_traced(
            "t",
            &program,
            Technique::OptiMap,
            &cfg,
            "torn",
            None,
            &telemetry,
        );
        let path = cache_path("t", Technique::OptiMap, "torn", fingerprint(&program));
        // Tear the committed entry the way a mid-write kill would.
        let body = std::fs::read(&path).unwrap();
        std::fs::write(&path, &body[..body.len() / 2]).unwrap();

        let (second, _) = compile_cached_verified_traced(
            "t",
            &program,
            Technique::OptiMap,
            &cfg,
            "torn",
            None,
            &telemetry,
        );
        assert_eq!(first.total_pulses(), second.total_pulses());
        assert_eq!(
            telemetry.counter_value(geyser::store::STORE_CORRUPT_COUNTER),
            Some(1),
            "corruption must be observable, not a silent miss"
        );
        assert_eq!(telemetry.counter_value("bench.cache_misses"), Some(2));
        let sidecars: Vec<_> = std::fs::read_dir(".geyser-cache")
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| geyser::store::is_corrupt_sidecar(&e.path()))
            .collect();
        assert_eq!(sidecars.len(), 1, "torn entry must be quarantined aside");
        // The recompile rewrote a healthy framed entry in place.
        assert!(geyser::store::read_record_file(&path).is_ok());

        std::env::set_current_dir(old).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verification_verdict_travels_with_the_cache_entry() {
        let _cwd = CWD_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("geyser-cache-verify-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::create_dir_all(&dir);
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();

        let program = sample_program();
        let cfg = PipelineConfig::fast();
        let vc = VerifyConfig::default().with_seed(3);

        // Write an unverified entry first (pre-`--verify` run), then
        // hit it with verification on: the verdict must be computed
        // once and back-filled.
        let (_, none) = compile_cached_verified(
            "t",
            &program,
            Technique::Baseline,
            &cfg,
            "s3-fast-st-d",
            None,
        );
        assert!(none.is_none());
        let (_, first) = compile_cached_verified(
            "t",
            &program,
            Technique::Baseline,
            &cfg,
            "s3-fast-st-d",
            Some(&vc),
        );
        let first = first.expect("verdict computed on back-fill");
        assert!(first.equivalent);

        // Second verified hit replays the stored verdict bit for bit
        // (same seconds field proves it was not re-measured).
        let (_, second) = compile_cached_verified(
            "t",
            &program,
            Technique::Baseline,
            &cfg,
            "s3-fast-st-d",
            Some(&vc),
        );
        assert_eq!(second.as_ref(), Some(&first));

        std::env::set_current_dir(old).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_hits_are_counted_and_replay_a_stable_report_shape() {
        let _cwd = CWD_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("geyser-cache-hits-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::create_dir_all(&dir);
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();

        let program = sample_program();
        let cfg = PipelineConfig::fast();
        let telemetry = Telemetry::enabled();
        let (first, _) = compile_cached_verified_traced(
            "t",
            &program,
            Technique::OptiMap,
            &cfg,
            "hits",
            None,
            &telemetry,
        );
        assert_eq!(telemetry.counter_value("bench.cache_misses"), Some(1));
        assert_eq!(telemetry.counter_value("bench.cache_hits"), None);
        assert!(first.report().is_some(), "fresh compiles carry a report");

        let (second, _) = compile_cached_verified_traced(
            "t",
            &program,
            Technique::OptiMap,
            &cfg,
            "hits",
            None,
            &telemetry,
        );
        assert_eq!(telemetry.counter_value("bench.cache_hits"), Some(1));
        let report = second.report().expect("replays carry a report too");
        assert!(report.passes.is_empty(), "no pass ran in this process");
        assert!(report.supervision.is_none());
        // Stable schema: the telemetry-era keys serialize as explicit
        // nulls on a replay instead of vanishing.
        let json = report.to_json();
        assert!(json.contains("\"supervision\": null"));
        assert!(json.contains("\"verification\": null"));

        std::env::set_current_dir(old).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_skew_is_counted_apart_from_cold_misses() {
        let _cwd = CWD_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("geyser-cache-skew-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::create_dir_all(&dir);
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();

        let program = sample_program();
        let cfg = PipelineConfig::fast();
        let telemetry = Telemetry::enabled();
        let (first, _) = compile_cached_verified_traced(
            "t",
            &program,
            Technique::OptiMap,
            &cfg,
            "skew",
            None,
            &telemetry,
        );
        // Cold miss: nothing on disk yet, and no version miss.
        assert_eq!(telemetry.counter_value("bench.cache_misses"), Some(1));
        assert_eq!(telemetry.counter_value(CACHE_VERSION_MISS_COUNTER), None);

        // Rewrite the committed entry as if an older binary had
        // written it: same well-formed payload, previous schema
        // version.
        let path = cache_path("t", Technique::OptiMap, "skew", fingerprint(&program));
        let payload = geyser::store::read_record_file(&path).unwrap();
        let mut entry: CachedCompile = serde_json::from_str(payload.text()).unwrap();
        entry.version = CACHE_VERSION - 1;
        write_atomic(&path, &serde_json::to_string(&entry).unwrap());

        let (second, _) = compile_cached_verified_traced(
            "t",
            &program,
            Technique::OptiMap,
            &cfg,
            "skew",
            None,
            &telemetry,
        );
        assert_eq!(first.total_pulses(), second.total_pulses());
        assert_eq!(
            telemetry.counter_value(CACHE_VERSION_MISS_COUNTER),
            Some(1),
            "a parsed-but-stale entry must be visible as version skew"
        );
        assert_eq!(
            telemetry.counter_value("bench.cache_misses"),
            Some(2),
            "version skew still degrades to a miss"
        );

        // The recompile rewrote a current-version entry: clean hit,
        // no further version misses.
        let (_, _) = compile_cached_verified_traced(
            "t",
            &program,
            Technique::OptiMap,
            &cfg,
            "skew",
            None,
            &telemetry,
        );
        assert_eq!(telemetry.counter_value("bench.cache_hits"), Some(1));
        assert_eq!(telemetry.counter_value(CACHE_VERSION_MISS_COUNTER), Some(1));

        std::env::set_current_dir(old).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_files_round_trip_through_disk() {
        let _cwd = CWD_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("geyser-cache-test-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();

        let program = sample_program();
        let cfg = PipelineConfig::fast();
        let first = compile_cached("t", &program, Technique::OptiMap, &cfg, "test");
        let second = compile_cached("t", &program, Technique::OptiMap, &cfg, "test");
        assert_eq!(first.total_pulses(), second.total_pulses());
        assert!(dir.join(".geyser-cache").exists());

        std::env::set_current_dir(old).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
