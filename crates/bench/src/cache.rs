//! Multi-process shared compilation cache.
//!
//! The Geyser technique's composition search is by far the most
//! expensive stage (minutes for the 16-qubit Heisenberg workload on
//! one core), and every figure binary needs the same compiled
//! circuits. This cache persists each `(workload, technique, seed,
//! budget)` compilation as JSON under `.geyser-cache/` so the full
//! figure suite compiles everything exactly once.
//!
//! The store is safe to share between concurrent processes (`serve`
//! and `bench` runs pointed at the same directory):
//!
//! * Entries are **content-addressed**: each lives in its own file at
//!   `objects/<hh>/<digest:016x>.json`, written via a pid-unique temp
//!   file and an atomic rename. Two processes racing to publish the
//!   same key both rename byte-identical content — last rename wins,
//!   no torn state.
//! * A framed **generation header** at the store root records how many
//!   compactions have committed. Compaction bumps it with the same
//!   temp+rename protocol, so a crash mid-compaction leaves either the
//!   old or the new generation on disk, never a mix.
//! * Compaction itself is serialized by an advisory **lock file**
//!   created with `O_EXCL` semantics; a holder that died is detected
//!   by the age stamped inside the lock and taken over.

use std::path::{Path, PathBuf};

use geyser::store::{
    clean_stale_tmp, encode_record, is_corrupt_sidecar, quarantine_corrupt, read_record_file,
    read_record_file_quarantining, StoreReadError,
};
use geyser::{
    compile, CompileReport, CompiledCircuit, PipelineConfig, Technique, Telemetry,
    VerificationStats,
};
use geyser_circuit::Circuit;
use geyser_compose::CompositionStats;
use geyser_map::{Layout, MappedCircuit};
use geyser_topology::{Lattice, LatticeKind};
use geyser_verify::{CacheGenerationObservation, VerifyConfig};
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize)]
struct CachedStats {
    blocks_total: usize,
    blocks_eligible: usize,
    blocks_composed: usize,
    pulses_before: u64,
    pulses_after: u64,
    blocks_fell_back: usize,
    blocks_failed: usize,
    blocks_cancelled: usize,
    blocks_resumed: usize,
    max_accepted_hsd: f64,
}

/// On-disk schema version. Bumped to 2 when entries started binding to
/// a hardware-spec digest, and to 3 when the store became shared
/// (content-addressed layout, entries stamped with the generation they
/// were written under). Older entries degrade to a cache miss instead
/// of silently replaying results compiled for a different machine or
/// schema.
const CACHE_VERSION: u64 = 3;

/// Schema version of the generation header record.
const GENERATION_VERSION: u64 = 1;

/// Default cache root, relative to the working directory (matching the
/// composition checkpoints that live beside it).
pub const CACHE_ROOT: &str = ".geyser-cache";

/// Subdirectory holding content-addressed entries, sharded by the top
/// byte of the key digest.
pub const CACHE_OBJECTS_DIR: &str = "objects";

/// File name of the framed generation header at the store root.
pub const CACHE_GENERATION_FILE: &str = "generation";

/// File name of the advisory compaction lock at the store root.
pub const CACHE_COMPACTION_LOCK: &str = "compaction.lock";

/// Age (against the timestamp stamped inside the lock) after which a
/// compaction lock is presumed orphaned by a dead process and taken
/// over.
pub const CACHE_LOCK_STALE_MS: u64 = 60_000;

#[derive(Serialize, Deserialize)]
struct GenerationHeader {
    version: u64,
    generation: u64,
}

#[derive(Serialize, Deserialize)]
struct CachedCompile {
    version: u64,
    /// Digest of the [`geyser::HardwareSpec`] the entry was compiled
    /// for; a mismatch at load time is a miss, never a replay.
    hardware_digest: u64,
    /// Store generation current when the entry was published. An entry
    /// claiming a generation the header never committed is the
    /// signature of a lost rename — flagged by [`scan_generation`],
    /// ignored by the loader (the entry itself is still replayable).
    generation: u64,
    lattice_kind: String,
    rows: usize,
    cols: usize,
    /// Atom spacing the lattice was built with (spec geometry).
    spacing: f64,
    /// Interaction radius the lattice was built with (spec geometry).
    radius: f64,
    circuit: Circuit,
    initial_node_of: Vec<usize>,
    final_node_of: Vec<usize>,
    num_logical: usize,
    swaps: usize,
    stats: Option<CachedStats>,
    /// Equivalence-oracle verdict recorded when the entry was written
    /// (or back-filled by a later `--verify` run). The oracle is
    /// deterministic for a given seed and the seed is part of the
    /// cache key, so a stored verdict can be replayed verbatim.
    verification: Option<VerificationStats>,
}

/// Telemetry counter bumped when a cache entry parses but cannot be
/// replayed — stale schema version or a foreign hardware digest.
/// Distinct from `bench.cache_misses` (which also counts cold misses)
/// so version skew after an upgrade is visible as such.
pub const CACHE_VERSION_MISS_COUNTER: &str = "bench.cache_version_miss_total";

/// How a frame-valid cache payload classifies for the `repair`
/// scanner, which cannot see the private [`CachedCompile`] schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePayloadStatus {
    /// Parses and carries the current schema version.
    Current,
    /// Parses but was written by an older schema — a guaranteed cache
    /// miss that `repair --prune` may reclaim.
    StaleVersion,
    /// Frame verified but the payload is not a cache entry at all.
    Malformed,
}

/// Classifies a frame-valid payload against the cache entry schema.
pub fn classify_cache_payload(payload: &str) -> CachePayloadStatus {
    match serde_json::from_str::<CachedCompile>(payload) {
        Ok(entry) if entry.version == CACHE_VERSION => CachePayloadStatus::Current,
        Ok(_) => CachePayloadStatus::StaleVersion,
        Err(_) => CachePayloadStatus::Malformed,
    }
}

/// FNV-1a fingerprint of a circuit's debug form — changes whenever the
/// workload generator's output changes, invalidating stale entries.
fn fingerprint(program: &Circuit) -> u64 {
    geyser::store::fnv1a_bytes(format!("{program:?}").as_bytes())
}

/// Digest addressing one `(workload, technique, config, program)`
/// tuple inside the object store.
fn key_digest(name: &str, technique: Technique, cfg_tag: &str, fp: u64) -> u64 {
    let key = format!(
        "{name}-{}-{cfg_tag}-{fp:016x}",
        technique.label().to_lowercase()
    );
    geyser::store::fnv1a_bytes(key.as_bytes())
}

/// Crash-safe entry publish: framed body, **pid-unique** temp sibling,
/// atomic rename. The pid suffix is what makes concurrent processes
/// safe — a shared temp name would let one writer rename the other's
/// half-written bytes into place.
fn write_entry_atomic(path: &Path, body: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = path.with_extension(format!("json.{}.tmp", std::process::id()));
    std::fs::write(&tmp, encode_record(body))?;
    std::fs::rename(&tmp, path)
}

/// Outcome of one [`SharedCache::compact`] attempt.
#[derive(Debug, Clone, Copy)]
pub struct CompactionOutcome {
    /// Whether this process committed a compaction. `false` means the
    /// lock was held by a live peer (their compaction counts) or the
    /// commit was aborted by an injected crash.
    pub performed: bool,
    /// Files reclaimed: stale-version entries, quarantine sidecars,
    /// and orphaned temp files.
    pub pruned: u64,
    /// Store generation after the attempt.
    pub generation: u64,
}

/// Handle on a shared on-disk compile cache rooted at one directory.
///
/// Opening is cheap (one header read plus a stale-temp sweep) and safe
/// to repeat; every `serve`/`bench` process opens its own handle on
/// the same root.
pub struct SharedCache {
    root: PathBuf,
    generation: u64,
}

impl SharedCache {
    /// Opens (creating if needed) the shared cache at `root`: builds
    /// the object tree, sweeps temp files orphaned by crashed writers,
    /// and loads — or initializes — the generation header. A corrupt
    /// header is quarantined and re-seeded at the highest generation
    /// any live entry claims, so healing never makes existing entries
    /// read as written "in the future".
    pub fn open(root: &Path, telemetry: &Telemetry) -> std::io::Result<SharedCache> {
        let objects = root.join(CACHE_OBJECTS_DIR);
        std::fs::create_dir_all(&objects)?;
        clean_stale_tmp(root, telemetry);
        if let Ok(shards) = std::fs::read_dir(&objects) {
            for shard in shards.flatten() {
                if shard.path().is_dir() {
                    clean_stale_tmp(&shard.path(), telemetry);
                }
            }
        }
        let gen_path = root.join(CACHE_GENERATION_FILE);
        let loaded = match read_record_file(&gen_path) {
            Ok(payload) => serde_json::from_str::<GenerationHeader>(payload.text())
                .ok()
                .filter(|h| h.generation > 0)
                .map(|h| h.generation),
            Err(StoreReadError::Io(_)) => None,
            Err(StoreReadError::Corrupt(_)) => {
                let bytes = std::fs::read(&gen_path).unwrap_or_default();
                quarantine_corrupt(
                    &gen_path,
                    &bytes,
                    "cache generation header corrupt",
                    "cache",
                    telemetry,
                );
                None
            }
        };
        let generation = match loaded {
            Some(g) => g,
            None => {
                let floor = max_entry_generation(&objects).max(1);
                let header = GenerationHeader {
                    version: GENERATION_VERSION,
                    generation: floor,
                };
                if let Ok(body) = serde_json::to_string(&header) {
                    let _ = write_entry_atomic(&gen_path, &body);
                }
                floor
            }
        };
        Ok(SharedCache {
            root: root.to_path_buf(),
            generation,
        })
    }

    /// The store root this handle was opened on.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The generation loaded at open (or committed by this handle's
    /// own compactions since).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Content-addressed path of the entry for one compile key.
    pub fn entry_path_for(
        &self,
        name: &str,
        technique: Technique,
        cfg_tag: &str,
        fp: u64,
    ) -> PathBuf {
        let digest = key_digest(name, technique, cfg_tag, fp);
        self.root
            .join(CACHE_OBJECTS_DIR)
            .join(format!("{:02x}", digest >> 56))
            .join(format!("{digest:016x}.json"))
    }

    /// Compacts the store: reclaims stale-version entries, quarantine
    /// sidecars, and orphaned temp files, then commits a new
    /// generation. Serialized against concurrent compactors by the
    /// advisory lock file; when a live peer holds the lock this
    /// returns `performed: false` without touching anything.
    ///
    /// `now_ms` drives lock-staleness judgement (the store is
    /// clock-free by design; callers pass their own time base).
    pub fn compact(
        &mut self,
        now_ms: u64,
        telemetry: &Telemetry,
    ) -> std::io::Result<CompactionOutcome> {
        self.compact_inner(now_ms, telemetry, false)
    }

    /// [`Self::compact`] that aborts at the worst possible point — the
    /// new generation header is written to its temp file but never
    /// renamed, and the lock file is left behind, exactly as a
    /// `kill -9` mid-commit would. Chaos hook for the
    /// `kill-mid-compaction` fault; the next [`Self::open`] sweeps the
    /// temp and the next compaction takes over the stale lock.
    pub fn compact_crashing(
        &mut self,
        now_ms: u64,
        telemetry: &Telemetry,
    ) -> std::io::Result<CompactionOutcome> {
        self.compact_inner(now_ms, telemetry, true)
    }

    fn compact_inner(
        &mut self,
        now_ms: u64,
        telemetry: &Telemetry,
        crash_before_commit: bool,
    ) -> std::io::Result<CompactionOutcome> {
        if !self.try_lock(now_ms, telemetry)? {
            return Ok(CompactionOutcome {
                performed: false,
                pruned: 0,
                generation: self.generation,
            });
        }
        let mut pruned = 0u64;
        let objects = self.root.join(CACHE_OBJECTS_DIR);
        if let Ok(shards) = std::fs::read_dir(&objects) {
            for shard in shards.flatten() {
                let dir = shard.path();
                if !dir.is_dir() {
                    continue;
                }
                pruned += clean_stale_tmp(&dir, telemetry) as u64;
                let files = match std::fs::read_dir(&dir) {
                    Ok(files) => files,
                    Err(_) => continue,
                };
                for file in files.flatten() {
                    let path = file.path();
                    if is_corrupt_sidecar(&path) {
                        if std::fs::remove_file(&path).is_ok() {
                            pruned += 1;
                        }
                        continue;
                    }
                    if path.extension().map(|e| e != "json").unwrap_or(true) {
                        continue;
                    }
                    match read_record_file(&path) {
                        Ok(payload) if payload.is_framed() => {
                            match classify_cache_payload(payload.text()) {
                                CachePayloadStatus::Current => {}
                                CachePayloadStatus::StaleVersion => {
                                    if std::fs::remove_file(&path).is_ok() {
                                        pruned += 1;
                                    }
                                }
                                CachePayloadStatus::Malformed => {
                                    let bytes = std::fs::read(&path).unwrap_or_default();
                                    quarantine_corrupt(
                                        &path,
                                        &bytes,
                                        "cache entry JSON does not parse",
                                        "cache",
                                        telemetry,
                                    );
                                }
                            }
                        }
                        Ok(_) => {
                            let bytes = std::fs::read(&path).unwrap_or_default();
                            quarantine_corrupt(
                                &path,
                                &bytes,
                                "unframed file in cache object store",
                                "cache",
                                telemetry,
                            );
                        }
                        Err(StoreReadError::Corrupt(_)) => {
                            let bytes = std::fs::read(&path).unwrap_or_default();
                            quarantine_corrupt(
                                &path,
                                &bytes,
                                "cache entry frame corrupt",
                                "cache",
                                telemetry,
                            );
                        }
                        Err(StoreReadError::Io(_)) => {}
                    }
                }
            }
        }
        let gen_path = self.root.join(CACHE_GENERATION_FILE);
        let header = GenerationHeader {
            version: GENERATION_VERSION,
            generation: self.generation + 1,
        };
        let body = serde_json::to_string(&header)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        let tmp = gen_path.with_extension(format!("{}.tmp", std::process::id()));
        std::fs::write(&tmp, encode_record(&body))?;
        if crash_before_commit {
            return Ok(CompactionOutcome {
                performed: false,
                pruned,
                generation: self.generation,
            });
        }
        std::fs::rename(&tmp, &gen_path)?;
        self.generation += 1;
        let _ = std::fs::remove_file(self.root.join(CACHE_COMPACTION_LOCK));
        Ok(CompactionOutcome {
            performed: true,
            pruned,
            generation: self.generation,
        })
    }

    /// Acquires the advisory compaction lock, taking over a lock whose
    /// holder stopped renewing `CACHE_LOCK_STALE_MS` ago (the holder's
    /// half-written generation temp is swept as part of takeover).
    /// Advisory by construction: two takeovers racing can momentarily
    /// both believe they hold it, which at worst double-runs an
    /// idempotent sweep — the generation commit itself stays atomic.
    fn try_lock(&self, now_ms: u64, telemetry: &Telemetry) -> std::io::Result<bool> {
        use std::io::Write;
        let lock = self.root.join(CACHE_COMPACTION_LOCK);
        for _ in 0..2 {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&lock)
            {
                Ok(mut file) => {
                    let _ = write!(file, "{} {now_ms}", std::process::id());
                    return Ok(true);
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let held = std::fs::read_to_string(&lock).unwrap_or_default();
                    let held_ms = held
                        .split_whitespace()
                        .nth(1)
                        .and_then(|t| t.parse::<u64>().ok());
                    let stale = held_ms
                        .map(|t| now_ms.saturating_sub(t) >= CACHE_LOCK_STALE_MS)
                        .unwrap_or(true);
                    if !stale {
                        return Ok(false);
                    }
                    clean_stale_tmp(&self.root, telemetry);
                    let _ = std::fs::remove_file(&lock);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(false)
    }
}

/// Highest generation any parseable entry under `objects` claims —
/// the floor a healed generation header must respect.
fn max_entry_generation(objects: &Path) -> u64 {
    let mut max = 0u64;
    if let Ok(shards) = std::fs::read_dir(objects) {
        for shard in shards.flatten() {
            let dir = shard.path();
            if !dir.is_dir() {
                continue;
            }
            if let Ok(files) = std::fs::read_dir(&dir) {
                for file in files.flatten() {
                    let path = file.path();
                    if path.extension().map(|e| e != "json").unwrap_or(true) {
                        continue;
                    }
                    if let Ok(payload) = read_record_file(&path) {
                        if let Ok(entry) = serde_json::from_str::<CachedCompile>(payload.text()) {
                            max = max.max(entry.generation);
                        }
                    }
                }
            }
        }
    }
    max
}

/// Audits a shared cache root **in place** (no healing, no
/// quarantining) and reports its coherence for the
/// `cache-generation-coherent` chaos invariant. `now_ms` judges lock
/// staleness against the timestamp stamped inside the lock file.
pub fn scan_generation(root: &Path, now_ms: u64) -> CacheGenerationObservation {
    let gen_path = root.join(CACHE_GENERATION_FILE);
    let (generation_parses, generation) = match read_record_file(&gen_path) {
        Ok(payload) => match serde_json::from_str::<GenerationHeader>(payload.text()) {
            Ok(header) if header.generation > 0 => (true, header.generation),
            _ => (false, 0),
        },
        Err(_) => (false, 0),
    };
    let mut corrupt_in_place = 0u64;
    let mut entries_beyond_generation = 0u64;
    let objects = root.join(CACHE_OBJECTS_DIR);
    if let Ok(shards) = std::fs::read_dir(&objects) {
        for shard in shards.flatten() {
            let dir = shard.path();
            if !dir.is_dir() {
                continue;
            }
            if let Ok(files) = std::fs::read_dir(&dir) {
                for file in files.flatten() {
                    let path = file.path();
                    if is_corrupt_sidecar(&path)
                        || path.extension().map(|e| e != "json").unwrap_or(true)
                    {
                        continue;
                    }
                    match read_record_file(&path) {
                        Ok(payload) if payload.is_framed() => {
                            match serde_json::from_str::<CachedCompile>(payload.text()) {
                                Ok(entry) if entry.generation > generation => {
                                    entries_beyond_generation += 1;
                                }
                                Ok(_) => {}
                                Err(_) => corrupt_in_place += 1,
                            }
                        }
                        Ok(_) | Err(StoreReadError::Corrupt(_)) => corrupt_in_place += 1,
                        Err(StoreReadError::Io(_)) => {}
                    }
                }
            }
        }
    }
    let lock_path = root.join(CACHE_COMPACTION_LOCK);
    let stale_lock = match std::fs::read_to_string(&lock_path) {
        Ok(held) => held
            .split_whitespace()
            .nth(1)
            .and_then(|t| t.parse::<u64>().ok())
            .map(|t| now_ms.saturating_sub(t) >= CACHE_LOCK_STALE_MS)
            .unwrap_or(true),
        Err(_) => false,
    };
    CacheGenerationObservation {
        generation_parses,
        generation,
        corrupt_in_place,
        entries_beyond_generation,
        stale_lock,
    }
}

fn rebuild_lattice(
    kind: &str,
    rows: usize,
    cols: usize,
    spacing: f64,
    radius: f64,
) -> Option<Lattice> {
    let kind = match kind {
        "triangular" => LatticeKind::Triangular,
        "square" => LatticeKind::Square,
        "square_diagonal" => LatticeKind::SquareDiagonal,
        _ => return None,
    };
    Some(Lattice::with_geometry(kind, rows, cols, spacing, radius))
}

fn lattice_kind_tag(kind: LatticeKind) -> &'static str {
    match kind {
        LatticeKind::Triangular => "triangular",
        LatticeKind::Square => "square",
        LatticeKind::SquareDiagonal => "square_diagonal",
    }
}

fn to_cached(
    compiled: &CompiledCircuit,
    verification: Option<VerificationStats>,
    cfg: &PipelineConfig,
    generation: u64,
) -> CachedCompile {
    let mapped = compiled.mapped();
    let lattice = mapped.lattice();
    CachedCompile {
        version: CACHE_VERSION,
        hardware_digest: cfg.hardware.digest(),
        generation,
        lattice_kind: lattice_kind_tag(lattice.kind()).to_string(),
        rows: lattice.rows(),
        cols: lattice.cols(),
        spacing: cfg.hardware.lattice.spacing,
        radius: cfg.hardware.lattice.radius_for(lattice.kind()),
        circuit: mapped.circuit().clone(),
        initial_node_of: (0..mapped.num_logical())
            .map(|q| mapped.initial_layout().node_of(q))
            .collect(),
        final_node_of: (0..mapped.num_logical())
            .map(|q| mapped.final_layout().node_of(q))
            .collect(),
        num_logical: mapped.num_logical(),
        swaps: mapped.swaps_inserted(),
        stats: compiled.composition_stats().map(|s| CachedStats {
            blocks_total: s.blocks_total,
            blocks_eligible: s.blocks_eligible,
            blocks_composed: s.blocks_composed,
            pulses_before: s.pulses_before,
            pulses_after: s.pulses_after,
            blocks_fell_back: s.blocks_fell_back,
            blocks_failed: s.blocks_failed,
            blocks_cancelled: s.blocks_cancelled,
            blocks_resumed: s.blocks_resumed,
            max_accepted_hsd: s.max_accepted_hsd,
        }),
        verification,
    }
}

fn from_cached(
    cached: CachedCompile,
    technique: Technique,
    expected_digest: u64,
) -> Option<CompiledCircuit> {
    if cached.version != CACHE_VERSION || cached.hardware_digest != expected_digest {
        return None;
    }
    let lattice = rebuild_lattice(
        &cached.lattice_kind,
        cached.rows,
        cached.cols,
        cached.spacing,
        cached.radius,
    )?;
    if cached.circuit.num_qubits() != lattice.num_nodes() {
        return None;
    }
    let initial = Layout::from_assignment(cached.initial_node_of, lattice.num_nodes());
    let final_l = Layout::from_assignment(cached.final_node_of, lattice.num_nodes());
    let mapped = MappedCircuit::from_parts(
        cached.circuit,
        lattice,
        initial,
        final_l,
        cached.num_logical,
        cached.swaps,
    );
    // Entries written before the robustness fields existed fail to
    // deserialize upstream and degrade to a fresh compile, by design.
    let stats = cached.stats.map(|s| CompositionStats {
        blocks_total: s.blocks_total,
        blocks_eligible: s.blocks_eligible,
        blocks_composed: s.blocks_composed,
        pulses_before: s.pulses_before,
        pulses_after: s.pulses_after,
        blocks_fell_back: s.blocks_fell_back,
        blocks_failed: s.blocks_failed,
        blocks_cancelled: s.blocks_cancelled,
        blocks_resumed: s.blocks_resumed,
        max_accepted_hsd: s.max_accepted_hsd,
        // Replayed entries did no reuse work in this process.
        reuse: None,
    });
    // A replayed circuit carries a report with the same schema as a
    // fresh compile — empty pass list (nothing ran in this process),
    // explicit `supervision`/`verification` keys serialized as `null`
    // when absent — so `--report`-style consumers see a stable JSON
    // shape whether an entry was compiled or replayed.
    let mut report = CompileReport::new(technique.label());
    if let Some(s) = &stats {
        report.blocks_fell_back = s.blocks_fell_back as u64;
        report.blocks_failed = s.blocks_failed as u64;
    }
    report.supervision = None;
    report.verification = cached.verification;
    let mut compiled = CompiledCircuit::from_parts(technique, mapped, stats);
    compiled.attach_report(report);
    Some(compiled)
}

/// Compiles through the on-disk cache: returns the cached compilation
/// when one exists for this exact `(workload, technique, config,
/// program)` tuple; otherwise compiles and stores the result.
///
/// Cache corruption or version skew degrades gracefully to a fresh
/// compile. `cfg_tag` should encode everything that affects the
/// output (seed, fast/paper budget, workload parameter overrides).
pub fn compile_cached(
    name: &str,
    program: &Circuit,
    technique: Technique,
    cfg: &PipelineConfig,
    cfg_tag: &str,
) -> CompiledCircuit {
    compile_cached_verified(name, program, technique, cfg, cfg_tag, None).0
}

/// [`compile_cached`] with an optional equivalence-oracle pass whose
/// verdict travels with the cache entry.
///
/// * Cache hit with a stored verdict — the verdict is replayed without
///   re-simulating (the oracle is deterministic for the seed encoded
///   in `cfg_tag`).
/// * Cache hit from a pre-verification run — the oracle runs now and
///   the verdict is back-filled into the entry atomically.
/// * Cache miss — compile, verify, store circuit and verdict together.
///
/// Without a `verify` config this is exactly [`compile_cached`]:
/// stored verdicts are preserved but none are computed.
pub fn compile_cached_verified(
    name: &str,
    program: &Circuit,
    technique: Technique,
    cfg: &PipelineConfig,
    cfg_tag: &str,
    verify: Option<&VerifyConfig>,
) -> (CompiledCircuit, Option<VerificationStats>) {
    compile_cached_verified_traced(
        name,
        program,
        technique,
        cfg,
        cfg_tag,
        verify,
        &Telemetry::disabled(),
    )
}

/// [`compile_cached_verified`] recording cache telemetry: hits bump
/// the `bench.cache_hits` counter, misses `bench.cache_misses`.
/// Observational only — the returned circuit is bit-identical with
/// telemetry enabled or disabled.
#[allow(clippy::too_many_arguments)]
pub fn compile_cached_verified_traced(
    name: &str,
    program: &Circuit,
    technique: Technique,
    cfg: &PipelineConfig,
    cfg_tag: &str,
    verify: Option<&VerifyConfig>,
    telemetry: &Telemetry,
) -> (CompiledCircuit, Option<VerificationStats>) {
    let fp = fingerprint(program);
    let cache = match SharedCache::open(Path::new(CACHE_ROOT), telemetry) {
        Ok(cache) => cache,
        Err(_) => {
            // Unusable store (e.g. read-only filesystem): compile
            // straight through without caching rather than failing.
            let compiled = compile(program, technique, cfg);
            let stats = verify.map(|vc| geyser::verify_compiled(program, &compiled, vc));
            return (compiled, stats);
        }
    };
    let path = cache.entry_path_for(name, technique, cfg_tag, fp);
    // Frame corruption (torn write, bit rot) is quarantined to a
    // `.corrupt-<digest>` sidecar with a structured warning and a
    // `store_corrupt_total` bump inside the record reader; a framed
    // payload that then fails the schema is quarantined here. Both
    // degrade to a miss, but never silently.
    match read_record_file_quarantining(&path, "cache", telemetry) {
        Ok(payload) => match serde_json::from_str::<CachedCompile>(payload.text()) {
            Ok(cached) => {
                let stored = cached.verification.clone();
                if let Some(compiled) = from_cached(cached, technique, cfg.hardware.digest()) {
                    telemetry.counter_add("bench.cache_hits", 1);
                    let stats = match (verify, stored) {
                        (None, stored) => stored,
                        (Some(_), Some(stats)) => Some(stats),
                        (Some(vc), None) => {
                            let stats = geyser::verify_compiled(program, &compiled, vc);
                            store(
                                &path,
                                &compiled,
                                Some(stats.clone()),
                                cfg,
                                cache.generation(),
                            );
                            Some(stats)
                        }
                    };
                    return (compiled, stats);
                }
                // Parsed, but unusable in this process: schema version
                // or hardware-digest skew. Counted apart from cold
                // misses so operators can tell "cache was empty" from
                // "cache was full of entries a version bump orphaned"
                // — the latter is reclaimable with `repair --prune`.
                telemetry.counter_add(CACHE_VERSION_MISS_COUNTER, 1);
            }
            Err(_) => {
                let bytes = std::fs::read(&path).unwrap_or_default();
                quarantine_corrupt(
                    &path,
                    &bytes,
                    "cache entry JSON does not parse",
                    "cache",
                    telemetry,
                );
            }
        },
        Err(StoreReadError::Io(_)) | Err(StoreReadError::Corrupt(_)) => {}
    }
    telemetry.counter_add("bench.cache_misses", 1);
    let compiled = compile(program, technique, cfg);
    let stats = verify.map(|vc| geyser::verify_compiled(program, &compiled, vc));
    store(&path, &compiled, stats.clone(), cfg, cache.generation());
    (compiled, stats)
}

fn store(
    path: &std::path::Path,
    compiled: &CompiledCircuit,
    verification: Option<VerificationStats>,
    cfg: &PipelineConfig,
    generation: u64,
) {
    if let Ok(body) = serde_json::to_string(&to_cached(compiled, verification, cfg, generation)) {
        let _ = write_entry_atomic(path, &body);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests that relocate the process cwd (the cache root is relative)
    // must not interleave.
    static CWD_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn sample_program() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).t(2);
        c
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("geyser-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sidecars_under(root: &Path) -> usize {
        fn walk(dir: &Path, count: &mut usize) {
            if let Ok(entries) = std::fs::read_dir(dir) {
                for entry in entries.flatten() {
                    let path = entry.path();
                    if path.is_dir() {
                        walk(&path, count);
                    } else if is_corrupt_sidecar(&path) {
                        *count += 1;
                    }
                }
            }
        }
        let mut count = 0;
        walk(root, &mut count);
        count
    }

    #[test]
    fn roundtrip_preserves_metrics() {
        let program = sample_program();
        let cfg = PipelineConfig::fast();
        for technique in [
            Technique::Baseline,
            Technique::Geyser,
            Technique::Superconducting,
        ] {
            let direct = compile(&program, technique, &cfg);
            let cached = to_cached(&direct, None, &cfg, 1);
            let body = serde_json::to_string(&cached).unwrap();
            let back: CachedCompile = serde_json::from_str(&body).unwrap();
            let rebuilt =
                from_cached(back, technique, cfg.hardware.digest()).expect("rebuild succeeds");
            assert_eq!(rebuilt.total_pulses(), direct.total_pulses());
            assert_eq!(rebuilt.depth_pulses(), direct.depth_pulses());
            assert_eq!(rebuilt.gate_counts(), direct.gate_counts());
            assert_eq!(
                rebuilt.composition_stats().is_some(),
                direct.composition_stats().is_some()
            );
        }
    }

    #[test]
    fn entry_for_a_different_hardware_spec_is_a_miss() {
        let program = sample_program();
        let cfg = PipelineConfig::fast();
        let direct = compile(&program, Technique::Baseline, &cfg);
        let cached = to_cached(&direct, None, &cfg, 1);
        let other = geyser::HardwareSpec::near_term();
        assert!(
            from_cached(cached, Technique::Baseline, other.digest()).is_none(),
            "a digest mismatch must never replay a foreign compilation"
        );
    }

    #[test]
    fn stale_version_entry_is_a_miss() {
        let program = sample_program();
        let cfg = PipelineConfig::fast();
        let direct = compile(&program, Technique::Baseline, &cfg);
        let mut cached = to_cached(&direct, None, &cfg, 1);
        cached.version = CACHE_VERSION - 1;
        assert!(from_cached(cached, Technique::Baseline, cfg.hardware.digest()).is_none());
    }

    #[test]
    fn pre_versioning_entry_fails_to_deserialize() {
        // Entries written before the schema carried `version` /
        // `hardware_digest` / geometry fields look like this. They
        // must fail to parse (→ cache miss upstream), never replay.
        #[derive(Serialize)]
        struct LegacyCachedCompile {
            lattice_kind: String,
            rows: usize,
            cols: usize,
            circuit: Circuit,
            initial_node_of: Vec<usize>,
            final_node_of: Vec<usize>,
            num_logical: usize,
            swaps: usize,
            stats: Option<CachedStats>,
            verification: Option<VerificationStats>,
        }
        let legacy = LegacyCachedCompile {
            lattice_kind: "triangular".into(),
            rows: 2,
            cols: 2,
            circuit: sample_program(),
            initial_node_of: vec![0, 1, 2],
            final_node_of: vec![0, 1, 2],
            num_logical: 3,
            swaps: 0,
            stats: None,
            verification: None,
        };
        let body = serde_json::to_string(&legacy).unwrap();
        assert!(
            serde_json::from_str::<CachedCompile>(&body).is_err(),
            "legacy entries lacking the hardware digest must be invalidated"
        );
    }

    #[test]
    fn fingerprint_distinguishes_programs() {
        let a = sample_program();
        let mut b = sample_program();
        b.h(2);
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_eq!(fingerprint(&a), fingerprint(&sample_program()));
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_tmp_behind() {
        let dir = temp_root("atomic");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("entry.json");
        std::fs::write(&path, "old").unwrap();
        write_entry_atomic(&path, "new").unwrap();
        let decoded = geyser::store::read_record_file(&path).unwrap();
        assert!(decoded.is_framed(), "cache entries are framed records");
        assert_eq!(decoded.text(), "new");
        let tmps = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().map(|x| x == "tmp").unwrap_or(false))
            .count();
        assert_eq!(tmps, 0, "temp file must be renamed away");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_initializes_and_compaction_bumps_the_generation() {
        let root = temp_root("gen");
        let telemetry = Telemetry::enabled();
        let mut cache = SharedCache::open(&root, &telemetry).unwrap();
        assert_eq!(cache.generation(), 1, "fresh store starts at generation 1");
        assert!(root.join(CACHE_GENERATION_FILE).exists());

        let outcome = cache.compact(10_000, &telemetry).unwrap();
        assert!(outcome.performed);
        assert_eq!(outcome.generation, 2);
        assert!(
            !root.join(CACHE_COMPACTION_LOCK).exists(),
            "a committed compaction releases its lock"
        );
        // A second handle (another process) observes the new header.
        let reopened = SharedCache::open(&root, &telemetry).unwrap();
        assert_eq!(reopened.generation(), 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn live_peer_lock_makes_compaction_a_noop() {
        let root = temp_root("lock");
        let telemetry = Telemetry::enabled();
        let mut cache = SharedCache::open(&root, &telemetry).unwrap();
        // A peer took the lock one second ago (its timestamp, our
        // clock): not stale, so our compaction must back off.
        std::fs::write(root.join(CACHE_COMPACTION_LOCK), "99999 9000").unwrap();
        let outcome = cache.compact(10_000, &telemetry).unwrap();
        assert!(!outcome.performed, "live lock holders are respected");
        assert_eq!(cache.generation(), 1);
        // The same lock judged far later is an orphan: taken over.
        let outcome = cache
            .compact(9_000 + CACHE_LOCK_STALE_MS + 1, &telemetry)
            .unwrap();
        assert!(outcome.performed, "stale locks are taken over");
        assert_eq!(outcome.generation, 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn crashed_compaction_leaves_the_old_generation_never_a_mix() {
        let root = temp_root("crash");
        let telemetry = Telemetry::enabled();
        let mut cache = SharedCache::open(&root, &telemetry).unwrap();
        let outcome = cache.compact_crashing(5_000, &telemetry).unwrap();
        assert!(!outcome.performed);
        // The wreckage a kill -9 mid-commit leaves behind: old header
        // intact, half-committed temp, orphaned lock.
        assert!(root.join(CACHE_COMPACTION_LOCK).exists());
        let obs = scan_generation(&root, 5_001);
        assert!(obs.generation_parses, "old header must read back clean");
        assert_eq!(obs.generation, 1, "generation is old or new, never mixed");
        assert!(!obs.stale_lock, "a just-orphaned lock is not yet stale");

        // Recovery: the next open sweeps the temp; once the lock ages
        // out, the next compaction takes over and commits.
        let mut reopened = SharedCache::open(&root, &telemetry).unwrap();
        assert_eq!(reopened.generation(), 1);
        assert!(
            telemetry
                .counter_value(geyser::store::STORE_STALE_TMP_CLEANED_COUNTER)
                .unwrap_or(0)
                >= 1,
            "the half-written generation temp is swept at open"
        );
        let outcome = reopened
            .compact(5_000 + CACHE_LOCK_STALE_MS, &telemetry)
            .unwrap();
        assert!(outcome.performed);
        assert_eq!(outcome.generation, 2);
        assert!(!root.join(CACHE_COMPACTION_LOCK).exists());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn compaction_prunes_stale_entries_and_sidecars() {
        let root = temp_root("prune");
        let telemetry = Telemetry::enabled();
        let program = sample_program();
        let cfg = PipelineConfig::fast();
        let mut cache = SharedCache::open(&root, &telemetry).unwrap();

        // A current entry, written the way the compile path does.
        let direct = compile(&program, Technique::Baseline, &cfg);
        let keep = cache.entry_path_for("t", Technique::Baseline, "keep", 1);
        let body = serde_json::to_string(&to_cached(&direct, None, &cfg, 1)).unwrap();
        write_entry_atomic(&keep, &body).unwrap();
        // A stale-version entry and a quarantine sidecar beside it.
        let mut stale = to_cached(&direct, None, &cfg, 1);
        stale.version = CACHE_VERSION - 1;
        let stale_path = cache.entry_path_for("t", Technique::Baseline, "stale", 2);
        write_entry_atomic(&stale_path, &serde_json::to_string(&stale).unwrap()).unwrap();
        let sidecar = keep.parent().unwrap().join("junk.json.corrupt-00ff");
        std::fs::write(&sidecar, "quarantined bytes").unwrap();

        let outcome = cache.compact(1_000, &telemetry).unwrap();
        assert!(outcome.performed);
        assert_eq!(outcome.pruned, 2, "stale entry + sidecar reclaimed");
        assert!(keep.exists(), "current entries survive compaction");
        assert!(!stale_path.exists());
        assert!(!sidecar.exists());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn scan_flags_each_incoherence_symptom() {
        let root = temp_root("scan");
        let telemetry = Telemetry::enabled();
        let program = sample_program();
        let cfg = PipelineConfig::fast();
        let cache = SharedCache::open(&root, &telemetry).unwrap();
        let direct = compile(&program, Technique::Baseline, &cfg);

        // Coherent store first.
        let good = cache.entry_path_for("t", Technique::Baseline, "good", 1);
        let body = serde_json::to_string(&to_cached(&direct, None, &cfg, 1)).unwrap();
        write_entry_atomic(&good, &body).unwrap();
        let obs = scan_generation(&root, 1_000);
        assert!(obs.generation_parses);
        assert_eq!(obs.generation, 1);
        assert_eq!(obs.corrupt_in_place, 0);
        assert_eq!(obs.entries_beyond_generation, 0);
        assert!(!obs.stale_lock);

        // An entry stamped with a generation the header never
        // committed — the signature of a lost rename.
        let future = cache.entry_path_for("t", Technique::Baseline, "future", 2);
        let beyond = serde_json::to_string(&to_cached(&direct, None, &cfg, 99)).unwrap();
        write_entry_atomic(&future, &beyond).unwrap();
        // A torn entry left in place (scanners never quarantine).
        let torn = cache.entry_path_for("t", Technique::Baseline, "torn", 3);
        write_entry_atomic(&torn, &body).unwrap();
        let bytes = std::fs::read(&torn).unwrap();
        std::fs::write(&torn, &bytes[..bytes.len() / 2]).unwrap();
        // An orphaned lock from a long-dead compactor.
        std::fs::write(root.join(CACHE_COMPACTION_LOCK), "123 0").unwrap();

        let obs = scan_generation(&root, CACHE_LOCK_STALE_MS);
        assert_eq!(obs.corrupt_in_place, 1);
        assert_eq!(obs.entries_beyond_generation, 1);
        assert!(obs.stale_lock);
        let violations = geyser_verify::check_cache_generation(&obs);
        assert_eq!(violations.len(), 3);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_cache_entry_is_quarantined_and_recompiled() {
        let _cwd = CWD_LOCK.lock().unwrap();
        let dir = temp_root("torn");
        let _ = std::fs::create_dir_all(&dir);
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();

        let program = sample_program();
        let cfg = PipelineConfig::fast();
        let telemetry = Telemetry::enabled();
        let (first, _) = compile_cached_verified_traced(
            "t",
            &program,
            Technique::OptiMap,
            &cfg,
            "torn",
            None,
            &telemetry,
        );
        let cache = SharedCache::open(Path::new(CACHE_ROOT), &telemetry).unwrap();
        let path = cache.entry_path_for("t", Technique::OptiMap, "torn", fingerprint(&program));
        // Tear the committed entry the way a mid-write kill would.
        let body = std::fs::read(&path).unwrap();
        std::fs::write(&path, &body[..body.len() / 2]).unwrap();

        let (second, _) = compile_cached_verified_traced(
            "t",
            &program,
            Technique::OptiMap,
            &cfg,
            "torn",
            None,
            &telemetry,
        );
        assert_eq!(first.total_pulses(), second.total_pulses());
        assert_eq!(
            telemetry.counter_value(geyser::store::STORE_CORRUPT_COUNTER),
            Some(1),
            "corruption must be observable, not a silent miss"
        );
        assert_eq!(telemetry.counter_value("bench.cache_misses"), Some(2));
        assert_eq!(
            sidecars_under(Path::new(CACHE_ROOT)),
            1,
            "torn entry must be quarantined aside"
        );
        // The recompile rewrote a healthy framed entry in place.
        assert!(geyser::store::read_record_file(&path).is_ok());

        std::env::set_current_dir(old).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verification_verdict_travels_with_the_cache_entry() {
        let _cwd = CWD_LOCK.lock().unwrap();
        let dir = temp_root("verify");
        let _ = std::fs::create_dir_all(&dir);
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();

        let program = sample_program();
        let cfg = PipelineConfig::fast();
        let vc = VerifyConfig::default().with_seed(3);

        // Write an unverified entry first (pre-`--verify` run), then
        // hit it with verification on: the verdict must be computed
        // once and back-filled.
        let (_, none) = compile_cached_verified(
            "t",
            &program,
            Technique::Baseline,
            &cfg,
            "s3-fast-st-d",
            None,
        );
        assert!(none.is_none());
        let (_, first) = compile_cached_verified(
            "t",
            &program,
            Technique::Baseline,
            &cfg,
            "s3-fast-st-d",
            Some(&vc),
        );
        let first = first.expect("verdict computed on back-fill");
        assert!(first.equivalent);

        // Second verified hit replays the stored verdict bit for bit
        // (same seconds field proves it was not re-measured).
        let (_, second) = compile_cached_verified(
            "t",
            &program,
            Technique::Baseline,
            &cfg,
            "s3-fast-st-d",
            Some(&vc),
        );
        assert_eq!(second.as_ref(), Some(&first));

        std::env::set_current_dir(old).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_hits_are_counted_and_replay_a_stable_report_shape() {
        let _cwd = CWD_LOCK.lock().unwrap();
        let dir = temp_root("hits");
        let _ = std::fs::create_dir_all(&dir);
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();

        let program = sample_program();
        let cfg = PipelineConfig::fast();
        let telemetry = Telemetry::enabled();
        let (first, _) = compile_cached_verified_traced(
            "t",
            &program,
            Technique::OptiMap,
            &cfg,
            "hits",
            None,
            &telemetry,
        );
        assert_eq!(telemetry.counter_value("bench.cache_misses"), Some(1));
        assert_eq!(telemetry.counter_value("bench.cache_hits"), None);
        assert!(first.report().is_some(), "fresh compiles carry a report");

        let (second, _) = compile_cached_verified_traced(
            "t",
            &program,
            Technique::OptiMap,
            &cfg,
            "hits",
            None,
            &telemetry,
        );
        assert_eq!(telemetry.counter_value("bench.cache_hits"), Some(1));
        let report = second.report().expect("replays carry a report too");
        assert!(report.passes.is_empty(), "no pass ran in this process");
        assert!(report.supervision.is_none());
        // Stable schema: the telemetry-era keys serialize as explicit
        // nulls on a replay instead of vanishing.
        let json = report.to_json();
        assert!(json.contains("\"supervision\": null"));
        assert!(json.contains("\"verification\": null"));

        std::env::set_current_dir(old).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_skew_is_counted_apart_from_cold_misses() {
        let _cwd = CWD_LOCK.lock().unwrap();
        let dir = temp_root("skew");
        let _ = std::fs::create_dir_all(&dir);
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();

        let program = sample_program();
        let cfg = PipelineConfig::fast();
        let telemetry = Telemetry::enabled();
        let (first, _) = compile_cached_verified_traced(
            "t",
            &program,
            Technique::OptiMap,
            &cfg,
            "skew",
            None,
            &telemetry,
        );
        // Cold miss: nothing on disk yet, and no version miss.
        assert_eq!(telemetry.counter_value("bench.cache_misses"), Some(1));
        assert_eq!(telemetry.counter_value(CACHE_VERSION_MISS_COUNTER), None);

        // Rewrite the committed entry as if an older binary had
        // written it: same well-formed payload, previous schema
        // version.
        let cache = SharedCache::open(Path::new(CACHE_ROOT), &telemetry).unwrap();
        let path = cache.entry_path_for("t", Technique::OptiMap, "skew", fingerprint(&program));
        let payload = geyser::store::read_record_file(&path).unwrap();
        let mut entry: CachedCompile = serde_json::from_str(payload.text()).unwrap();
        entry.version = CACHE_VERSION - 1;
        write_entry_atomic(&path, &serde_json::to_string(&entry).unwrap()).unwrap();

        let (second, _) = compile_cached_verified_traced(
            "t",
            &program,
            Technique::OptiMap,
            &cfg,
            "skew",
            None,
            &telemetry,
        );
        assert_eq!(first.total_pulses(), second.total_pulses());
        assert_eq!(
            telemetry.counter_value(CACHE_VERSION_MISS_COUNTER),
            Some(1),
            "a parsed-but-stale entry must be visible as version skew"
        );
        assert_eq!(
            telemetry.counter_value("bench.cache_misses"),
            Some(2),
            "version skew still degrades to a miss"
        );

        // The recompile rewrote a current-version entry: clean hit,
        // no further version misses.
        let (_, _) = compile_cached_verified_traced(
            "t",
            &program,
            Technique::OptiMap,
            &cfg,
            "skew",
            None,
            &telemetry,
        );
        assert_eq!(telemetry.counter_value("bench.cache_hits"), Some(1));
        assert_eq!(telemetry.counter_value(CACHE_VERSION_MISS_COUNTER), Some(1));

        std::env::set_current_dir(old).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_files_round_trip_through_disk() {
        let _cwd = CWD_LOCK.lock().unwrap();
        let dir = temp_root("roundtrip");
        let _ = std::fs::create_dir_all(&dir);
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();

        let program = sample_program();
        let cfg = PipelineConfig::fast();
        let first = compile_cached("t", &program, Technique::OptiMap, &cfg, "test");
        let second = compile_cached("t", &program, Technique::OptiMap, &cfg, "test");
        assert_eq!(first.total_pulses(), second.total_pulses());
        assert!(dir.join(CACHE_ROOT).join(CACHE_OBJECTS_DIR).exists());

        std::env::set_current_dir(old).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_share_one_store_without_torn_state() {
        let _cwd = CWD_LOCK.lock().unwrap();
        let dir = temp_root("race");
        let _ = std::fs::create_dir_all(&dir);
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();

        // Two writers hammer the same keys through the shared store at
        // once — the same shape as two processes pointed at one cache
        // dir. Every publish must land whole.
        let pulses: Vec<u64> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    scope.spawn(|| {
                        let program = sample_program();
                        let cfg = PipelineConfig::fast();
                        let mut last = 0;
                        for round in 0..3 {
                            let tag = format!("race-{round}");
                            let compiled =
                                compile_cached("t", &program, Technique::OptiMap, &cfg, &tag);
                            last = compiled.total_pulses();
                        }
                        last
                    })
                })
                .collect();
            workers.into_iter().map(|w| w.join().unwrap()).collect()
        });
        assert_eq!(pulses[0], pulses[1], "both writers see the same result");

        let obs = scan_generation(Path::new(CACHE_ROOT), 1_000);
        assert!(obs.generation_parses);
        assert_eq!(obs.corrupt_in_place, 0, "no torn entries");
        assert_eq!(obs.entries_beyond_generation, 0);
        assert_eq!(sidecars_under(Path::new(CACHE_ROOT)), 0);
        assert!(
            geyser_verify::check_cache_generation(&obs).is_empty(),
            "concurrent sharing must leave a coherent store"
        );

        std::env::set_current_dir(old).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
