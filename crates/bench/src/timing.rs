//! Minimal wall-clock micro-benchmark harness.
//!
//! Replaces criterion (unavailable offline) for the `benches/`
//! targets: one warm-up call, `samples` timed iterations, and a
//! `min / median / max` report on stdout. The medians are stable
//! enough to track the paper's scaling claims (Sec. 6) across
//! commits; for rigorous statistics rerun with more samples.

use std::time::{Duration, Instant};

/// Times `f` over `samples` iterations (after one warm-up call) and
/// prints a `min / median / max` line under the `group/label` name.
/// Returns the median.
pub fn bench_sampled<T>(
    group: &str,
    label: &str,
    samples: usize,
    mut f: impl FnMut() -> T,
) -> Duration {
    assert!(samples > 0, "need at least one sample");
    std::hint::black_box(f());
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort();
    let median = times[times.len() / 2];
    println!(
        "{group}/{label:<24} min {:>12?}   median {:>12?}   max {:>12?}   ({samples} samples)",
        times[0],
        median,
        times[times.len() - 1]
    );
    median
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_plausible_medians() {
        let median = bench_sampled("test", "spin", 5, || {
            std::hint::black_box((0..1000u64).sum::<u64>())
        });
        assert!(median < Duration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_panic() {
        bench_sampled("test", "none", 0, || ());
    }
}
