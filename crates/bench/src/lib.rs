//! Shared harness for the evaluation binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §3 for the index). They share the CLI, the
//! workload registry, the compile-all-techniques driver, and the
//! table/JSON emitters defined here.
//!
//! Common flags (all binaries):
//!
//! * `--fast` — reduced composition budget (smoke runs, CI)
//! * `--workloads a,b,c` — filter to specific suite rows
//! * `--trajectories N` — Monte-Carlo trajectories for TVD runs
//! * `--noise R` — error rate (e.g. `0.001` for the paper's 0.1%)
//! * `--seed N` — master seed
//! * `--include-large` — include the 16-qubit Heisenberg in TVD runs
//! * `--steps N` — Trotter steps for Heisenberg (paper scale: 37)
//! * `--json PATH` — also dump rows as JSON
//! * `--report PATH` — dump per-pass compile reports as JSON
//!   (bypasses the compile cache so every run is instrumented; the
//!   reports include budget consumption and per-run fallback counts)
//! * `--budget-ms N` — wall-clock budget per compilation; on expiry
//!   the pipeline degrades gracefully (blocks fall back, remaining
//!   passes are skipped and recorded) instead of running unbounded
//! * `--inject SPEC` — deterministic fault injection for robustness
//!   runs (bypasses the cache); see [`geyser::FaultInjector::parse`]
//!   for the spec syntax, e.g. `--inject compose-corrupt:0,sim-nan:3`
//! * `--jobs N` — run compilations through the supervised job runtime
//!   with `N` worker threads (bounded queue, per-workload circuit
//!   breaker, crash-safe composition checkpoints)
//! * `--max-retries N` — retry retryable failures (pass panics,
//!   budget expiry, simulation faults) up to `N` times with seeded
//!   exponential backoff; implies the supervised runtime
//! * `--resume` — restore matching composition checkpoints left by an
//!   earlier killed run instead of recomposing finished blocks;
//!   implies the supervised runtime
//! * `--verify` — run every compiled circuit through the equivalence
//!   oracle (`geyser-verify`); the verdict lands on the compile report
//!   (and in the results cache) and an inequivalent result aborts the
//!   run with exit status 4
//! * `--reuse` — enable the composition-reuse index: eligible blocks
//!   are fingerprinted and repeated blocks replay a cached
//!   composition (after the shared ε re-check) instead of annealing;
//!   reuse runs bypass the results cache so every run is measured
//! * `--reuse-store DIR` — persist the reuse index across jobs in
//!   `DIR` (one GEYSREC1 record per entry, atomic writes); implies
//!   `--reuse`
//! * `--reuse-warm-start` — let near-miss (coarse-fingerprint) hits
//!   warm-start the annealer with a reduced iteration budget; implies
//!   `--reuse`
//! * `--structured` — make the `fuzz` binary draw repeated-layer
//!   (QAOA-like) circuits instead of fully random ones, so fuzz cases
//!   exercise the composition-reuse path
//! * `--cases N` — fuzz-case count for the `fuzz` binary (default 16)
//! * `--quarantine DIR` — where the `fuzz` binary files minimized
//!   reproducers and the `replay` binary looks for them (default
//!   `quarantine/`)
//! * `--trace PATH` — record hierarchical telemetry spans across the
//!   whole pipeline and write them as a Chrome trace-event JSON file
//!   (load in `chrome://tracing` or Perfetto); implies the supervised
//!   runtime so job-lifecycle spans appear, and adds the Geyser
//!   technique to binaries that would not otherwise compose, so
//!   annealer spans always reach the trace
//! * `--techniques a,b` — compile an explicit technique list
//!   (labels per [`Technique::label`], case-insensitive) instead of
//!   the binary's default comparison points
//! * `--hardware PATH` — load a serialized [`geyser::HardwareSpec`]
//!   scenario (JSON) and compile for that machine instead of the
//!   paper's; the spec's digest becomes part of the results-cache and
//!   checkpoint keys, and its noise model drives noisy simulation
//!   unless `--noise` overrides it
//! * `--specs a,b,c` — hardware-scenario grid for the `sweep` binary:
//!   each element is a builtin preset name (`paper`,
//!   `square-diagonal`, `near-term`) or a path to a spec JSON file
//! * `--campaigns N` — campaign count for the `chaos` binary
//!   (default 8)
//! * `--arrivals N` — submission count for the `serve` binary's
//!   seeded open-loop schedule (default 2000)
//! * `--tenants N` — tenant count for the `serve` binary; tenant 0
//!   floods during the storm phase (default 4, minimum 2)
//! * `--watchdog-ms N` — arm the supervisor's hung-worker watchdog:
//!   workers whose heartbeat goes stale for `N` ms are preempted and
//!   the attempt is retyped as a retryable `WorkerHung` error;
//!   implies the supervised runtime
//! * `--journal PATH` — the `serve` binary appends every job
//!   lifecycle decision (admitted, dispatched, completed, shed,
//!   cancelled) to a write-ahead journal at `PATH`, so a killed
//!   service can be restarted without losing acknowledged work
//! * `--recover` — the `serve` binary replays the `--journal` file
//!   before taking traffic: settled outcomes are taken verbatim,
//!   acknowledged-but-incomplete jobs are re-admitted exactly once
//! * `--no-shed` — restart-campaign mode for `serve`: no deadlines,
//!   no shedding, no degraded tier, so kill → recover cycles can be
//!   diffed against an uninjected reference job for job
//!
//! Exit codes are unified in [`exit_codes`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
pub mod exit_codes;
pub mod serve;
pub mod timing;

use std::collections::BTreeMap;

pub use cache::{
    classify_cache_payload, compile_cached, compile_cached_verified,
    compile_cached_verified_traced, scan_generation, CachePayloadStatus, CompactionOutcome,
    SharedCache, CACHE_COMPACTION_LOCK, CACHE_GENERATION_FILE, CACHE_LOCK_STALE_MS,
    CACHE_OBJECTS_DIR, CACHE_ROOT, CACHE_VERSION_MISS_COUNTER,
};
use geyser::{
    CompileReport, CompiledCircuit, FaultInjector, FaultSpecError, HardwareSpec, MetricsSnapshot,
    PassManager, PipelineConfig, Technique, Telemetry, VerificationStats,
};
use geyser_circuit::Circuit;
use geyser_sim::NoiseModel;
use geyser_supervisor::{
    JobSpec, JobState, RetryPolicy, Supervisor, SupervisorConfig, WatchdogConfig,
};
use geyser_verify::VerifyConfig;
use geyser_workloads::{heisenberg, suite, WorkloadSpec};
use serde::Serialize;

/// Parsed command-line options shared by all figure binaries.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Use the reduced-budget pipeline configuration.
    pub fast: bool,
    /// Workload-name filter (empty = whole suite).
    pub workloads: Vec<String>,
    /// Monte-Carlo trajectories for noisy simulation.
    pub trajectories: usize,
    /// Error rate per channel invocation.
    pub noise: f64,
    /// Master seed.
    pub seed: u64,
    /// Include >10-qubit workloads in TVD experiments.
    pub include_large: bool,
    /// Heisenberg Trotter-step override.
    pub steps: Option<usize>,
    /// Optional JSON output path.
    pub json: Option<String>,
    /// Optional per-pass compile-report output path.
    pub report: Option<String>,
    /// Wall-clock budget per compilation in milliseconds.
    pub budget_ms: Option<u64>,
    /// Raw fault-injection spec (`--inject`).
    pub inject: Option<String>,
    /// Supervised-runtime worker threads (`--jobs`, default 1).
    pub jobs: usize,
    /// Retries per retryable failure (`--max-retries`, default 0).
    pub max_retries: usize,
    /// Restore crash-safe composition checkpoints (`--resume`).
    pub resume: bool,
    /// Run compiled circuits through the equivalence oracle
    /// (`--verify`).
    pub verify: bool,
    /// Enable the composition-reuse index (`--reuse`): repeated blocks
    /// replay cached compositions after an ε re-check instead of
    /// annealing from scratch.
    pub reuse: bool,
    /// Persist the reuse index across jobs in this directory
    /// (`--reuse-store DIR`); implies `--reuse`.
    pub reuse_store: Option<String>,
    /// Let coarse-fingerprint near-misses warm-start the annealer
    /// (`--reuse-warm-start`); implies `--reuse`.
    pub reuse_warm_start: bool,
    /// Fuzz-case count for the `fuzz` binary (`--cases`).
    pub cases: usize,
    /// Use the repeated-layer structured fuzz generator
    /// (`--structured`), so fuzz cases exercise the reuse path.
    pub structured: bool,
    /// Quarantine-corpus directory override (`--quarantine`).
    pub quarantine: Option<String>,
    /// Chrome trace-event output path (`--trace`).
    pub trace: Option<String>,
    /// Explicit technique override (`--techniques`).
    pub techniques: Option<Vec<Technique>>,
    /// Hardware scenario loaded from `--hardware PATH`; `None`
    /// compiles for the paper machine ([`HardwareSpec::paper`]).
    pub hardware: Option<HardwareSpec>,
    /// Whether `--noise` was given explicitly, in which case it beats
    /// the hardware spec's noise model in [`Cli::noise_model`].
    pub noise_explicit: bool,
    /// Hardware-scenario grid for the `sweep` binary (`--specs`):
    /// builtin preset names or spec-JSON paths.
    pub specs: Vec<String>,
    /// Campaign count for the `chaos` binary (`--campaigns`).
    pub campaigns: usize,
    /// Submission count for the `serve` binary (`--arrivals`).
    pub arrivals: usize,
    /// Tenant count for the `serve` binary (`--tenants`); tenant 0 is
    /// the storm-phase flooder.
    pub tenants: usize,
    /// Hung-worker watchdog timeout in milliseconds (`--watchdog-ms`);
    /// enables the supervisor's heartbeat watchdog, which preempts
    /// workers whose heartbeat goes stale and retypes the preemption
    /// as a retryable `WorkerHung` error. Implies the supervised
    /// runtime.
    pub watchdog_ms: Option<u64>,
    /// Write-ahead job-journal path for the `serve` binary
    /// (`--journal`); every admission/dispatch/settlement decision is
    /// appended before it takes effect.
    pub journal: Option<String>,
    /// Replay the `--journal` file before taking traffic
    /// (`--recover`): settled outcomes are honoured verbatim and
    /// acknowledged-but-incomplete jobs re-admitted exactly once.
    pub recover: bool,
    /// Restart-campaign mode for the `serve` binary (`--no-shed`):
    /// schedule without deadlines and policy without shedding or
    /// degradation, so every arrival completes and a kill → recover
    /// cycle can demand a completed-job set identical to an
    /// uninjected reference.
    pub no_shed: bool,
    /// The run's telemetry handle: disabled by default, enabled by
    /// [`Cli::parse`] when `--trace` or `--report` is given. Cloning
    /// shares the same buffers, so spans recorded anywhere in the
    /// pipeline land in this handle's exporters.
    pub telemetry: Telemetry,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            fast: false,
            workloads: Vec::new(),
            trajectories: 400,
            noise: 0.001,
            seed: 0,
            include_large: false,
            steps: None,
            json: None,
            report: None,
            budget_ms: None,
            inject: None,
            jobs: 1,
            max_retries: 0,
            resume: false,
            verify: false,
            reuse: false,
            reuse_store: None,
            reuse_warm_start: false,
            cases: 16,
            structured: false,
            quarantine: None,
            trace: None,
            techniques: None,
            hardware: None,
            noise_explicit: false,
            specs: Vec::new(),
            campaigns: 8,
            arrivals: 2_000,
            tenants: 4,
            watchdog_ms: None,
            journal: None,
            recover: false,
            no_shed: false,
            telemetry: Telemetry::disabled(),
        }
    }
}

impl Cli {
    /// Parses `std::env::args`, panicking with a usage message on
    /// malformed input.
    pub fn parse() -> Self {
        let mut cli = Cli::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match arg.as_str() {
                "--fast" => cli.fast = true,
                "--include-large" => cli.include_large = true,
                "--workloads" => {
                    cli.workloads = value("--workloads")
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .collect();
                }
                "--trajectories" => {
                    cli.trajectories = value("--trajectories").parse().expect("integer")
                }
                "--noise" => {
                    cli.noise = value("--noise").parse().expect("float");
                    cli.noise_explicit = true;
                }
                "--seed" => cli.seed = value("--seed").parse().expect("integer"),
                "--steps" => cli.steps = Some(value("--steps").parse().expect("integer")),
                "--json" => cli.json = Some(value("--json")),
                "--report" => cli.report = Some(value("--report")),
                "--budget-ms" => {
                    cli.budget_ms = Some(value("--budget-ms").parse().expect("integer"))
                }
                "--inject" => {
                    let spec = value("--inject");
                    // Validate at the CLI boundary so a typo fails
                    // with a pointed message before any compilation.
                    if let Err(e) = FaultInjector::parse(&spec) {
                        exit_bad_inject(&e);
                    }
                    cli.inject = Some(spec);
                }
                "--jobs" => cli.jobs = value("--jobs").parse().expect("integer"),
                "--max-retries" => {
                    cli.max_retries = value("--max-retries").parse().expect("integer")
                }
                "--resume" => cli.resume = true,
                "--verify" => cli.verify = true,
                "--reuse" => cli.reuse = true,
                "--reuse-store" => {
                    cli.reuse_store = Some(value("--reuse-store"));
                    cli.reuse = true;
                }
                "--reuse-warm-start" => {
                    cli.reuse_warm_start = true;
                    cli.reuse = true;
                }
                "--cases" => cli.cases = value("--cases").parse().expect("integer"),
                "--structured" => cli.structured = true,
                "--quarantine" => cli.quarantine = Some(value("--quarantine")),
                "--trace" => cli.trace = Some(value("--trace")),
                "--techniques" => {
                    cli.techniques = Some(
                        value("--techniques")
                            .split(',')
                            .map(|s| {
                                Technique::from_label(s.trim()).unwrap_or_else(|| {
                                    panic!(
                                        "unknown technique '{}'; expected one of \
                                         Baseline, OptiMap, Geyser, SC",
                                        s.trim()
                                    )
                                })
                            })
                            .collect(),
                    );
                }
                "--hardware" => {
                    let path = value("--hardware");
                    match HardwareSpec::load(std::path::Path::new(&path)) {
                        Ok(spec) => cli.hardware = Some(spec),
                        Err(e) => {
                            eprintln!("error: --hardware: {e}");
                            std::process::exit(exit_codes::USAGE);
                        }
                    }
                }
                "--campaigns" => cli.campaigns = value("--campaigns").parse().expect("integer"),
                "--arrivals" => cli.arrivals = value("--arrivals").parse().expect("integer"),
                "--tenants" => cli.tenants = value("--tenants").parse().expect("integer"),
                "--watchdog-ms" => {
                    cli.watchdog_ms = Some(value("--watchdog-ms").parse().expect("integer"))
                }
                "--journal" => cli.journal = Some(value("--journal")),
                "--recover" => cli.recover = true,
                "--no-shed" => cli.no_shed = true,
                "--specs" => {
                    cli.specs = value("--specs")
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect();
                }
                other => {
                    eprintln!("error: unknown flag '{other}'; see crate docs for usage");
                    std::process::exit(exit_codes::USAGE);
                }
            }
        }
        if cli.trace.is_some() || cli.report.is_some() {
            cli.telemetry = Telemetry::enabled();
        }
        cli
    }

    /// The pipeline configuration implied by the flags, compiling for
    /// [`Cli::hardware_spec`]'s machine.
    pub fn pipeline_config(&self) -> PipelineConfig {
        let base = if self.fast {
            PipelineConfig::fast()
        } else {
            PipelineConfig::paper()
        };
        let mut base = base
            .with_seed(self.seed)
            .with_hardware(self.hardware_spec());
        if self.reuse {
            base = base.with_reuse();
        }
        if let Some(dir) = &self.reuse_store {
            base = base.with_reuse_store(dir);
        }
        if self.reuse_warm_start {
            base = base.with_reuse_warm_start(true);
        }
        match self.budget_ms {
            Some(ms) => base.with_budget_ms(ms),
            None => base,
        }
    }

    /// The hardware scenario the run compiles for: the `--hardware`
    /// spec when one was loaded, otherwise the paper machine.
    pub fn hardware_spec(&self) -> HardwareSpec {
        self.hardware.clone().unwrap_or_else(HardwareSpec::paper)
    }

    /// The noise model noisy-simulation binaries should use: the
    /// hardware spec's model when `--hardware` was given, overridden
    /// by an explicit `--noise R` (symmetric per-pulse at rate `R`,
    /// the historical behavior and the default without a spec).
    pub fn noise_model(&self) -> NoiseModel {
        match &self.hardware {
            Some(spec) if !self.noise_explicit => spec.noise,
            _ => NoiseModel::symmetric(self.noise),
        }
    }

    /// The fault plan implied by `--inject` (empty without the flag),
    /// or the typed parse error for a malformed spec.
    pub fn try_fault_injector(&self) -> Result<FaultInjector, FaultSpecError> {
        match &self.inject {
            Some(spec) => FaultInjector::parse(spec),
            None => Ok(FaultInjector::none()),
        }
    }

    /// The fault plan implied by `--inject`, exiting the process with
    /// a friendly usage message on a malformed spec (CLI entry path —
    /// library callers wanting the error should use
    /// [`Cli::try_fault_injector`]).
    pub fn fault_injector(&self) -> FaultInjector {
        self.try_fault_injector()
            .unwrap_or_else(|e| exit_bad_inject(&e))
    }

    /// Whether any flag routes compilation through the supervised job
    /// runtime instead of the plain in-process path. `--trace` implies
    /// supervision so the job-lifecycle spans land in the trace.
    pub fn supervised(&self) -> bool {
        self.jobs > 1
            || self.max_retries > 0
            || self.resume
            || self.trace.is_some()
            || self.watchdog_ms.is_some()
    }

    /// The techniques a binary should compile: the explicit
    /// `--techniques` override when given, otherwise the binary's
    /// default list — extended with [`Technique::Geyser`] under
    /// `--trace` so composition/annealer spans always reach the trace.
    /// Order is preserved, so a binary's `compiled[0]` stays its first
    /// default technique.
    pub fn effective_techniques(&self, default: &[Technique]) -> Vec<Technique> {
        if let Some(explicit) = &self.techniques {
            return explicit.clone();
        }
        let mut list = default.to_vec();
        if self.trace.is_some() && !list.contains(&Technique::Geyser) {
            list.push(Technique::Geyser);
        }
        list
    }

    /// Suite rows selected by the flags. TVD experiments pass
    /// `simulable_only = true` to drop >10-qubit rows unless
    /// `--include-large` is given.
    pub fn selected_workloads(&self, simulable_only: bool) -> Vec<WorkloadSpec> {
        suite()
            .into_iter()
            .filter(|spec| {
                (self.workloads.is_empty() || self.workloads.iter().any(|w| w == spec.name))
                    && (!simulable_only || self.include_large || spec.num_qubits <= 10)
            })
            .collect()
    }

    /// Tag encoding every flag that affects compilation output, used
    /// as part of the on-disk cache and checkpoint keys. Includes the
    /// hardware spec's content digest, so results compiled for
    /// different machines can never collide on disk.
    pub fn config_tag(&self) -> String {
        format!(
            "s{}-{}-st{}-h{:016x}",
            self.seed,
            if self.fast { "fast" } else { "paper" },
            self.steps
                .map_or_else(|| "d".to_string(), |s| s.to_string()),
            self.hardware_spec().digest()
        )
    }

    /// Builds a workload, honouring the Heisenberg step override.
    pub fn build(&self, spec: &WorkloadSpec) -> Circuit {
        match (spec.name, self.steps) {
            ("heisenberg-16", Some(steps)) => heisenberg(16, steps, 0.1),
            _ => spec.build(),
        }
    }

    /// Oracle configuration implied by the flags, or `None` without
    /// `--verify`. The oracle's probe seed follows `--seed` so probe
    /// verdicts are reproducible and cacheable under the config tag.
    pub fn verify_config(&self) -> Option<VerifyConfig> {
        self.verify
            .then(|| VerifyConfig::default().with_seed(self.seed))
    }

    /// Quarantine-corpus directory: `--quarantine` or `quarantine/`.
    pub fn quarantine_dir(&self) -> std::path::PathBuf {
        std::path::PathBuf::from(self.quarantine.as_deref().unwrap_or("quarantine"))
    }

    /// Resolves the `--specs` grid for the `sweep` binary. Each
    /// element names a builtin preset (`paper`, `square-diagonal`,
    /// `near-term`) or is a path to a spec JSON file; without the
    /// flag the grid defaults to `paper` + `near-term`. A bad name or
    /// file exits with usage status 2.
    pub fn hardware_grid(&self) -> Vec<HardwareSpec> {
        if self.specs.is_empty() {
            return vec![HardwareSpec::paper(), HardwareSpec::near_term()];
        }
        self.specs
            .iter()
            .map(|token| match token.as_str() {
                "paper" => HardwareSpec::paper(),
                "square-diagonal" => HardwareSpec::square_diagonal(),
                "near-term" => HardwareSpec::near_term(),
                path => HardwareSpec::load(std::path::Path::new(path)).unwrap_or_else(|e| {
                    eprintln!(
                        "error: --specs: '{path}' is neither a builtin preset \
                         (paper, square-diagonal, near-term) nor a loadable \
                         spec file: {e}"
                    );
                    std::process::exit(exit_codes::USAGE);
                }),
            })
            .collect()
    }
}

/// Prints a pointed `--inject` diagnostic and exits with status 2,
/// the conventional usage-error code.
fn exit_bad_inject(err: &FaultSpecError) -> ! {
    eprintln!("error: --inject: {err}");
    eprintln!(
        "usage: --inject SPEC where SPEC is comma-separated fault tokens, e.g.\n  \
         pass-panic:compose, pass-panic-once:compose, hang-pass:block,\n  \
         compose-corrupt:0, compose-timeout, sim-nan:3,\n  \
         kill-after-block:2, checkpoint-corrupt, miscompile:0"
    );
    std::process::exit(exit_codes::USAGE);
}

/// One (workload × technique) measurement row.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Workload name.
    pub workload: String,
    /// Technique label.
    pub technique: String,
    /// Named metric values, insertion-ordered by BTreeMap key.
    pub metrics: BTreeMap<String, f64>,
}

/// Compiles one workload with every requested technique, going
/// through the on-disk cache so repeated figure runs pay for each
/// compilation once.
///
/// The cache is bypassed when any flag makes the run non-reusable:
/// `--report` (cache hits carry no per-pass instrumentation),
/// `--budget-ms` (a degraded result depends on machine speed), and
/// `--inject` (deliberately faulty output must never be cached). Fault
/// plans run through a [`PassManager`] so injected pass panics surface
/// as typed errors.
///
/// When any supervision flag is set (`--jobs`, `--max-retries`,
/// `--resume`) every compilation is routed through the
/// [`geyser_supervisor::Supervisor`] instead: jobs carry crash-safe
/// composition checkpoints under `.geyser-cache/`, retryable failures
/// back off and retry, and [`geyser::SupervisionStats`] land on each
/// compile report. Supervised runs also bypass the cache.
///
/// With `--verify`, every finalized circuit additionally runs through
/// the `geyser-verify` equivalence oracle. The check runs *after*
/// compilation on the circuit exactly as it shipped — this is the only
/// vantage point that can catch an injected `miscompile:<i>` fault,
/// which corrupts the output after every in-pipeline check. Verdicts
/// land on the compile report (hence in `--report` JSON) and in the
/// results cache; an inequivalent circuit aborts the process with exit
/// status 4.
pub fn compile_techniques(
    cli: &Cli,
    name: &str,
    program: &Circuit,
    techniques: &[Technique],
    cfg: &PipelineConfig,
) -> Vec<(Technique, CompiledCircuit)> {
    let tag = cli.config_tag();
    let faults = cli.fault_injector();
    let verify_cfg = cli.verify_config();
    let mut compiled: Vec<(Technique, CompiledCircuit, Option<VerificationStats>)> =
        if cli.supervised() {
            compile_supervised(cli, name, program, techniques, cfg, &faults, &tag)
                .into_iter()
                .map(|(t, c)| (t, c, None))
                .collect()
        } else {
            // Reuse runs also bypass the results cache: a cache hit skips
            // compilation entirely, so it would neither consult nor grow
            // the reuse index and the run's ReuseStats would be empty.
            let bypass_cache =
                cli.report.is_some() || cli.budget_ms.is_some() || cli.reuse || !faults.is_empty();
            techniques
                .iter()
                .map(|&t| {
                    if !faults.is_empty() {
                        let c = PassManager::for_technique(t)
                            .with_faults(faults.clone())
                            .with_telemetry(cli.telemetry.clone())
                            .run(program, cfg)
                            .unwrap_or_else(|e| panic!("{e}"));
                        (t, c, None)
                    } else if bypass_cache {
                        let c = PassManager::for_technique(t)
                            .with_telemetry(cli.telemetry.clone())
                            .run(program, cfg)
                            .unwrap_or_else(|e| panic!("{e}"));
                        (t, c, None)
                    } else {
                        let (c, stats) = compile_cached_verified_traced(
                            name,
                            program,
                            t,
                            cfg,
                            &tag,
                            verify_cfg.as_ref(),
                            &cli.telemetry,
                        );
                        (t, c, stats)
                    }
                })
                .collect()
        };
    if let Some(vc) = &verify_cfg {
        for (t, c, cached_verdict) in &mut compiled {
            // Cache hits reuse the verdict persisted next to the
            // circuit; every other path verifies the final artifact.
            let stats = cached_verdict
                .take()
                .unwrap_or_else(|| geyser::verify_compiled(program, c, vc));
            if let Some(report) = c.report_mut() {
                report.verification = Some(stats.clone());
            }
            if !stats.equivalent {
                exit_verification_failure(name, *t, &stats);
            }
        }
    }
    compiled.into_iter().map(|(t, c, _)| (t, c)).collect()
}

/// Prints the oracle's verdict on an inequivalent compilation and
/// exits with [`exit_codes::VERIFICATION_FAILED`].
fn exit_verification_failure(name: &str, technique: Technique, stats: &VerificationStats) -> ! {
    eprintln!(
        "error: '{name}' ({}) failed equivalence verification: \
         method={} worst_fidelity={:.12} tolerance={:e}",
        technique.label(),
        stats.method,
        stats.worst_fidelity,
        stats.tolerance
    );
    std::process::exit(exit_codes::VERIFICATION_FAILED);
}

/// Where one job's crash-safe composition checkpoint lives. The
/// checkpoint file itself binds to (circuit fingerprint, seed, block
/// count, composition-config hash), so a stale path collision degrades
/// to a fresh start rather than splicing in foreign blocks.
fn checkpoint_path(name: &str, technique: Technique, cfg_tag: &str) -> std::path::PathBuf {
    std::path::PathBuf::from(".geyser-cache").join(format!(
        "ckpt-{name}-{}-{cfg_tag}.json",
        technique.label().to_lowercase()
    ))
}

/// Compiles one workload's techniques as supervised jobs: bounded
/// queue, `--jobs` workers, seeded retry backoff, per-workload circuit
/// breaking, and crash-safe composition checkpoints.
///
/// A cancelled job (e.g. an injected `kill-after-block` fault) prints
/// where its checkpoint survived and exits with status 3 so sweep
/// scripts can distinguish "killed, resumable" from real failures;
/// rerunning with `--resume` picks the checkpoint up bit-identically.
fn compile_supervised(
    cli: &Cli,
    name: &str,
    program: &Circuit,
    techniques: &[Technique],
    cfg: &PipelineConfig,
    faults: &FaultInjector,
    cfg_tag: &str,
) -> Vec<(Technique, CompiledCircuit)> {
    let supervisor = Supervisor::start_with_telemetry(
        SupervisorConfig {
            workers: cli.jobs.max(1),
            queue_capacity: techniques.len().max(1),
            retry: RetryPolicy {
                seed: cli.seed,
                ..RetryPolicy::with_retries(cli.max_retries)
            },
            watchdog: cli.watchdog_ms.map(|ms| WatchdogConfig {
                hang_timeout_ms: ms,
                ..WatchdogConfig::default()
            }),
            ..SupervisorConfig::default()
        },
        cli.telemetry.clone(),
    );
    let mut ids = Vec::new();
    for &t in techniques {
        let mut spec = JobSpec::new(name, t, program.clone(), cfg.clone());
        spec.faults = faults.clone();
        spec.checkpoint = Some(checkpoint_path(name, t, cfg_tag));
        spec.resume = cli.resume;
        let handle = supervisor
            .submit(spec)
            .unwrap_or_else(|e| panic!("submit {name}/{}: {e}", t.label()));
        ids.push((t, handle.id));
    }
    let mut results = supervisor.shutdown();
    ids.into_iter()
        .map(|(t, id)| {
            let pos = results
                .iter()
                .position(|r| r.id == id)
                .expect("every submitted job reaches a terminal state");
            let result = results.remove(pos);
            match result.state {
                JobState::Done => (t, result.compiled.expect("Done jobs carry a circuit")),
                JobState::Cancelled => {
                    eprintln!(
                        "job '{name}' ({}) cancelled after {} attempt(s); \
                         checkpoint kept under .geyser-cache/ — rerun with \
                         --resume to continue where it stopped",
                        t.label(),
                        result.attempts
                    );
                    std::process::exit(exit_codes::CANCELLED_RESUMABLE);
                }
                state => panic!(
                    "job '{name}' ({}) ended {state:?}: {}",
                    t.label(),
                    result
                        .error
                        .map_or_else(|| "circuit breaker open".to_string(), |e| e.to_string())
                ),
            }
        })
        .collect()
}

/// One (workload × technique) per-pass compile report.
#[derive(Debug, Clone, Serialize)]
pub struct ReportRow {
    /// Workload name.
    pub workload: String,
    /// Technique label.
    pub technique: String,
    /// The pass manager's instrumentation record.
    pub report: CompileReport,
}

/// Collects the compile reports of one workload's compilations into
/// `out`. Cache replays contribute a report too (empty pass list,
/// explicit `supervision`/`verification` keys), so the output schema
/// is stable whether a circuit was compiled or replayed.
pub fn collect_reports(
    name: &str,
    compiled: &[(Technique, CompiledCircuit)],
    out: &mut Vec<ReportRow>,
) {
    for (t, c) in compiled {
        if let Some(report) = c.report() {
            out.push(ReportRow {
                workload: name.to_string(),
                technique: t.label().to_string(),
                report: report.clone(),
            });
        }
    }
}

/// The `--report` artifact: per-pass compile reports plus the run's
/// telemetry metrics snapshot (`null` when telemetry never enabled,
/// which cannot happen through [`Cli::parse`] since `--report` enables
/// it).
#[derive(Debug, Clone, Serialize)]
pub struct ReportDocument {
    /// Per-(workload × technique) compile reports.
    pub rows: Vec<ReportRow>,
    /// Counters, gauges, and histograms accumulated across the run.
    pub metrics: Option<MetricsSnapshot>,
}

/// Serializes a report-shaped value as pretty-printed JSON — the one
/// serializer behind `--json`, `--report`, and the metrics dump, so
/// every artifact shares a single format.
///
/// # Panics
///
/// Panics if serialization fails (cannot happen for the harness's
/// report types).
pub fn report_json<T: Serialize + ?Sized>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("report values serialize")
}

/// Writes an artifact body to `path` and announces it on stdout.
fn write_artifact(path: &str, body: &str) {
    std::fs::write(path, body).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("(wrote {path})");
}

/// Writes collected compile reports (with the run's metrics snapshot
/// folded in) to the `--report` path if one was given.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn maybe_write_reports(cli: &Cli, rows: &[ReportRow]) {
    if let Some(path) = &cli.report {
        let doc = ReportDocument {
            rows: rows.to_vec(),
            metrics: cli.telemetry.metrics_snapshot(),
        };
        write_artifact(path, &report_json(&doc));
    }
}

/// Writes the run's telemetry spans as a Chrome trace-event JSON file
/// to the `--trace` path if one was given (load the file in
/// `chrome://tracing` or Perfetto).
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn maybe_write_trace(cli: &Cli) {
    if let Some(path) = &cli.trace {
        let body = cli
            .telemetry
            .chrome_trace_json()
            .expect("--trace enables telemetry");
        write_artifact(path, &body);
    }
}

/// Renders rows as an aligned text table on stdout.
pub fn print_rows(title: &str, rows: &[Row]) {
    println!("\n=== {title} ===");
    if rows.is_empty() {
        println!("(no rows)");
        return;
    }
    let metric_names: Vec<&String> = rows[0].metrics.keys().collect();
    print!("{:<16} {:<10}", "workload", "technique");
    for m in &metric_names {
        print!(" {:>14}", m);
    }
    println!();
    for row in rows {
        print!("{:<16} {:<10}", row.workload, row.technique);
        for m in &metric_names {
            let v = row.metrics[*m];
            if v.fract() == 0.0 && v.abs() < 1e15 {
                print!(" {:>14}", v as i64);
            } else {
                print!(" {:>14.4}", v);
            }
        }
        println!();
    }
}

/// Writes rows to the `--json` path if one was given.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn maybe_write_json(cli: &Cli, rows: &[Row]) {
    if let Some(path) = &cli.json {
        write_artifact(path, &report_json(rows));
    }
}

/// Convenience constructor for a metrics map.
pub fn metrics(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
    pairs.iter().map(|(k, v)| ((*k).to_string(), *v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cli_selects_full_suite() {
        let cli = Cli::default();
        assert_eq!(cli.selected_workloads(false).len(), 10);
        // TVD-mode drops the 16-qubit row.
        assert_eq!(cli.selected_workloads(true).len(), 9);
    }

    #[test]
    fn reuse_flags_reach_the_pipeline_config() {
        let off = Cli::default();
        assert!(!off.pipeline_config().reuse.enabled);

        let on = Cli {
            reuse: true,
            ..Cli::default()
        };
        let cfg = on.pipeline_config();
        assert!(cfg.reuse.enabled);
        assert!(cfg.reuse.store.is_none());
        assert!(!cfg.reuse.warm_start);

        let stored = Cli {
            reuse_store: Some("reuse-store".into()),
            reuse_warm_start: true,
            ..Cli::default()
        };
        let cfg = stored.pipeline_config();
        // --reuse-store / --reuse-warm-start imply --reuse even when
        // a library caller skips Cli::parse.
        assert!(cfg.reuse.enabled);
        assert_eq!(
            cfg.reuse.store.as_deref(),
            Some(std::path::Path::new("reuse-store"))
        );
        assert!(cfg.reuse.warm_start);
    }

    #[test]
    fn include_large_restores_heisenberg() {
        let cli = Cli {
            include_large: true,
            ..Cli::default()
        };
        assert_eq!(cli.selected_workloads(true).len(), 10);
    }

    #[test]
    fn workload_filter_applies() {
        let cli = Cli {
            workloads: vec!["qft-5".into(), "adder-4".into()],
            ..Cli::default()
        };
        let rows = cli.selected_workloads(false);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn steps_override_changes_heisenberg_depth() {
        let spec = suite()
            .into_iter()
            .find(|s| s.name == "heisenberg-16")
            .unwrap();
        let small = Cli {
            steps: Some(1),
            ..Cli::default()
        };
        let big = Cli {
            steps: Some(2),
            ..Cli::default()
        };
        assert!(small.build(&spec).len() < big.build(&spec).len());
    }

    #[test]
    fn metrics_helper_builds_map() {
        let m = metrics(&[("a", 1.0), ("b", 2.5)]);
        assert_eq!(m["a"], 1.0);
        assert_eq!(m["b"], 2.5);
    }

    #[test]
    fn budget_flag_bounds_the_pipeline_config() {
        let cli = Cli {
            budget_ms: Some(250),
            ..Cli::default()
        };
        assert!(cli.pipeline_config().budget.is_bounded());
        assert!(!Cli::default().pipeline_config().budget.is_bounded());
    }

    #[test]
    fn inject_flag_parses_to_a_fault_plan() {
        let cli = Cli {
            inject: Some("compose-corrupt:0,compose-timeout".into()),
            ..Cli::default()
        };
        let plan = cli.fault_injector();
        assert!(plan.force_compose_timeout);
        assert_eq!(plan.compose.corrupt_blocks, vec![0]);
        assert!(Cli::default().fault_injector().is_empty());
    }

    #[test]
    fn malformed_inject_spec_yields_typed_error_not_panic() {
        let cli = Cli {
            inject: Some("frobnicate:7".into()),
            ..Cli::default()
        };
        let err = cli.try_fault_injector().unwrap_err();
        assert!(matches!(err, FaultSpecError::UnknownKind { .. }));
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn bad_index_inject_spec_names_the_offending_token() {
        let cli = Cli {
            inject: Some("compose-corrupt:banana".into()),
            ..Cli::default()
        };
        let err = cli.try_fault_injector().unwrap_err();
        assert!(matches!(err, FaultSpecError::BadIndex { .. }));
        assert!(err.to_string().contains("banana"));
    }

    #[test]
    fn supervision_flags_imply_the_supervised_path() {
        assert!(!Cli::default().supervised());
        for cli in [
            Cli {
                jobs: 2,
                ..Cli::default()
            },
            Cli {
                max_retries: 1,
                ..Cli::default()
            },
            Cli {
                resume: true,
                ..Cli::default()
            },
            Cli {
                watchdog_ms: Some(400),
                ..Cli::default()
            },
        ] {
            assert!(cli.supervised());
        }
    }

    #[test]
    fn verify_flag_implies_an_oracle_config_following_the_seed() {
        assert!(Cli::default().verify_config().is_none());
        let cli = Cli {
            verify: true,
            seed: 9,
            ..Cli::default()
        };
        assert_eq!(cli.verify_config().unwrap().seed, 9);
    }

    #[test]
    fn quarantine_dir_defaults_and_overrides() {
        assert_eq!(
            Cli::default().quarantine_dir(),
            std::path::Path::new("quarantine")
        );
        let cli = Cli {
            quarantine: Some("corpus".into()),
            ..Cli::default()
        };
        assert_eq!(cli.quarantine_dir(), std::path::Path::new("corpus"));
    }

    #[test]
    fn trace_flag_implies_supervision_and_appends_geyser() {
        let cli = Cli {
            trace: Some("t.json".into()),
            telemetry: Telemetry::enabled(),
            ..Cli::default()
        };
        assert!(cli.supervised());
        assert_eq!(
            cli.effective_techniques(&[Technique::Baseline]),
            vec![Technique::Baseline, Technique::Geyser],
            "tracing appends Geyser after the binary's defaults"
        );
        // Already-composing defaults gain nothing (no duplicate).
        assert_eq!(cli.effective_techniques(&Technique::NEUTRAL_ATOM).len(), 3);
        // Without --trace the defaults pass through untouched.
        assert_eq!(
            Cli::default().effective_techniques(&[Technique::Baseline]),
            vec![Technique::Baseline]
        );
    }

    #[test]
    fn explicit_techniques_override_beats_the_trace_extension() {
        let cli = Cli {
            trace: Some("t.json".into()),
            techniques: Some(vec![Technique::Superconducting]),
            ..Cli::default()
        };
        assert_eq!(
            cli.effective_techniques(&[Technique::Baseline]),
            vec![Technique::Superconducting]
        );
    }

    #[test]
    fn config_tag_separates_hardware_scenarios() {
        let paper = Cli::default();
        let near = Cli {
            hardware: Some(HardwareSpec::near_term()),
            ..Cli::default()
        };
        assert_ne!(paper.config_tag(), near.config_tag());
        assert!(paper
            .config_tag()
            .ends_with(&format!("h{:016x}", HardwareSpec::paper().digest())));
    }

    #[test]
    fn pipeline_config_carries_the_loaded_spec() {
        let cli = Cli {
            hardware: Some(HardwareSpec::square_diagonal()),
            ..Cli::default()
        };
        assert_eq!(
            cli.pipeline_config().hardware.digest(),
            HardwareSpec::square_diagonal().digest()
        );
        assert!(Cli::default().pipeline_config().hardware.is_paper());
    }

    #[test]
    fn noise_model_follows_the_spec_unless_overridden() {
        let mut spec = HardwareSpec::paper();
        spec.noise = NoiseModel::symmetric(0.02);
        let from_spec = Cli {
            hardware: Some(spec.clone()),
            ..Cli::default()
        };
        assert_eq!(from_spec.noise_model(), NoiseModel::symmetric(0.02));
        // An explicit --noise beats the spec (historical behavior).
        let overridden = Cli {
            hardware: Some(spec),
            noise: 0.005,
            noise_explicit: true,
            ..Cli::default()
        };
        assert_eq!(overridden.noise_model(), NoiseModel::symmetric(0.005));
        // Without a spec the flag's default applies as before.
        assert_eq!(
            Cli::default().noise_model(),
            NoiseModel::symmetric(Cli::default().noise)
        );
    }

    #[test]
    fn hardware_grid_defaults_and_resolves_builtins() {
        let grid = Cli::default().hardware_grid();
        assert_eq!(grid.len(), 2);
        assert!(grid[0].is_paper());
        let cli = Cli {
            specs: vec!["square-diagonal".into(), "paper".into()],
            ..Cli::default()
        };
        let grid = cli.hardware_grid();
        assert_eq!(grid[0].digest(), HardwareSpec::square_diagonal().digest());
        assert!(grid[1].is_paper());
    }

    #[test]
    fn report_document_serializes_explicit_null_keys() {
        // The JSON schema must be stable: keys that are conceptually
        // absent serialize as explicit nulls, never disappear.
        let doc = ReportDocument {
            rows: vec![ReportRow {
                workload: "w".into(),
                technique: "Baseline".into(),
                report: CompileReport::new("Baseline"),
            }],
            metrics: None,
        };
        let json = report_json(&doc);
        assert!(json.contains("\"rows\""));
        assert!(json.contains("\"metrics\": null"));
        assert!(json.contains("\"supervision\": null"));
        assert!(json.contains("\"verification\": null"));
    }

    #[test]
    fn verified_compile_attaches_oracle_stats_to_the_report() {
        // `report: Some` routes around the on-disk cache, so this test
        // leaves no .geyser-cache entries behind.
        let cli = Cli {
            verify: true,
            report: Some("unused.json".into()),
            ..Cli::default()
        };
        let mut program = Circuit::new(3);
        program.h(0).cx(0, 1).cx(1, 2);
        let cfg = PipelineConfig::fast();
        let compiled = compile_techniques(
            &cli,
            "bench-verify-test",
            &program,
            &[Technique::Baseline, Technique::Geyser],
            &cfg,
        );
        for (t, c) in &compiled {
            let v = c
                .report()
                .and_then(|r| r.verification.as_ref())
                .unwrap_or_else(|| panic!("{} run missing verification stats", t.label()));
            assert!(v.equivalent, "{}: {v:?}", t.label());
        }
    }

    #[test]
    fn supervised_compile_attaches_supervision_stats() {
        let cli = Cli {
            jobs: 2,
            max_retries: 1,
            ..Cli::default()
        };
        let mut program = Circuit::new(3);
        program.h(0).cx(0, 1).cx(1, 2).t(2);
        let cfg = PipelineConfig::fast();
        let compiled = compile_techniques(
            &cli,
            "bench-sup-test",
            &program,
            &[Technique::Baseline, Technique::Geyser],
            &cfg,
        );
        assert_eq!(compiled.len(), 2);
        for (t, c) in &compiled {
            let stats = c
                .report()
                .and_then(|r| r.supervision.as_ref())
                .unwrap_or_else(|| panic!("{} run missing supervision stats", t.label()));
            assert_eq!(stats.attempts, 1, "healthy jobs succeed first try");
            assert_eq!(stats.retries, 0);
            assert!(!stats.resumed_from_checkpoint);
        }
    }
}
