//! Process exit codes shared by every bench binary.
//!
//! The harness grew its exit-status conventions one binary at a time;
//! this module is the single authority so sweep scripts and CI can
//! branch on numbers that mean the same thing everywhere:
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | success |
//! | [`FAILURES`] | run completed but found failures (fuzz counterexamples, replay regressions, trace-check defects) |
//! | [`USAGE`] | malformed invocation: unknown flag, bad `--inject` spec, unloadable `--hardware`/`--specs` file |
//! | [`CANCELLED_RESUMABLE`] | a job was cancelled mid-run but left a resumable checkpoint; rerun with `--resume` |
//! | [`VERIFICATION_FAILED`] | a compiled circuit failed the equivalence oracle under `--verify` |
//! | [`CHAOS_INVARIANT`] | a chaos campaign caught the runtime breaking a global invariant |

/// The run completed but found failures (fuzz counterexamples, replay
/// regressions, trace defects).
pub const FAILURES: i32 = 1;

/// Malformed invocation: unknown flag, bad fault spec, unloadable
/// hardware scenario.
pub const USAGE: i32 = 2;

/// A job was cancelled but its checkpoint survived; rerun with
/// `--resume` to continue bit-identically.
pub const CANCELLED_RESUMABLE: i32 = 3;

/// A compiled circuit failed the equivalence oracle under `--verify`.
pub const VERIFICATION_FAILED: i32 = 4;

/// A chaos campaign caught a violated runtime invariant (see
/// `geyser_verify::invariants`).
pub const CHAOS_INVARIANT: i32 = 5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_distinct_and_stable() {
        let codes = [
            FAILURES,
            USAGE,
            CANCELLED_RESUMABLE,
            VERIFICATION_FAILED,
            CHAOS_INVARIANT,
        ];
        for (i, a) in codes.iter().enumerate() {
            assert_eq!(*a, i as i32 + 1, "codes are consecutive from 1");
        }
    }
}
