//! Overload-resilience scorecard for the compile service layer.
//!
//! Usage: `serve --seed S [--arrivals N] [--tenants T] [--fast]
//! [--jobs W] [--json PATH] [--journal PATH [--recover]] [--no-shed]
//! [--inject SPEC]`
//!
//! Replays a seeded open-loop arrival schedule — `--arrivals`
//! submissions from `--tenants` tenants, with a storm phase in which
//! tenant 0 floods — against the supervisor's service layer in virtual
//! time, then prints a per-tenant scorecard: p50/p99 latency, shed
//! counts by typed reason, degraded-tier admissions, and single-flight
//! dedup hits. `--json PATH` writes the full scorecard, which is
//! byte-identical for a given seed on any machine.
//!
//! `--journal PATH` arms the write-ahead job journal: every lifecycle
//! decision is durable before it takes effect, so a `kill -9` mid-run
//! loses nothing acknowledged. Restarting with the same seed plus
//! `--recover` truncates any torn journal tail, replays settled
//! outcomes verbatim, and re-admits acknowledged-but-incomplete jobs
//! exactly once. `--no-shed` (restart-campaign mode) removes
//! deadlines, shedding, and the degraded tier so the recovered
//! completed-job set can be diffed digest-for-digest against an
//! uninjected reference run. The journal faults
//! `kill-mid-journal-append:N`, `torn-journal-tail`, and
//! `kill-mid-compaction` compose via `--inject`.
//!
//! The four service-layer invariants from
//! [`geyser_verify::invariants`] are machine-checked over the drained
//! campaign:
//!
//! 6. every submission resolves to a recognized terminal outcome;
//! 7. every shed carries a typed rejection reason (and only sheds do);
//! 8. sampled dedup-served results are bit-identical to solo compiles;
//! 9. no bystander tenant's p99 exceeds 3× its fair-share baseline
//!    while tenant 0 floods.
//!
//! Exits 0 when every invariant held, or prints each violation and
//! exits [`exit_codes::CHAOS_INVARIANT`].

use geyser_bench::{exit_codes, report_json, serve::run_serve, Cli};

fn main() {
    let cli = Cli::parse();
    if cli.tenants < 2 {
        eprintln!("error: --tenants must be at least 2 (tenant 0 floods, the rest watch)");
        std::process::exit(exit_codes::USAGE);
    }
    if cli.arrivals == 0 {
        eprintln!("error: --arrivals must be at least 1");
        std::process::exit(exit_codes::USAGE);
    }
    if cli.recover && cli.journal.is_none() {
        eprintln!("error: --recover needs --journal PATH (the file to replay)");
        std::process::exit(exit_codes::USAGE);
    }
    let card = run_serve(&cli);
    if card.halted {
        // An injected journal kill ended this incarnation mid-run;
        // the journal survives for `--recover`.
        println!(
            "serve: halted by injected journal kill after {} completion(s) — restart with --recover",
            card.completions.len()
        );
        return;
    }
    if card.recovered_settled > 0 {
        println!(
            "serve: recovery replayed {} settled outcome(s) from the journal ({} rerun(s) of settled work)",
            card.recovered_settled,
            card.settled_reruns.len()
        );
    }

    println!(
        "serve: seed {} — {} arrival(s), {} tenant(s), makespan {}ms, \
         {} unique compile(s), mean cost {}ms",
        card.seed,
        card.arrivals,
        card.tenants,
        card.makespan_ms,
        card.unique_compiles,
        card.mean_cost_ms
    );
    println!(
        "service: admitted={} shed={} (full={} throttled={} deadline={} stale={}) \
         degraded={} dedup: attached={} broadcasts={} reelections={}",
        card.service.admitted,
        card.service.shed,
        card.service.shed_queue_full,
        card.service.shed_throttled,
        card.service.shed_deadline,
        card.service.shed_stale,
        card.service.degraded,
        card.service.dedup_attached,
        card.service.dedup_broadcasts,
        card.service.dedup_reelections
    );
    println!(
        "{:<10} {:>5} {:>9} {:>8} {:>8} {:>7} {:>7} {:>7} {:>9} {:>9}",
        "tenant",
        "flood",
        "submitted",
        "done",
        "rejected",
        "degr",
        "dedup",
        "p50",
        "p99",
        "storm-p99"
    );
    for t in &card.tenant_cards {
        println!(
            "{:<10} {:>5} {:>9} {:>8} {:>8} {:>7} {:>7} {:>7} {:>9} {:>9}",
            t.tenant,
            if t.flooding { "yes" } else { "no" },
            t.submitted,
            t.completed,
            t.rejected,
            t.degraded,
            t.deduped,
            t.p50_ms,
            t.p99_ms,
            t.storm_p99_ms
        );
    }

    if let Some(path) = &cli.json {
        std::fs::write(path, report_json(&card))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("(wrote {path})");
    }

    if !card.violations.is_empty() {
        for v in &card.violations {
            eprintln!("error: {v}");
        }
        std::process::exit(exit_codes::CHAOS_INVARIANT);
    }
}
