//! Overload-resilience scorecard for the compile service layer.
//!
//! Usage: `serve --seed S [--arrivals N] [--tenants T] [--fast]
//! [--jobs W] [--json PATH]`
//!
//! Replays a seeded open-loop arrival schedule — `--arrivals`
//! submissions from `--tenants` tenants, with a storm phase in which
//! tenant 0 floods — against the supervisor's service layer in virtual
//! time, then prints a per-tenant scorecard: p50/p99 latency, shed
//! counts by typed reason, degraded-tier admissions, and single-flight
//! dedup hits. `--json PATH` writes the full scorecard, which is
//! byte-identical for a given seed on any machine.
//!
//! The four service-layer invariants from
//! [`geyser_verify::invariants`] are machine-checked over the drained
//! campaign:
//!
//! 6. every submission resolves to a recognized terminal outcome;
//! 7. every shed carries a typed rejection reason (and only sheds do);
//! 8. sampled dedup-served results are bit-identical to solo compiles;
//! 9. no bystander tenant's p99 exceeds 3× its fair-share baseline
//!    while tenant 0 floods.
//!
//! Exits 0 when every invariant held, or prints each violation and
//! exits [`exit_codes::CHAOS_INVARIANT`].

use geyser_bench::{exit_codes, report_json, serve::run_serve, Cli};

fn main() {
    let cli = Cli::parse();
    if cli.tenants < 2 {
        eprintln!("error: --tenants must be at least 2 (tenant 0 floods, the rest watch)");
        std::process::exit(exit_codes::USAGE);
    }
    if cli.arrivals == 0 {
        eprintln!("error: --arrivals must be at least 1");
        std::process::exit(exit_codes::USAGE);
    }
    let card = run_serve(&cli);

    println!(
        "serve: seed {} — {} arrival(s), {} tenant(s), makespan {}ms, \
         {} unique compile(s), mean cost {}ms",
        card.seed,
        card.arrivals,
        card.tenants,
        card.makespan_ms,
        card.unique_compiles,
        card.mean_cost_ms
    );
    println!(
        "service: admitted={} shed={} (full={} throttled={} deadline={} stale={}) \
         degraded={} dedup: attached={} broadcasts={} reelections={}",
        card.service.admitted,
        card.service.shed,
        card.service.shed_queue_full,
        card.service.shed_throttled,
        card.service.shed_deadline,
        card.service.shed_stale,
        card.service.degraded,
        card.service.dedup_attached,
        card.service.dedup_broadcasts,
        card.service.dedup_reelections
    );
    println!(
        "{:<10} {:>5} {:>9} {:>8} {:>8} {:>7} {:>7} {:>7} {:>9} {:>9}",
        "tenant",
        "flood",
        "submitted",
        "done",
        "rejected",
        "degr",
        "dedup",
        "p50",
        "p99",
        "storm-p99"
    );
    for t in &card.tenant_cards {
        println!(
            "{:<10} {:>5} {:>9} {:>8} {:>8} {:>7} {:>7} {:>7} {:>9} {:>9}",
            t.tenant,
            if t.flooding { "yes" } else { "no" },
            t.submitted,
            t.completed,
            t.rejected,
            t.degraded,
            t.deduped,
            t.p50_ms,
            t.p99_ms,
            t.storm_p99_ms
        );
    }

    if let Some(path) = &cli.json {
        std::fs::write(path, report_json(&card))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("(wrote {path})");
    }

    if !card.violations.is_empty() {
        for v in &card.violations {
            eprintln!("error: {v}");
        }
        std::process::exit(exit_codes::CHAOS_INVARIANT);
    }
}
