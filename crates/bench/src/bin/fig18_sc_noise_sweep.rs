//! Figure 18: the Figure-16 superconducting-vs-neutral-atom TVD
//! comparison repeated at 0.05% and 0.5% error rates.

use geyser::{evaluate_tvd, Technique};
use geyser_bench::{
    compile_techniques, maybe_write_json, maybe_write_trace, metrics, print_rows, Cli, Row,
};
use geyser_sim::NoiseModel;

fn main() {
    let cli = Cli::parse();
    let cfg = cli.pipeline_config();
    let techniques = cli.effective_techniques(&[Technique::Superconducting, Technique::Geyser]);
    let mut rows = Vec::new();
    for spec in cli.selected_workloads(true) {
        let program = cli.build(&spec);
        let compiled = compile_techniques(&cli, spec.name, &program, &techniques, &cfg);
        for rate in [0.0005, 0.005] {
            let noise = NoiseModel::symmetric(rate);
            for (t, c) in &compiled {
                let report = evaluate_tvd(c, &program, &noise, cli.trajectories, cli.seed);
                rows.push(Row {
                    workload: format!("{}@{:.2}%", spec.name, rate * 100.0),
                    technique: t.label().to_string(),
                    metrics: metrics(&[("tvd", report.tvd_to_ideal)]),
                });
            }
        }
    }
    print_rows(
        "Figure 18: superconducting vs Geyser across error rates (0.05% / 0.5%)",
        &rows,
    );
    maybe_write_json(&cli, &rows);
    maybe_write_trace(&cli);
}
