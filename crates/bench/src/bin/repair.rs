//! `fsck` for the on-disk stores: scans a store directory (including
//! the shared cache's `objects/` shards), verifies every record's
//! frame (length prefix + FNV checksum) and payload schema,
//! quarantines anything corrupt to a `.corrupt-<digest>` sidecar, and
//! reports what it found.
//!
//! Usage: `repair [--store DIR] [--prune] [--hardware PATH]
//! [--json PATH]`
//!
//! * `--store DIR` — directory to scan (default `.geyser-cache`, the
//!   shared home of the bench results cache, composition
//!   checkpoints, and the cross-job reuse store under `reuse/`).
//! * `--prune` — additionally reclaim debris: delete quarantine
//!   sidecars, stale `.tmp` files from interrupted writes, and cache
//!   entries whose schema version is stale (guaranteed misses), and
//!   truncate the torn tail a killed writer left on a write-ahead
//!   journal (the same truncation recovery performs on open; bytes
//!   reclaimed are reported per journal). Sidecars the scan *keeps* —
//!   every sidecar without `--prune`, plus any whose removal failed —
//!   are reported with their on-disk size and age, so operators can
//!   see how much quarantine evidence is accumulating before deciding
//!   to reclaim it. Reuse-store entries whose hardware digest or
//!   composition-config hash no longer matches the machine being
//!   repaired (see `--hardware`) are stale — guaranteed skips for
//!   this machine — and are likewise reclaimed only under `--prune`,
//!   with kept/reclaimed bytes reported in their own section.
//! * `--hardware PATH` — the hardware spec the reuse staleness check
//!   binds to (default: the paper machine). Entries are *current*
//!   when their hardware digest matches and their config hash is one
//!   of the two blessed pipeline configs (`fast`/`paper`).
//! * `--json PATH` — write the scan report as JSON.
//!
//! Classification mirrors the loaders exactly: `ckpt-*` files go
//! through the checkpoint loader, `*.journal` files through the
//! journal scanner (a torn tail is reclaimable, mid-file corruption
//! is not), the shared cache's `generation` header through the frame
//! check, and everything else `.json` through the cache frame +
//! schema check, so `repair` can never disagree with the pipeline
//! about what is loadable. A `compaction.lock` is reported but never
//! touched — only a compactor may judge it stale. Corrupt files are
//! moved aside with the same structured warning (path + digest) and
//! `store_corrupt_total` accounting the runtime uses.
//!
//! Exits 0 when every surviving file is healthy or safely
//! quarantined, [`exit_codes::FAILURES`] when a corrupt file could
//! not be moved aside (it would still poison the next run), and
//! [`exit_codes::USAGE`] on bad arguments.

use std::path::{Path, PathBuf};

use geyser::store::{
    is_corrupt_sidecar, quarantine_corrupt, read_record_file, truncate_torn_tail, StoreReadError,
};
use geyser::{HardwareSpec, PipelineConfig, Telemetry};
use geyser_bench::{
    classify_cache_payload, exit_codes, report_json, CachePayloadStatus, CACHE_COMPACTION_LOCK,
    CACHE_GENERATION_FILE,
};
use geyser_reuse::{is_reuse_entry, parse_reuse_record, reuse_config_hash};
use geyser_supervisor::{
    load_checkpoint_quarantining, load_journal_events, CheckpointError, JournalError,
};
use serde::Serialize;

/// What the scan decided about one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
enum FileStatus {
    /// Frame and payload verified.
    Healthy,
    /// Parses, but its schema version guarantees a cache miss.
    StaleVersion,
    /// A `.corrupt-<digest>` sidecar from an earlier quarantine.
    Sidecar,
    /// A stray `.tmp` from an interrupted atomic write.
    StaleTmp,
    /// A write-ahead job journal, every frame intact.
    Journal,
    /// A journal whose last frame is torn (killed writer); the tail
    /// is reclaimable, everything before it replays.
    JournalTorn,
    /// The shared cache's generation header, frame intact.
    GenerationHeader,
    /// A reuse-store entry bound to the current hardware/config.
    ReuseEntry,
    /// A healthy reuse-store entry bound to another hardware digest or
    /// config hash — a guaranteed skip on this machine, reclaimable
    /// with `--prune`.
    ReuseStale,
    /// A compaction lock file; possibly held by a live compactor, so
    /// never touched.
    Lock,
    /// Corrupt and moved aside by this scan.
    Quarantined,
    /// Corrupt but the quarantine rename failed; still in place.
    QuarantineFailed,
    /// Unreadable (permissions, vanished mid-scan).
    Unreadable,
    /// Not a store file; left alone.
    Unknown,
}

impl FileStatus {
    fn label(self) -> &'static str {
        match self {
            FileStatus::Healthy => "healthy",
            FileStatus::StaleVersion => "stale-version",
            FileStatus::Sidecar => "sidecar",
            FileStatus::StaleTmp => "stale-tmp",
            FileStatus::Journal => "journal",
            FileStatus::JournalTorn => "journal-torn",
            FileStatus::GenerationHeader => "generation-header",
            FileStatus::ReuseEntry => "reuse-entry",
            FileStatus::ReuseStale => "reuse-stale",
            FileStatus::Lock => "lock",
            FileStatus::Quarantined => "quarantined",
            FileStatus::QuarantineFailed => "quarantine-failed",
            FileStatus::Unreadable => "unreadable",
            FileStatus::Unknown => "unknown",
        }
    }
}

#[derive(Serialize)]
struct FileReport {
    path: String,
    status: FileStatus,
    /// Whether `--prune` deleted the file (or, for a torn journal,
    /// truncated its tail).
    pruned: bool,
    /// On-disk size, reported for quarantine sidecars and reuse-store
    /// entries (`null` otherwise).
    bytes: Option<u64>,
    /// Seconds since last modification, reported for quarantine
    /// sidecars (`null` otherwise) — how long the evidence has been
    /// sitting there.
    age_secs: Option<u64>,
    /// Torn-tail bytes on a journal: reclaimable without `--prune`,
    /// reclaimed with it (`null` for non-journals).
    torn_bytes: Option<u64>,
    /// Intact events the journal scanner replayed (`null` for
    /// non-journals).
    journal_events: Option<u64>,
}

#[derive(Serialize)]
struct RepairReport {
    store: String,
    scanned: usize,
    healthy: usize,
    quarantined: usize,
    quarantine_failed: usize,
    pruned: usize,
    /// Quarantine sidecars still on disk after this scan (evidence
    /// kept, not pruned).
    sidecars_kept: usize,
    /// Total bytes those kept sidecars occupy.
    sidecar_bytes_total: u64,
    /// Age in seconds of the oldest kept sidecar (0 when none).
    sidecar_oldest_age_secs: u64,
    /// Journals scanned (healthy or torn).
    journals: usize,
    /// Torn-tail bytes found across all journals.
    journal_torn_bytes: u64,
    /// Torn-tail bytes actually truncated away by `--prune`.
    journal_bytes_reclaimed: u64,
    /// Reuse-store entries bound to the current hardware/config.
    reuse_entries: usize,
    /// Reuse-store entries bound elsewhere (guaranteed skips here).
    reuse_stale: usize,
    /// Bytes occupied by reuse entries still on disk after this scan.
    reuse_bytes_kept: u64,
    /// Bytes of stale reuse entries reclaimed by `--prune`.
    reuse_bytes_reclaimed: u64,
    /// Final `store_corrupt_total` counter value for this scan.
    store_corrupt_total: u64,
    files: Vec<FileReport>,
}

struct Args {
    store: PathBuf,
    prune: bool,
    hardware: Option<PathBuf>,
    json: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!("usage: repair [--store DIR] [--prune] [--hardware PATH] [--json PATH]");
    std::process::exit(exit_codes::USAGE);
}

fn parse_args() -> Args {
    let mut args = Args {
        store: PathBuf::from(".geyser-cache"),
        prune: false,
        hardware: None,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--store" => match it.next() {
                Some(dir) => args.store = PathBuf::from(dir),
                None => usage(),
            },
            "--prune" => args.prune = true,
            "--hardware" => match it.next() {
                Some(path) => args.hardware = Some(PathBuf::from(path)),
                None => usage(),
            },
            "--json" => match it.next() {
                Some(path) => args.json = Some(PathBuf::from(path)),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag '{other}'");
                usage();
            }
        }
    }
    args
}

/// The hardware/config binding reuse entries are judged against: the
/// repaired machine's hardware digest plus the config hashes of the
/// two blessed pipeline configurations. Anything else is stale *for
/// this machine* — still loadable, but a guaranteed skip.
struct ReuseBinding {
    hardware_digest: u64,
    config_hashes: [u64; 2],
}

impl ReuseBinding {
    fn new(hardware: &HardwareSpec) -> Self {
        let hash = |cfg: &PipelineConfig| {
            let c = cfg.composition;
            reuse_config_hash(
                c.epsilon,
                c.max_layers,
                c.anneal_iters,
                c.restarts,
                c.retry_attempts,
            )
        };
        ReuseBinding {
            hardware_digest: hardware.digest(),
            config_hashes: [
                hash(&PipelineConfig::fast()),
                hash(&PipelineConfig::paper()),
            ],
        }
    }

    fn is_current(&self, hardware_digest: u64, config_hash: u64) -> bool {
        hardware_digest == self.hardware_digest && self.config_hashes.contains(&config_hash)
    }
}

/// Size and age (seconds since last modification) of a quarantine
/// sidecar. Either is `None` when the filesystem withholds it — a
/// vanished file or a platform without mtime support degrades to an
/// unsized, age-unknown entry rather than a scan failure.
fn sidecar_stats(path: &Path) -> (Option<u64>, Option<u64>) {
    let Ok(meta) = std::fs::metadata(path) else {
        return (None, None);
    };
    let age_secs = meta
        .modified()
        .ok()
        .and_then(|mtime| std::time::SystemTime::now().duration_since(mtime).ok())
        .map(|age| age.as_secs());
    (Some(meta.len()), age_secs)
}

/// What the scan learned about one file beyond its status.
struct Scan {
    status: FileStatus,
    /// Torn-tail bytes (journals only).
    torn_bytes: Option<u64>,
    /// Intact events replayed (journals only).
    journal_events: Option<u64>,
}

impl Scan {
    fn plain(status: FileStatus) -> Scan {
        Scan {
            status,
            torn_bytes: None,
            journal_events: None,
        }
    }
}

/// Classifies one store file, quarantining corruption exactly like
/// the pipeline's own loaders would.
fn scan_file(path: &Path, binding: &ReuseBinding, telemetry: &Telemetry) -> Scan {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    if is_corrupt_sidecar(path) {
        return Scan::plain(FileStatus::Sidecar);
    }
    if name.ends_with(".tmp") {
        return Scan::plain(FileStatus::StaleTmp);
    }
    if name == CACHE_COMPACTION_LOCK {
        return Scan::plain(FileStatus::Lock);
    }
    if name == CACHE_GENERATION_FILE {
        // The shared cache's generation header: one framed record. A
        // corrupt header is quarantined; the next cache open heals it
        // from the surviving entries.
        return match read_record_file(path) {
            Ok(_) => Scan::plain(FileStatus::GenerationHeader),
            Err(StoreReadError::Corrupt(_)) => {
                let bytes = std::fs::read(path).unwrap_or_default();
                quarantine_corrupt(
                    path,
                    &bytes,
                    "generation header corrupt",
                    "cache",
                    telemetry,
                );
                Scan::plain(if path.exists() {
                    FileStatus::QuarantineFailed
                } else {
                    FileStatus::Quarantined
                })
            }
            Err(StoreReadError::Io(_)) => Scan::plain(FileStatus::Unreadable),
        };
    }
    if name.ends_with(".journal") {
        // Write-ahead job journal: scan through the same loader
        // recovery uses. A torn tail is a reclaimable kill artifact;
        // mid-file corruption means the journal cannot be trusted and
        // is quarantined whole.
        return match load_journal_events(path) {
            Ok((events, torn_bytes)) => Scan {
                status: if torn_bytes > 0 {
                    FileStatus::JournalTorn
                } else {
                    FileStatus::Journal
                },
                torn_bytes: Some(torn_bytes),
                journal_events: Some(events.len() as u64),
            },
            Err(JournalError::Corrupt { .. }) => {
                let bytes = std::fs::read(path).unwrap_or_default();
                quarantine_corrupt(
                    path,
                    &bytes,
                    "journal corrupt mid-file",
                    "journal",
                    telemetry,
                );
                Scan::plain(if path.exists() {
                    FileStatus::QuarantineFailed
                } else {
                    FileStatus::Quarantined
                })
            }
            Err(JournalError::Io(_)) => Scan::plain(FileStatus::Unreadable),
        };
    }
    if !name.ends_with(".json") {
        return Scan::plain(FileStatus::Unknown);
    }
    if is_reuse_entry(path) {
        // Cross-job reuse entry: frame first, then the reuse schema
        // (the same parse `load_reuse_dir` runs), then the staleness
        // check against the repaired machine's binding.
        return Scan::plain(match read_record_file(path) {
            Ok(payload) => match parse_reuse_record(payload.text()) {
                Ok(record) if binding.is_current(record.hardware_digest, record.config_hash) => {
                    FileStatus::ReuseEntry
                }
                Ok(_) => FileStatus::ReuseStale,
                Err(reason) => {
                    let bytes = std::fs::read(path).unwrap_or_default();
                    quarantine_corrupt(path, &bytes, &reason, "reuse", telemetry);
                    if path.exists() {
                        FileStatus::QuarantineFailed
                    } else {
                        FileStatus::Quarantined
                    }
                }
            },
            Err(StoreReadError::Corrupt(_)) => {
                let bytes = std::fs::read(path).unwrap_or_default();
                quarantine_corrupt(path, &bytes, "record frame corrupt", "reuse", telemetry);
                if path.exists() {
                    FileStatus::QuarantineFailed
                } else {
                    FileStatus::Quarantined
                }
            }
            Err(StoreReadError::Io(_)) => FileStatus::Unreadable,
        });
    }
    if name.starts_with("ckpt-") {
        // Composition checkpoint: the loader verifies the frame,
        // parses the JSON, checks the schema version, and quarantines
        // on any corruption.
        return Scan::plain(match load_checkpoint_quarantining(path, telemetry) {
            Ok(_) => FileStatus::Healthy,
            Err(CheckpointError::Corrupt { .. }) => {
                if path.exists() {
                    FileStatus::QuarantineFailed
                } else {
                    FileStatus::Quarantined
                }
            }
            Err(CheckpointError::Io(_)) => FileStatus::Unreadable,
        });
    }
    // Results-cache entry: frame first, then the cache schema.
    Scan::plain(match read_record_file(path) {
        Ok(payload) => match classify_cache_payload(payload.text()) {
            CachePayloadStatus::Current => FileStatus::Healthy,
            CachePayloadStatus::StaleVersion => FileStatus::StaleVersion,
            CachePayloadStatus::Malformed => {
                let bytes = std::fs::read(path).unwrap_or_default();
                quarantine_corrupt(
                    path,
                    &bytes,
                    "cache JSON does not parse",
                    "cache",
                    telemetry,
                );
                if path.exists() {
                    FileStatus::QuarantineFailed
                } else {
                    FileStatus::Quarantined
                }
            }
        },
        Err(StoreReadError::Corrupt(_)) => {
            let bytes = std::fs::read(path).unwrap_or_default();
            quarantine_corrupt(path, &bytes, "record frame corrupt", "cache", telemetry);
            if path.exists() {
                FileStatus::QuarantineFailed
            } else {
                FileStatus::Quarantined
            }
        }
        Err(StoreReadError::Io(_)) => FileStatus::Unreadable,
    })
}

/// Collects every file under `dir`, recursing into subdirectories
/// (the shared cache's `objects/` shards). Deterministic: the final
/// list is sorted by path.
fn collect_files(dir: &Path, out: &mut Vec<PathBuf>) {
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                collect_files(&path, out);
            } else if path.is_file() {
                out.push(path);
            }
        }
    }
}

fn main() {
    let args = parse_args();
    let telemetry = Telemetry::enabled();
    let hardware = match &args.hardware {
        Some(path) => match HardwareSpec::load(path) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("error: cannot load hardware spec {}: {e}", path.display());
                std::process::exit(exit_codes::USAGE);
            }
        },
        None => HardwareSpec::paper(),
    };
    let binding = ReuseBinding::new(&hardware);

    if !args.store.is_dir() {
        eprintln!(
            "error: cannot scan {}: not a directory",
            args.store.display()
        );
        std::process::exit(exit_codes::USAGE);
    }
    let mut paths: Vec<PathBuf> = Vec::new();
    collect_files(&args.store, &mut paths);
    paths.sort();

    let mut files = Vec::new();
    let mut journal_bytes_reclaimed = 0u64;
    for path in &paths {
        let scan = scan_file(path, &binding, &telemetry);
        let status = scan.status;
        // Quarantine evidence and reuse entries are sized (and aged,
        // for sidecars) *before* any prune so the report can say what
        // was reclaimed vs. what is still accumulating on disk.
        let (bytes, age_secs) = match status {
            FileStatus::Sidecar => sidecar_stats(path),
            FileStatus::ReuseEntry | FileStatus::ReuseStale => (sidecar_stats(path).0, None),
            _ => (None, None),
        };
        // Debris is only reclaimed on request: sidecars are evidence,
        // stale .tmp files are harmless, stale-version cache entries
        // and stale reuse entries are merely guaranteed misses/skips.
        // A torn journal is not deleted but truncated — exactly what
        // recovery's open would do — so the intact prefix stays
        // replayable.
        let reclaimable = matches!(
            status,
            FileStatus::Sidecar
                | FileStatus::StaleTmp
                | FileStatus::StaleVersion
                | FileStatus::ReuseStale
        );
        let pruned = if args.prune && status == FileStatus::JournalTorn {
            match truncate_torn_tail(path) {
                Ok(reclaimed) => {
                    journal_bytes_reclaimed += reclaimed;
                    true
                }
                Err(_) => false,
            }
        } else {
            args.prune && reclaimable && std::fs::remove_file(path).is_ok()
        };
        // Quarantine renames the file, so report the original name —
        // relative to the store root so `objects/` shards stay
        // distinguishable.
        let rel = path
            .strip_prefix(&args.store)
            .map(|p| p.to_string_lossy().into_owned())
            .unwrap_or_else(|_| path.display().to_string());
        match (status, bytes, age_secs, pruned) {
            (FileStatus::Sidecar, Some(b), Some(age), false) => {
                println!("{rel}: {} (kept, {b} bytes, {age}s old)", status.label());
            }
            (FileStatus::Journal, _, _, _) => println!(
                "{rel}: {} ({} event(s))",
                status.label(),
                scan.journal_events.unwrap_or(0)
            ),
            (FileStatus::JournalTorn, _, _, true) => println!(
                "{rel}: {} ({} event(s) intact, {} torn byte(s) reclaimed)",
                status.label(),
                scan.journal_events.unwrap_or(0),
                scan.torn_bytes.unwrap_or(0)
            ),
            (FileStatus::JournalTorn, _, _, false) => println!(
                "{rel}: {} ({} event(s) intact, {} torn byte(s) reclaimable)",
                status.label(),
                scan.journal_events.unwrap_or(0),
                scan.torn_bytes.unwrap_or(0)
            ),
            _ => println!(
                "{rel}: {}{}",
                status.label(),
                if pruned { " (pruned)" } else { "" }
            ),
        }
        files.push(FileReport {
            path: rel,
            status,
            pruned,
            bytes,
            age_secs,
            torn_bytes: scan.torn_bytes,
            journal_events: scan.journal_events,
        });
    }

    let kept_sidecars: Vec<&FileReport> = files
        .iter()
        .filter(|f| f.status == FileStatus::Sidecar && !f.pruned)
        .collect();
    let sidecar_bytes_total = kept_sidecars.iter().filter_map(|f| f.bytes).sum::<u64>();
    let sidecar_oldest_age_secs = kept_sidecars
        .iter()
        .filter_map(|f| f.age_secs)
        .max()
        .unwrap_or(0);
    let sidecars_kept = kept_sidecars.len();

    let reuse_entries = files
        .iter()
        .filter(|f| f.status == FileStatus::ReuseEntry)
        .count();
    let reuse_stale = files
        .iter()
        .filter(|f| f.status == FileStatus::ReuseStale)
        .count();
    let reuse_bytes_kept = files
        .iter()
        .filter(|f| {
            matches!(f.status, FileStatus::ReuseEntry | FileStatus::ReuseStale) && !f.pruned
        })
        .filter_map(|f| f.bytes)
        .sum::<u64>();
    let reuse_bytes_reclaimed = files
        .iter()
        .filter(|f| f.status == FileStatus::ReuseStale && f.pruned)
        .filter_map(|f| f.bytes)
        .sum::<u64>();

    let report = RepairReport {
        store: args.store.display().to_string(),
        scanned: files.len(),
        healthy: files
            .iter()
            .filter(|f| f.status == FileStatus::Healthy)
            .count(),
        quarantined: files
            .iter()
            .filter(|f| f.status == FileStatus::Quarantined)
            .count(),
        quarantine_failed: files
            .iter()
            .filter(|f| f.status == FileStatus::QuarantineFailed)
            .count(),
        pruned: files.iter().filter(|f| f.pruned).count(),
        sidecars_kept,
        sidecar_bytes_total,
        sidecar_oldest_age_secs,
        journals: files
            .iter()
            .filter(|f| matches!(f.status, FileStatus::Journal | FileStatus::JournalTorn))
            .count(),
        journal_torn_bytes: files.iter().filter_map(|f| f.torn_bytes).sum(),
        journal_bytes_reclaimed,
        reuse_entries,
        reuse_stale,
        reuse_bytes_kept,
        reuse_bytes_reclaimed,
        store_corrupt_total: telemetry
            .counter_value(geyser::store::STORE_CORRUPT_COUNTER)
            .unwrap_or(0),
        files,
    };
    println!(
        "repair: {} — {} file(s), {} healthy, {} quarantined, {} pruned",
        report.store, report.scanned, report.healthy, report.quarantined, report.pruned
    );
    if report.sidecars_kept > 0 {
        println!(
            "repair: keeping {} quarantine sidecar(s), {} byte(s) total, oldest {}s",
            report.sidecars_kept, report.sidecar_bytes_total, report.sidecar_oldest_age_secs
        );
    }
    if report.journals > 0 {
        println!(
            "repair: {} journal(s), {} torn byte(s) found, {} reclaimed",
            report.journals, report.journal_torn_bytes, report.journal_bytes_reclaimed
        );
    }
    if report.reuse_entries + report.reuse_stale > 0 {
        println!(
            "repair: {} reuse entr{} current, {} stale, {} byte(s) kept, {} reclaimed",
            report.reuse_entries,
            if report.reuse_entries == 1 {
                "y"
            } else {
                "ies"
            },
            report.reuse_stale,
            report.reuse_bytes_kept,
            report.reuse_bytes_reclaimed
        );
    }

    if let Some(path) = &args.json {
        std::fs::write(path, report_json(&report)).unwrap_or_else(|e| {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(exit_codes::FAILURES);
        });
        println!("(wrote {})", path.display());
    }

    if report.quarantine_failed > 0 {
        eprintln!(
            "error: {} corrupt file(s) could not be quarantined and remain in place",
            report.quarantine_failed
        );
        std::process::exit(exit_codes::FAILURES);
    }
}
