//! `fsck` for the on-disk stores: scans a store directory, verifies
//! every record's frame (length prefix + FNV checksum) and payload
//! schema, quarantines anything corrupt to a `.corrupt-<digest>`
//! sidecar, and reports what it found.
//!
//! Usage: `repair [--store DIR] [--prune] [--json PATH]`
//!
//! * `--store DIR` — directory to scan (default `.geyser-cache`, the
//!   shared home of the bench results cache and composition
//!   checkpoints).
//! * `--prune` — additionally delete reclaimable debris: quarantine
//!   sidecars, stale `.tmp` files from interrupted writes, and cache
//!   entries whose schema version is stale (guaranteed misses).
//!   Sidecars the scan *keeps* — every sidecar without `--prune`, plus
//!   any whose removal failed — are reported with their on-disk size
//!   and age, so operators can see how much quarantine evidence is
//!   accumulating before deciding to reclaim it.
//! * `--json PATH` — write the scan report as JSON.
//!
//! Classification mirrors the loaders exactly: `ckpt-*` files go
//! through the checkpoint loader, everything else `.json` through the
//! cache frame + schema check, so `repair` can never disagree with
//! the pipeline about what is loadable. Corrupt files are moved
//! aside with the same structured warning (path + digest) and
//! `store_corrupt_total` accounting the runtime uses.
//!
//! Exits 0 when every surviving file is healthy or safely
//! quarantined, [`exit_codes::FAILURES`] when a corrupt file could
//! not be moved aside (it would still poison the next run), and
//! [`exit_codes::USAGE`] on bad arguments.

use std::path::{Path, PathBuf};

use geyser::store::{is_corrupt_sidecar, quarantine_corrupt, read_record_file, StoreReadError};
use geyser::Telemetry;
use geyser_bench::{classify_cache_payload, exit_codes, report_json, CachePayloadStatus};
use geyser_supervisor::{load_checkpoint_quarantining, CheckpointError};
use serde::Serialize;

/// What the scan decided about one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
enum FileStatus {
    /// Frame and payload verified.
    Healthy,
    /// Parses, but its schema version guarantees a cache miss.
    StaleVersion,
    /// A `.corrupt-<digest>` sidecar from an earlier quarantine.
    Sidecar,
    /// A stray `.tmp` from an interrupted atomic write.
    StaleTmp,
    /// Corrupt and moved aside by this scan.
    Quarantined,
    /// Corrupt but the quarantine rename failed; still in place.
    QuarantineFailed,
    /// Unreadable (permissions, vanished mid-scan).
    Unreadable,
    /// Not a store file; left alone.
    Unknown,
}

impl FileStatus {
    fn label(self) -> &'static str {
        match self {
            FileStatus::Healthy => "healthy",
            FileStatus::StaleVersion => "stale-version",
            FileStatus::Sidecar => "sidecar",
            FileStatus::StaleTmp => "stale-tmp",
            FileStatus::Quarantined => "quarantined",
            FileStatus::QuarantineFailed => "quarantine-failed",
            FileStatus::Unreadable => "unreadable",
            FileStatus::Unknown => "unknown",
        }
    }
}

#[derive(Serialize)]
struct FileReport {
    path: String,
    status: FileStatus,
    /// Whether `--prune` deleted the file.
    pruned: bool,
    /// On-disk size, reported for quarantine sidecars (`null`
    /// otherwise).
    bytes: Option<u64>,
    /// Seconds since last modification, reported for quarantine
    /// sidecars (`null` otherwise) — how long the evidence has been
    /// sitting there.
    age_secs: Option<u64>,
}

#[derive(Serialize)]
struct RepairReport {
    store: String,
    scanned: usize,
    healthy: usize,
    quarantined: usize,
    quarantine_failed: usize,
    pruned: usize,
    /// Quarantine sidecars still on disk after this scan (evidence
    /// kept, not pruned).
    sidecars_kept: usize,
    /// Total bytes those kept sidecars occupy.
    sidecar_bytes_total: u64,
    /// Age in seconds of the oldest kept sidecar (0 when none).
    sidecar_oldest_age_secs: u64,
    /// Final `store_corrupt_total` counter value for this scan.
    store_corrupt_total: u64,
    files: Vec<FileReport>,
}

struct Args {
    store: PathBuf,
    prune: bool,
    json: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!("usage: repair [--store DIR] [--prune] [--json PATH]");
    std::process::exit(exit_codes::USAGE);
}

fn parse_args() -> Args {
    let mut args = Args {
        store: PathBuf::from(".geyser-cache"),
        prune: false,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--store" => match it.next() {
                Some(dir) => args.store = PathBuf::from(dir),
                None => usage(),
            },
            "--prune" => args.prune = true,
            "--json" => match it.next() {
                Some(path) => args.json = Some(PathBuf::from(path)),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag '{other}'");
                usage();
            }
        }
    }
    args
}

/// Size and age (seconds since last modification) of a quarantine
/// sidecar. Either is `None` when the filesystem withholds it — a
/// vanished file or a platform without mtime support degrades to an
/// unsized, age-unknown entry rather than a scan failure.
fn sidecar_stats(path: &Path) -> (Option<u64>, Option<u64>) {
    let Ok(meta) = std::fs::metadata(path) else {
        return (None, None);
    };
    let age_secs = meta
        .modified()
        .ok()
        .and_then(|mtime| std::time::SystemTime::now().duration_since(mtime).ok())
        .map(|age| age.as_secs());
    (Some(meta.len()), age_secs)
}

/// Classifies one store file, quarantining corruption exactly like
/// the pipeline's own loaders would.
fn scan_file(path: &Path, telemetry: &Telemetry) -> FileStatus {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    if is_corrupt_sidecar(path) {
        return FileStatus::Sidecar;
    }
    if name.ends_with(".tmp") {
        return FileStatus::StaleTmp;
    }
    if !name.ends_with(".json") {
        return FileStatus::Unknown;
    }
    if name.starts_with("ckpt-") {
        // Composition checkpoint: the loader verifies the frame,
        // parses the JSON, checks the schema version, and quarantines
        // on any corruption.
        return match load_checkpoint_quarantining(path, telemetry) {
            Ok(_) => FileStatus::Healthy,
            Err(CheckpointError::Corrupt { .. }) => {
                if path.exists() {
                    FileStatus::QuarantineFailed
                } else {
                    FileStatus::Quarantined
                }
            }
            Err(CheckpointError::Io(_)) => FileStatus::Unreadable,
        };
    }
    // Results-cache entry: frame first, then the cache schema.
    match read_record_file(path) {
        Ok(payload) => match classify_cache_payload(payload.text()) {
            CachePayloadStatus::Current => FileStatus::Healthy,
            CachePayloadStatus::StaleVersion => FileStatus::StaleVersion,
            CachePayloadStatus::Malformed => {
                let bytes = std::fs::read(path).unwrap_or_default();
                quarantine_corrupt(
                    path,
                    &bytes,
                    "cache JSON does not parse",
                    "cache",
                    telemetry,
                );
                if path.exists() {
                    FileStatus::QuarantineFailed
                } else {
                    FileStatus::Quarantined
                }
            }
        },
        Err(StoreReadError::Corrupt(_)) => {
            let bytes = std::fs::read(path).unwrap_or_default();
            quarantine_corrupt(path, &bytes, "record frame corrupt", "cache", telemetry);
            if path.exists() {
                FileStatus::QuarantineFailed
            } else {
                FileStatus::Quarantined
            }
        }
        Err(StoreReadError::Io(_)) => FileStatus::Unreadable,
    }
}

fn main() {
    let args = parse_args();
    let telemetry = Telemetry::enabled();

    let mut paths: Vec<PathBuf> = match std::fs::read_dir(&args.store) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_file())
            .collect(),
        Err(e) => {
            eprintln!("error: cannot scan {}: {e}", args.store.display());
            std::process::exit(exit_codes::USAGE);
        }
    };
    paths.sort();

    let mut files = Vec::new();
    for path in &paths {
        let status = scan_file(path, &telemetry);
        // Quarantine evidence is sized and aged *before* any prune so
        // the report can say what was reclaimed vs. what is still
        // accumulating on disk.
        let (bytes, age_secs) = if status == FileStatus::Sidecar {
            sidecar_stats(path)
        } else {
            (None, None)
        };
        // Debris is only reclaimed on request: sidecars are evidence,
        // stale .tmp files are harmless, stale-version entries are
        // merely guaranteed misses.
        let reclaimable = matches!(
            status,
            FileStatus::Sidecar | FileStatus::StaleTmp | FileStatus::StaleVersion
        );
        let pruned = args.prune && reclaimable && std::fs::remove_file(path).is_ok();
        // Quarantine renames the file, so report the original name.
        let rel = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        match (status, bytes, age_secs, pruned) {
            (FileStatus::Sidecar, Some(b), Some(age), false) => {
                println!("{rel}: {} (kept, {b} bytes, {age}s old)", status.label());
            }
            _ => println!(
                "{rel}: {}{}",
                status.label(),
                if pruned { " (pruned)" } else { "" }
            ),
        }
        files.push(FileReport {
            path: rel,
            status,
            pruned,
            bytes,
            age_secs,
        });
    }

    let kept_sidecars: Vec<&FileReport> = files
        .iter()
        .filter(|f| f.status == FileStatus::Sidecar && !f.pruned)
        .collect();
    let sidecar_bytes_total = kept_sidecars.iter().filter_map(|f| f.bytes).sum::<u64>();
    let sidecar_oldest_age_secs = kept_sidecars
        .iter()
        .filter_map(|f| f.age_secs)
        .max()
        .unwrap_or(0);
    let sidecars_kept = kept_sidecars.len();

    let report = RepairReport {
        store: args.store.display().to_string(),
        scanned: files.len(),
        healthy: files
            .iter()
            .filter(|f| f.status == FileStatus::Healthy)
            .count(),
        quarantined: files
            .iter()
            .filter(|f| f.status == FileStatus::Quarantined)
            .count(),
        quarantine_failed: files
            .iter()
            .filter(|f| f.status == FileStatus::QuarantineFailed)
            .count(),
        pruned: files.iter().filter(|f| f.pruned).count(),
        sidecars_kept,
        sidecar_bytes_total,
        sidecar_oldest_age_secs,
        store_corrupt_total: telemetry
            .counter_value(geyser::store::STORE_CORRUPT_COUNTER)
            .unwrap_or(0),
        files,
    };
    println!(
        "repair: {} — {} file(s), {} healthy, {} quarantined, {} pruned",
        report.store, report.scanned, report.healthy, report.quarantined, report.pruned
    );
    if report.sidecars_kept > 0 {
        println!(
            "repair: keeping {} quarantine sidecar(s), {} byte(s) total, oldest {}s",
            report.sidecars_kept, report.sidecar_bytes_total, report.sidecar_oldest_age_secs
        );
    }

    if let Some(path) = &args.json {
        std::fs::write(path, report_json(&report)).unwrap_or_else(|e| {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(exit_codes::FAILURES);
        });
        println!("(wrote {})", path.display());
    }

    if report.quarantine_failed > 0 {
        eprintln!(
            "error: {} corrupt file(s) could not be quarantined and remain in place",
            report.quarantine_failed
        );
        std::process::exit(exit_codes::FAILURES);
    }
}
