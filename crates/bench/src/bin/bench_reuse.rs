//! Composition-reuse benchmark: annealer evaluations on a deep
//! fixed-angle QAOA, baseline vs reuse.
//!
//! Compiles a 10-layer fixed-angle QAOA three ways — no reuse, reuse
//! against a cold persistent store (seeding it), and reuse against the
//! now-warm store — and reports the `compose.anneal_evaluations`
//! counter for each, plus the reuse accounting. Every compile is
//! checked against the equivalence oracle, so the reported speedup is
//! never bought with correctness. The committed `BENCH_reuse.json` is
//! this binary's `--json` output; the warm-store run must come in at
//! least 5× under the baseline (exit 1 otherwise, exit 4 on an oracle
//! failure).
//!
//! The run is a pure function of `--seed`.

use geyser::workloads::qaoa_fixed;
use geyser::{verify_compiled, CompiledCircuit, PassManager, PipelineConfig, Technique, Telemetry};
use geyser_bench::{exit_codes, report_json, Cli};
use geyser_reuse::ReuseStats;
use geyser_verify::VerifyConfig;
use serde::Serialize;

/// The acceptance bar: warm-store evaluations must be at least this
/// factor under the baseline.
const MIN_WARM_SPEEDUP: f64 = 5.0;

#[derive(Serialize)]
struct ReuseBench {
    workload: String,
    seed: u64,
    baseline_evals: u64,
    cold_evals: u64,
    warm_evals: u64,
    /// `baseline_evals / max(cold_evals, 1)` — in-job repetition plus
    /// negative-outcome caching, paid while seeding the store.
    speedup_cold: f64,
    /// `baseline_evals / max(warm_evals, 1)` — the cross-job effect.
    speedup_warm: f64,
    cold: ReuseStats,
    warm: ReuseStats,
    verified: bool,
}

fn compile(
    circuit: &geyser::circuit::Circuit,
    cfg: &PipelineConfig,
) -> (CompiledCircuit, u64, Option<ReuseStats>) {
    let telemetry = Telemetry::enabled();
    let compiled = PassManager::for_technique(Technique::Geyser)
        .with_telemetry(telemetry.clone())
        .run(circuit, cfg)
        .expect("benchmark workload compiles");
    let evals = telemetry
        .counter_value("compose.anneal_evaluations")
        .unwrap_or(0);
    let stats = compiled.report().and_then(|r| r.reuse);
    (compiled, evals, stats)
}

fn main() {
    let cli = Cli::parse();
    let circuit = qaoa_fixed(4, 10, cli.seed);
    let cfg = cli.pipeline_config();
    let vcfg = VerifyConfig::default().with_seed(cli.seed);

    let store = std::env::temp_dir().join(format!("geyser-bench-reuse-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);

    let (baseline, baseline_evals, _) = compile(&circuit, &cfg);
    let reuse_cfg = cfg.clone().with_reuse_store(&store);
    let (cold_out, cold_evals, cold) = compile(&circuit, &reuse_cfg);
    let (warm_out, warm_evals, warm) = compile(&circuit, &reuse_cfg);
    let _ = std::fs::remove_dir_all(&store);

    let verified = [&baseline, &cold_out, &warm_out]
        .iter()
        .all(|c| verify_compiled(&circuit, c, &vcfg).equivalent);

    let bench = ReuseBench {
        workload: "qaoa-fixed-4x10".to_string(),
        seed: cli.seed,
        baseline_evals,
        cold_evals,
        warm_evals,
        speedup_cold: baseline_evals as f64 / cold_evals.max(1) as f64,
        speedup_warm: baseline_evals as f64 / warm_evals.max(1) as f64,
        cold: cold.expect("reuse stats present when reuse is on"),
        warm: warm.expect("reuse stats present when reuse is on"),
        verified,
    };

    println!(
        "reuse bench: seed {} — baseline {} evals, cold store {} ({:.1}x), \
         warm store {} ({:.1}x), verified={}",
        bench.seed,
        bench.baseline_evals,
        bench.cold_evals,
        bench.speedup_cold,
        bench.warm_evals,
        bench.speedup_warm,
        bench.verified
    );
    if let Some(path) = &cli.json {
        std::fs::write(path, report_json(&bench))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("(wrote {path})");
    }
    if !bench.verified {
        eprintln!("error: a compile failed the equivalence oracle");
        std::process::exit(exit_codes::VERIFICATION_FAILED);
    }
    if bench.speedup_warm < MIN_WARM_SPEEDUP {
        eprintln!(
            "error: warm-store speedup {:.2}x is under the {MIN_WARM_SPEEDUP}x bar",
            bench.speedup_warm
        );
        std::process::exit(exit_codes::FAILURES);
    }
}
