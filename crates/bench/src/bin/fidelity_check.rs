//! Section 6 fidelity sanity check: the TVD between Geyser's
//! *noise-free* output and the original program's ideal output must be
//! practically negligible (< 1e-2) — composition error does not
//! corrupt program semantics.

use geyser::{evaluate_tvd, Technique};
use geyser_bench::{compile_cached, maybe_write_json, metrics, print_rows, Cli, Row};
use geyser_sim::NoiseModel;

fn main() {
    let cli = Cli::parse();
    let cfg = cli.pipeline_config();
    let mut rows = Vec::new();
    let mut worst: f64 = 0.0;
    for spec in cli.selected_workloads(true) {
        let program = cli.build(&spec);
        let compiled = compile_cached(
            spec.name,
            &program,
            Technique::Geyser,
            &cfg,
            &cli.config_tag(),
        );
        let report = evaluate_tvd(&compiled, &program, &NoiseModel::noiseless(), 1, cli.seed);
        worst = worst.max(report.compilation_tvd);
        let stats = compiled.composition_stats().expect("geyser stats");
        rows.push(Row {
            workload: spec.name.to_string(),
            technique: "Geyser".to_string(),
            metrics: metrics(&[
                ("ideal_tvd", report.compilation_tvd),
                ("blocks_composed", stats.blocks_composed as f64),
                ("max_block_hsd", stats.max_accepted_hsd),
            ]),
        });
    }
    print_rows("Sec. 6 check: ideal-output TVD of composed circuits", &rows);
    println!(
        "worst ideal-output TVD = {worst:.2e} — paper bound: < 1e-2 → {}",
        if worst < 1e-2 { "PASS" } else { "FAIL" }
    );
    maybe_write_json(&cli, &rows);
}
