//! Differential fuzzing driver: generate seeded circuits, compile them
//! with every technique, check each result against the equivalence
//! oracle, shrink failures to local minima with delta debugging, and
//! quarantine minimized reproducers for `replay`.
//!
//! Flags (see the `geyser-bench` crate docs for the full list):
//!
//! * `--seed N` — run seed; the whole run is a pure function of it
//! * `--cases N` — fuzz cases to generate (default 16)
//! * `--fast` — reduced composition budget (recommended; also what the
//!   CI smoke uses)
//! * `--inject SPEC` — compile every case under an injected fault,
//!   e.g. `--inject miscompile:0` to prove the harness catches and
//!   shrinks a silent miscompile end to end
//! * `--structured` — draw repeated-layer (QAOA-like) circuits
//!   instead of fully random ones, so cases exercise the
//!   composition-reuse path
//! * `--reuse` / `--reuse-warm-start` — compile every case with the
//!   composition-reuse index enabled (in-process, no store, so a
//!   case's outcome stays a pure function of the entry); quarantine
//!   entries record the flag so `replay` takes the same path
//! * `--quarantine DIR` — where reproducers are filed (default
//!   `quarantine/`)
//!
//! Exit status: 0 = no failures, 1 = failures found (and quarantined),
//! 2 = usage error.

use geyser::{FaultInjector, PassManager, PipelineConfig, Technique, Telemetry, VerificationStats};
use geyser_bench::{exit_codes, Cli};
use geyser_circuit::Circuit;
use geyser_verify::{
    generate_cases, minimize, quarantine::write_entry, FuzzCase, FuzzOptions, QuarantineEntry,
    VerifyConfig,
};

/// What went wrong with one (case × technique) run.
enum Failure {
    /// The pipeline returned a typed error.
    CompileError(String),
    /// The pipeline succeeded but the oracle rejected the output.
    Miscompile(VerificationStats),
}

impl Failure {
    /// Coarse kind used to match failures during minimization: the
    /// shrunk reproducer must fail the same way, not just somehow.
    fn kind(&self) -> &'static str {
        match self {
            Failure::CompileError(_) => "compile-error",
            Failure::Miscompile(_) => "miscompile",
        }
    }
}

/// Compile + verify one circuit under one technique. Telemetry is
/// observational only — a disabled handle gives identical outcomes.
fn check(
    circuit: &Circuit,
    technique: Technique,
    cfg: &PipelineConfig,
    faults: &FaultInjector,
    vcfg: &VerifyConfig,
    telemetry: &Telemetry,
) -> Result<(), Failure> {
    let compiled = match PassManager::for_technique(technique)
        .with_faults(faults.clone())
        .with_telemetry(telemetry.clone())
        .run(circuit, cfg)
    {
        Ok(c) => c,
        Err(e) => return Err(Failure::CompileError(e.to_string())),
    };
    let stats = geyser::verify_compiled(circuit, &compiled, vcfg);
    if stats.equivalent {
        Ok(())
    } else {
        Err(Failure::Miscompile(stats))
    }
}

fn main() {
    let cli = Cli::parse();
    // The config must be fully reconstructible from the tag stored in
    // each quarantine entry, so only the tag-encoded knobs apply here
    // (no wall-clock budget: a degraded circuit is machine-dependent).
    let mut cfg = if cli.fast {
        PipelineConfig::fast()
    } else {
        PipelineConfig::paper()
    }
    .with_seed(cli.seed);
    // Reuse is reconstructible from the quarantine entry's `reuse`
    // flag (the in-process index is deterministic); a persistent store
    // is not, so the fuzzer never uses one.
    if cli.reuse {
        cfg = cfg.with_reuse().with_reuse_warm_start(cli.reuse_warm_start);
    }
    let faults = cli.fault_injector();
    let vcfg = VerifyConfig::default().with_seed(cli.seed);
    let opts = FuzzOptions {
        seed: cli.seed,
        cases: cli.cases,
        // Hardware scenarios are part of the fuzzed surface: each case
        // carries a mutated spec (recorded in its quarantine entry so
        // replay reproduces hardware-dependent failures exactly).
        mutate_hardware: true,
        structured: cli.structured,
        ..FuzzOptions::default()
    };
    let qdir = cli.quarantine_dir();

    let mut checked = 0usize;
    let mut failures = 0usize;
    for case in generate_cases(&opts) {
        let case_cfg = match &case.hardware {
            Some(spec) => cfg.clone().with_hardware(spec.clone()),
            None => cfg.clone(),
        };
        for technique in Technique::ALL {
            checked += 1;
            let failure = match check(
                &case.circuit,
                technique,
                &case_cfg,
                &faults,
                &vcfg,
                &Telemetry::disabled(),
            ) {
                Ok(()) => continue,
                Err(f) => f,
            };
            failures += 1;
            quarantine_failure(
                &cli, &case_cfg, &faults, &vcfg, &case, technique, &failure, &qdir,
            );
        }
    }
    println!(
        "fuzz: seed {} — {checked} compilations over {} case(s), {failures} failure(s)",
        cli.seed, opts.cases
    );
    if failures > 0 {
        println!("reproducers quarantined under {}/", qdir.display());
        std::process::exit(exit_codes::FAILURES);
    }
}

/// Shrinks one failure with ddmin and files the minimized reproducer.
#[allow(clippy::too_many_arguments)]
fn quarantine_failure(
    cli: &Cli,
    cfg: &PipelineConfig,
    faults: &FaultInjector,
    vcfg: &VerifyConfig,
    case: &FuzzCase,
    technique: Technique,
    failure: &Failure,
    qdir: &std::path::Path,
) {
    let kind = failure.kind();
    let (minimized, shrink) = minimize(
        &case.circuit,
        |candidate| matches!(&check(candidate, technique, cfg, faults, vcfg, &Telemetry::disabled()), Err(f) if f.kind() == kind),
    );
    // Re-verify the minimized reproducer so the entry's oracle fields
    // describe exactly what `replay` will observe — with telemetry on
    // and the run timed, so the entry records what the reproducer
    // costs and replay can spot cost regressions across versions.
    let cost_telemetry = Telemetry::enabled();
    let started = std::time::Instant::now();
    let final_failure = check(&minimized, technique, cfg, faults, vcfg, &cost_telemetry)
        .expect_err("minimizer only returns circuits that still fail");
    let compile_ms = started.elapsed().as_millis() as u64;
    let anneal_evaluations = cost_telemetry.counter_value("compose.anneal_evaluations");
    let (failure_text, method, worst_fidelity, tolerance) = match &final_failure {
        Failure::CompileError(detail) => (
            format!("compile-error: {detail}"),
            "none".to_string(),
            -1.0,
            0.0,
        ),
        Failure::Miscompile(v) => (
            "miscompile".to_string(),
            v.method.clone(),
            v.worst_fidelity,
            v.tolerance,
        ),
    };
    let mut entry = QuarantineEntry {
        id: format!("{}-{}", case.id, technique.label().to_lowercase()),
        case_id: case.id.clone(),
        technique: technique.label().to_string(),
        config: cli.config_tag(),
        seed: case.seed,
        inject: cli.inject.clone(),
        failure: failure_text,
        method,
        worst_fidelity,
        tolerance,
        original_ops: shrink.original_ops as u64,
        minimized_ops: shrink.minimized_ops as u64,
        qasm: String::new(),
        compile_ms: Some(compile_ms),
        anneal_evaluations,
        hardware: case.hardware.clone(),
        reuse: cfg.reuse.enabled,
    };
    entry.set_circuit(&minimized);
    match write_entry(qdir, &entry) {
        Ok(path) => println!(
            "FAIL {}: {} — shrunk {} -> {} ops in {} recompile(s), filed {}",
            entry.id,
            entry.failure,
            shrink.original_ops,
            shrink.minimized_ops,
            shrink.predicate_calls,
            path.display()
        ),
        Err(e) => {
            eprintln!("error: cannot write quarantine entry {}: {e}", entry.id);
            std::process::exit(exit_codes::USAGE);
        }
    }
}
