//! `sweep` — technique × hardware-scenario grid evaluation.
//!
//! Drives every selected workload through every `(hardware spec ×
//! technique)` grid cell via the supervised job runtime and emits a
//! scorecard: physical pulses, critical-path depth, estimated success
//! probability under the spec's noise model, and compile cost per
//! cell. The grid comes from `--specs` (builtin preset names or spec
//! JSON paths; default `paper,near-term`), techniques from
//! `--techniques` (default `Baseline,Geyser`).
//!
//! The scorecard is written as JSON to `--json PATH`
//! (default `sweep-scorecard.json`) in addition to the stdout table.
//!
//! ```text
//! sweep --fast --specs paper,near-term --techniques Baseline,Geyser \
//!       --workloads qft-5 --json scorecard.json
//! ```

use geyser::{estimated_success_probability, Technique};
use geyser_bench::{
    compile_techniques, maybe_write_trace, metrics, print_rows, report_json, Cli, Row,
};
use serde::Serialize;

/// One scorecard cell: what one technique produced for one workload
/// on one machine, and what producing it cost.
#[derive(Debug, Clone, Serialize)]
struct ScorecardCell {
    /// Hardware scenario name (`HardwareSpec::name`).
    spec: String,
    /// Content digest of the scenario the cell compiled for.
    hardware_digest: String,
    /// Workload name.
    workload: String,
    /// Technique label.
    technique: String,
    /// Total physical pulses of the compiled circuit.
    pulses: u64,
    /// Critical-path pulse depth.
    depth: u64,
    /// Estimated success probability under the spec's noise model.
    fidelity: f64,
    /// Wall-clock seconds the pipeline spent compiling the cell.
    compile_seconds: f64,
}

fn main() {
    let mut cli = Cli::parse();
    // The whole grid runs through the supervised runtime (bounded
    // queue, circuit breakers, crash-safe checkpoints keyed by each
    // spec's digest), so a killed sweep resumes per-cell.
    if !cli.supervised() {
        cli.jobs = 2;
    }
    let grid = cli.hardware_grid();
    let techniques = cli.effective_techniques(&[Technique::Baseline, Technique::Geyser]);
    let workloads = cli.selected_workloads(true);

    let mut cells: Vec<ScorecardCell> = Vec::new();
    let mut rows: Vec<Row> = Vec::new();
    for spec in &grid {
        // Rebinding the scenario here makes `pipeline_config` and
        // `config_tag` (hence cache and checkpoint keys) follow it.
        let mut cell_cli = cli.clone();
        cell_cli.hardware = Some(spec.clone());
        let cfg = cell_cli.pipeline_config();
        let noise = cell_cli.noise_model();
        for workload in &workloads {
            let program = cell_cli.build(workload);
            let started = std::time::Instant::now();
            let compiled =
                compile_techniques(&cell_cli, workload.name, &program, &techniques, &cfg);
            let wall = started.elapsed().as_secs_f64() / compiled.len().max(1) as f64;
            for (t, c) in &compiled {
                let seconds = c
                    .report()
                    .map(|r| r.total_seconds())
                    .filter(|s| *s > 0.0)
                    .unwrap_or(wall);
                let fidelity = estimated_success_probability(c, &noise);
                cells.push(ScorecardCell {
                    spec: spec.name.clone(),
                    hardware_digest: format!("{:016x}", spec.digest()),
                    workload: workload.name.to_string(),
                    technique: t.label().to_string(),
                    pulses: c.total_pulses(),
                    depth: c.depth_pulses(),
                    fidelity,
                    compile_seconds: seconds,
                });
                rows.push(Row {
                    workload: format!("{}@{}", workload.name, spec.name),
                    technique: t.label().to_string(),
                    metrics: metrics(&[
                        ("pulses", c.total_pulses() as f64),
                        ("depth", c.depth_pulses() as f64),
                        ("fidelity", fidelity),
                        ("compile_s", seconds),
                    ]),
                });
            }
        }
    }

    print_rows(
        &format!(
            "Hardware sweep: {} spec(s) x {} technique(s) x {} workload(s)",
            grid.len(),
            techniques.len(),
            workloads.len()
        ),
        &rows,
    );
    let path = cli.json.as_deref().unwrap_or("sweep-scorecard.json");
    std::fs::write(path, report_json(&cells))
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("(wrote {path})");
    maybe_write_trace(&cli);
}
