//! Ablation studies of the design choices DESIGN.md calls out:
//!
//! 1. **Pulse-aware vs gate-count-aware blocking** (paper Sec. 3.3
//!    argues pulses are the right objective).
//! 2. **Per-pulse vs per-operation noise granularity** (the paper's
//!    noise-∝-pulses premise).
//! 3. **Triangular vs square-diagonal lattice restriction pressure**
//!    (paper Fig. 7's topology choice).

use geyser::{evaluate_tvd, Technique};
use geyser_bench::{compile_cached, maybe_write_json, metrics, print_rows, Cli, Row};
use geyser_blocking::{block_circuit, BlockingConfig};
use geyser_map::{map_circuit, MappingOptions};
use geyser_topology::Lattice;

fn main() {
    let cli = Cli::parse();
    let cfg = cli.pipeline_config();
    let mut rows = Vec::new();

    // --- Ablation 1: blocking objective ---------------------------
    for spec in cli.selected_workloads(true) {
        let program = cli.build(&spec);
        let lattice = Lattice::triangular_for(program.num_qubits());
        let mapped = map_circuit(&program, &lattice, &MappingOptions::optimized());
        for (label, pulse_aware) in [("pulse-aware", true), ("gate-aware", false)] {
            let blocked = block_circuit(
                mapped.circuit(),
                &lattice,
                &BlockingConfig {
                    pulse_aware,
                    ..BlockingConfig::default()
                },
            );
            rows.push(Row {
                workload: spec.name.to_string(),
                technique: label.to_string(),
                metrics: metrics(&[
                    ("blocks", blocked.num_blocks() as f64),
                    ("rounds", blocked.rounds().len() as f64),
                    ("mean_block_ops", blocked.mean_block_size()),
                ]),
            });
        }
    }
    print_rows(
        "Ablation 1: blocking objective (pulse vs gate aware)",
        &rows,
    );
    let mut all_rows = std::mem::take(&mut rows);

    // --- Ablation 2: noise granularity -----------------------------
    for spec in cli.selected_workloads(true).into_iter().take(4) {
        let program = cli.build(&spec);
        let compiled = compile_cached(
            spec.name,
            &program,
            Technique::Geyser,
            &cfg,
            &cli.config_tag(),
        );
        let per_pulse = cli.noise_model();
        let per_op = per_pulse.with_per_operation_granularity();
        for (label, noise) in [("per-pulse", per_pulse), ("per-op", per_op)] {
            let report = evaluate_tvd(&compiled, &program, &noise, cli.trajectories, cli.seed);
            rows.push(Row {
                workload: spec.name.to_string(),
                technique: label.to_string(),
                metrics: metrics(&[("tvd", report.tvd_to_ideal)]),
            });
        }
    }
    print_rows("Ablation 2: noise granularity (per pulse vs per op)", &rows);
    all_rows.append(&mut rows);

    // --- Ablation 3: lattice restriction pressure -------------------
    // Depth pulses of the same OptiMap circuit structure when zones
    // come from a triangular vs a diagonal square lattice.
    for spec in cli.selected_workloads(true).into_iter().take(4) {
        let program = cli.build(&spec);
        for (label, lattice) in [
            ("triangular", Lattice::triangular_for(program.num_qubits())),
            (
                "square-diag",
                Lattice::square_diagonal(
                    Lattice::triangular_for(program.num_qubits()).rows(),
                    Lattice::triangular_for(program.num_qubits()).cols(),
                ),
            ),
        ] {
            let mapped = map_circuit(&program, &lattice, &MappingOptions::optimized());
            rows.push(Row {
                workload: spec.name.to_string(),
                technique: label.to_string(),
                metrics: metrics(&[
                    ("total_pulses", mapped.total_pulses() as f64),
                    ("depth_pulses", mapped.depth_pulses() as f64),
                ]),
            });
        }
    }
    print_rows("Ablation 3: lattice topology restriction pressure", &rows);
    all_rows.append(&mut rows);

    // --- Ablation 4: 3-qubit vs 4-qubit block composability ---------
    // The paper's Fig. 7 argument quantified: identical annealing
    // budgets against matched-depth random block unitaries.
    let budget_iters = 200;
    let epsilon = 1e-3;
    let samples = 6u64;
    let mut ok3 = 0usize;
    let mut ok4 = 0usize;
    let mut evals3 = 0usize;
    let mut evals4 = 0usize;
    for s in 0..samples {
        // Three-qubit target: 2 entanglers + walls (exact parameters
        // exist by construction, so convergence is purely a search
        // question).
        let a3 = geyser_compose::Ansatz::new(2);
        let p3: Vec<f64> = (0..a3.num_params())
            .map(|i| ((i as u64 * 137 + s * 31) % 628) as f64 / 100.0)
            .collect();
        let target3 = a3.unitary(&p3);
        let b3 = geyser_optimize::Bounds::new(&a3.bounds());
        let obj3 = |p: &[f64]| geyser_num::hilbert_schmidt_distance(&a3.unitary(p), &target3);
        let r3 = geyser_optimize::dual_annealing(
            &obj3,
            &b3,
            &geyser_optimize::DualAnnealingConfig::default()
                .with_seed(s)
                .with_max_iters(budget_iters)
                .with_target(epsilon * 0.5),
        );
        evals3 += r3.evaluations;
        if r3.fx <= epsilon {
            ok3 += 1;
        }
        // Four-qubit target of the same layer depth.
        let a4 = geyser_compose::QuadAnsatz::new(2);
        let p4: Vec<f64> = (0..a4.num_params())
            .map(|i| ((i as u64 * 137 + s * 31) % 628) as f64 / 100.0)
            .collect();
        let target4 = a4.unitary(&p4);
        let r4 = geyser_compose::try_compose_quad(&target4, 2, epsilon, budget_iters, s);
        evals4 += r4.evaluations;
        if r4.converged {
            ok4 += 1;
        }
    }
    rows.push(Row {
        workload: "random-2-layer".to_string(),
        technique: "3-qubit".to_string(),
        metrics: metrics(&[
            ("converged", ok3 as f64),
            ("samples", samples as f64),
            ("mean_evals", evals3 as f64 / samples as f64),
        ]),
    });
    rows.push(Row {
        workload: "random-2-layer".to_string(),
        technique: "4-qubit".to_string(),
        metrics: metrics(&[
            ("converged", ok4 as f64),
            ("samples", samples as f64),
            ("mean_evals", evals4 as f64 / samples as f64),
        ]),
    });
    print_rows(
        "Ablation 4: 3q vs 4q block composability at equal budget (paper Fig. 7)",
        &rows,
    );
    all_rows.append(&mut rows);

    maybe_write_json(&cli, &all_rows);
}
