//! Renders recorded `results/*.json` rows into EXPERIMENTS.md,
//! replacing the `<!-- RESULTS:TAG -->` placeholders with markdown
//! tables. Rerun after regenerating any figure:
//!
//! ```text
//! cargo run --release -p geyser-bench --bin render_experiments
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::Deserialize;

#[derive(Deserialize)]
struct Row {
    workload: String,
    technique: String,
    metrics: BTreeMap<String, f64>,
}

fn render_table(rows: &[Row]) -> String {
    if rows.is_empty() {
        return "(no data recorded)\n".to_string();
    }
    let metric_names: Vec<&String> = rows[0].metrics.keys().collect();
    let mut out = String::new();
    let _ = write!(out, "| workload | technique |");
    for m in &metric_names {
        let _ = write!(out, " {m} |");
    }
    out.push('\n');
    let _ = write!(out, "|---|---|");
    for _ in &metric_names {
        let _ = write!(out, "---|");
    }
    out.push('\n');
    for row in rows {
        let _ = write!(out, "| {} | {} |", row.workload, row.technique);
        for m in &metric_names {
            let v = row.metrics.get(*m).copied().unwrap_or(f64::NAN);
            if v.fract() == 0.0 && v.abs() < 1e15 {
                let _ = write!(out, " {} |", v as i64);
            } else {
                let _ = write!(out, " {v:.4} |");
            }
        }
        out.push('\n');
    }
    out
}

fn main() {
    let mappings = [
        ("FIG12", "results/fig12.json"),
        ("FIG13", "results/fig13.json"),
        ("FIG14", "results/fig14.json"),
        ("FIG15", "results/fig15.json"),
        ("FIG16", "results/fig16.json"),
        ("FIG17", "results/fig17.json"),
        ("FIG18", "results/fig18.json"),
        ("FIDELITY", "results/fidelity.json"),
        ("ATOMLOSS", "results/atom_loss.json"),
        ("SCALING", "results/sec6_scaling.json"),
        ("ABLATIONS", "results/ablations.json"),
    ];
    let path = "EXPERIMENTS.md";
    let mut doc = std::fs::read_to_string(path).expect("EXPERIMENTS.md exists");
    let mut rendered = 0;
    for (tag, file) in mappings {
        let marker = format!("<!-- RESULTS:{tag} -->");
        if !doc.contains(&marker) {
            continue;
        }
        let Ok(body) = std::fs::read_to_string(file) else {
            println!("skipping {tag}: {file} not found");
            continue;
        };
        let rows: Vec<Row> = match serde_json::from_str(&body) {
            Ok(r) => r,
            Err(e) => {
                println!("skipping {tag}: {e}");
                continue;
            }
        };
        // Idempotent replacement: everything between the marker and
        // the next section heading (or EOF) is regenerated.
        let Some(start) = doc.find(&marker) else {
            continue;
        };
        let content_start = start + marker.len();
        let rest = &doc[content_start..];
        let end = rest.find("\n## ").map_or(doc.len(), |p| content_start + p);
        let replacement = format!("\n\n{}", render_table(&rows));
        doc.replace_range(content_start..end, &replacement);
        rendered += 1;
    }
    std::fs::write(path, doc).expect("EXPERIMENTS.md is writable");
    println!("rendered {rendered} sections into {path}");
}
