//! Table 1: benchmark characteristics of the Baseline circuits —
//! qubits, U3/CZ gate counts, total pulses, and depth pulses.

use geyser::Technique;
use geyser_bench::{
    collect_reports, compile_techniques, maybe_write_json, maybe_write_reports, maybe_write_trace,
    metrics, print_rows, Cli, Row,
};

fn main() {
    let cli = Cli::parse();
    let cfg = cli.pipeline_config();
    let techniques = cli.effective_techniques(&[Technique::Baseline]);
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    for spec in cli.selected_workloads(false) {
        let program = cli.build(&spec);
        let compiled = compile_techniques(&cli, spec.name, &program, &techniques, &cfg);
        collect_reports(spec.name, &compiled, &mut reports);
        let compiled = &compiled[0].1;
        let counts = compiled.gate_counts();
        rows.push(Row {
            workload: spec.name.to_string(),
            technique: "Baseline".to_string(),
            metrics: metrics(&[
                ("qubits", spec.num_qubits as f64),
                ("u3_gates", counts.u3 as f64),
                ("cz_gates", counts.cz as f64),
                ("total_pulses", compiled.total_pulses() as f64),
                ("depth_pulses", compiled.depth_pulses() as f64),
            ]),
        });
    }
    print_rows("Table 1: Baseline benchmark characteristics", &rows);
    maybe_write_json(&cli, &rows);
    maybe_write_reports(&cli, &reports);
    maybe_write_trace(&cli);
}
