//! Section 6 scalability table: wall-clock of each pipeline stage as
//! the circuit grows. The paper argues mapping is `O(k·c)`, blocking
//! worst-case `O(c²)`, and composition `O(c)` in the number of
//! operations `c`; this binary prints the measured stage times over a
//! QFT size sweep so the trend can be read off directly.

use std::time::Instant;

use geyser_bench::{maybe_write_json, metrics, print_rows, Cli, Row};
use geyser_blocking::{block_circuit, BlockingConfig};
use geyser_compose::{compose_blocked_circuit, CompositionConfig};
use geyser_map::{map_circuit, MappingOptions};
use geyser_topology::Lattice;
use geyser_workloads::qft_with_input;

fn main() {
    let cli = Cli::parse();
    let mut rows = Vec::new();
    for n in [4usize, 5, 6, 8, 10, 12] {
        let program = qft_with_input(n, (1u64 << n) - 1);
        let lattice = Lattice::triangular_for(n);

        let t0 = Instant::now();
        let mapped = map_circuit(&program, &lattice, &MappingOptions::optimized());
        let map_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t1 = Instant::now();
        let blocked = block_circuit(mapped.circuit(), &lattice, &BlockingConfig::default());
        let block_ms = t1.elapsed().as_secs_f64() * 1e3;

        // Fixed small per-block budget so the trend reflects block
        // count, not annealing depth.
        let compose_cfg = CompositionConfig {
            anneal_iters: 40,
            restarts: 1,
            max_layers: 1,
            threads: 1,
            ..CompositionConfig::fast()
        };
        let t2 = Instant::now();
        let composed = compose_blocked_circuit(&blocked, &compose_cfg);
        let compose_ms = t2.elapsed().as_secs_f64() * 1e3;

        rows.push(Row {
            workload: format!("qft-{n}"),
            technique: "stages".to_string(),
            metrics: metrics(&[
                ("ops", mapped.circuit().len() as f64),
                ("blocks", blocked.num_blocks() as f64),
                ("map_ms", map_ms),
                ("block_ms", block_ms),
                ("compose_ms", compose_ms),
                ("composed_pulses", composed.stats.pulses_after as f64),
            ]),
        });
    }
    print_rows(
        "Sec. 6: pipeline stage wall-clock scaling (QFT sweep)",
        &rows,
    );
    println!("\nblock_ms should grow no worse than quadratically in ops;");
    println!("compose_ms linearly in blocks (paper Sec. 6).");
    maybe_write_json(&cli, &rows);
}
