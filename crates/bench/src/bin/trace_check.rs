//! Validates a Chrome trace-event file emitted by `--trace`.
//!
//! Usage: `trace_check <trace.json> [min_categories]`
//!
//! Checks that the file is parseable trace-event JSON with balanced,
//! properly nested begin/end events on every thread, and (optionally)
//! that spans from at least `min_categories` distinct crates appear —
//! CI uses this to prove instrumentation reaches the whole pipeline.
//! Exits 0 on success, 1 on a malformed or too-narrow trace, 2 on
//! usage errors.

use geyser_bench::exit_codes;
use geyser_telemetry::validate_chrome_trace;

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args.next().unwrap_or_else(|| {
        eprintln!("usage: trace_check <trace.json> [min_categories]");
        std::process::exit(exit_codes::USAGE);
    });
    let min_categories: usize = args
        .next()
        .map(|s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("error: min_categories must be an integer, got '{s}'");
                std::process::exit(exit_codes::USAGE);
            })
        })
        .unwrap_or(1);

    let body = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(exit_codes::FAILURES);
    });
    match validate_chrome_trace(&body) {
        Ok(summary) => {
            println!(
                "{path}: {} events, {} complete spans, categories: {}",
                summary.events,
                summary.complete_spans,
                summary.categories.join(", ")
            );
            if summary.categories.len() < min_categories {
                eprintln!(
                    "error: expected spans from at least {min_categories} \
                     crates, found {}: {}",
                    summary.categories.len(),
                    summary.categories.join(", ")
                );
                std::process::exit(exit_codes::FAILURES);
            }
        }
        Err(e) => {
            eprintln!("error: {path}: {e}");
            std::process::exit(exit_codes::FAILURES);
        }
    }
}
