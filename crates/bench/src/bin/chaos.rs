//! Chaos campaign harness for the supervised runtime.
//!
//! Usage: `chaos --seed S --campaigns N [--fast] [--workloads a,b]
//! [--watchdog-ms MS] [--max-retries R] [--inject EXTRA] [--json PATH]`
//!
//! Each campaign derives a private seed from the master seed, draws a
//! randomized fault schedule (composed `--inject` tokens: pass panics,
//! hangs, kill-after-block, checkpoint corruption, budget squeezes)
//! plus optional harness-driven cancellation storms, throws it at a
//! fresh supervised runtime with the hung-worker watchdog armed, and
//! then machine-checks the global invariants from
//! [`geyser_verify::invariants`]:
//!
//! 1. no submitted job is silently lost;
//! 2. every terminal job is classified (circuit iff success, typed
//!    error iff not);
//! 3. every successful compile passes the equivalence oracle;
//! 4. every checkpoint resume is bit-identical to an uninterrupted
//!    run;
//! 5. every surviving store file parses or was quarantined to a
//!    `.corrupt-<digest>` sidecar.
//!
//! After the fault campaigns, a compact **serve leg** replays a seeded
//! overload storm against the supervisor's service layer (admission
//! control, tenant fairness, single-flight dedup, load shedding) and
//! holds it to four more invariants:
//!
//! 6. every submission resolves to a recognized terminal outcome;
//! 7. every shed carries a typed rejection reason;
//! 8. sampled dedup-served results are bit-identical to solo compiles;
//! 9. no bystander tenant's p99 exceeds 3× its fair-share baseline
//!    while another tenant floods.
//!
//! The whole run is a pure function of `--seed`: the same seed and
//! campaign count replay the same schedules, job outcomes, and
//! scorecard. An extra `--inject SPEC` is composed into every
//! campaign's schedule — `--inject miscompile:0` is the standard
//! planted-bug check that the harness really fails (invariant 3,
//! exit 5) when the compiler lies.
//!
//! Exits 0 with a scorecard (stdout summary, full JSON via `--json`)
//! when every invariant held, or prints each violation and exits
//! [`exit_codes::CHAOS_INVARIANT`].

use std::path::{Path, PathBuf};

use geyser::store::is_corrupt_sidecar;
use geyser::{verify_compiled, FaultInjector, Technique, Telemetry};
use geyser_bench::serve::{run_serve, ServeScorecard};
use geyser_bench::{exit_codes, report_json, Cli};
use geyser_circuit::Circuit;
use geyser_supervisor::{
    load_checkpoint, run_supervised_compile, CheckpointError, JobSpec, JobState, RetryPolicy,
    SupervisedCompileOptions, Supervisor, SupervisorConfig, WatchdogConfig,
};
use geyser_verify::{
    check_campaign_jobs, check_store_scan, InvariantViolation, JobObservation,
    StoreFileObservation, StoreFileStatus, VerifyConfig,
};
use serde::Serialize;

/// Where campaign workdirs (checkpoints, quarantine sidecars) live.
const CHAOS_ROOT: &str = ".geyser-chaos";

/// One splitmix64 draw — the repo's standard dependency-free
/// generator; chaining outputs yields the campaign seed stream.
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic per-campaign generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = splitmix64(self.0);
        self.0
    }

    fn pick(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// One campaign's drawn schedule: the fault spec composed into every
/// job plus whether the harness cancels the last submitted job.
struct Schedule {
    /// `--inject`-syntax fault spec ("" = clean campaign).
    spec: String,
    /// Cancel the last submitted job right after submission
    /// (cancellation storm).
    storm: bool,
}

/// Draws one schedule from the campaign's seed stream. The menu only
/// contains faults the runtime promises to absorb — a violated
/// invariant is therefore always a runtime bug (or a deliberately
/// planted one via the extra spec), never an expected outcome.
fn draw_schedule(rng: &mut Rng) -> Schedule {
    let (mut tokens, storm): (Vec<String>, bool) = match rng.pick(7) {
        0 => (vec![], false),
        1 => (vec!["pass-panic-once:block".into()], false),
        2 => (vec!["pass-panic:block".into()], false),
        3 => (vec!["hang-pass:block".into()], false),
        4 => (vec!["kill-after-block:1".into()], false),
        5 => (
            vec!["checkpoint-corrupt".into(), "kill-after-block:1".into()],
            false,
        ),
        _ => (vec![], true),
    };
    // A budget squeeze composes with anything that still lets the
    // compile make progress (the degraded fallback path is exactly
    // what it stresses).
    if !storm && rng.pick(3) == 0 {
        tokens.push("compose-timeout".into());
    }
    Schedule {
        spec: tokens.join(","),
        storm,
    }
}

/// Composes the drawn schedule with the user's extra `--inject` spec.
fn composed_faults(schedule: &Schedule, extra: Option<&str>) -> FaultInjector {
    let spec = match (schedule.spec.as_str(), extra) {
        ("", None) => String::new(),
        ("", Some(e)) => e.to_string(),
        (s, None) => s.to_string(),
        (s, Some(e)) => format!("{s},{e}"),
    };
    if spec.is_empty() {
        FaultInjector::none()
    } else {
        FaultInjector::parse(&spec).unwrap_or_else(|e| {
            eprintln!("error: composed fault spec '{spec}': {e}");
            std::process::exit(exit_codes::USAGE);
        })
    }
}

/// Everything one campaign produced, scorecard-ready.
#[derive(Serialize)]
struct CampaignCard {
    index: usize,
    seed: u64,
    workload: String,
    inject: String,
    storm: bool,
    submitted: u64,
    jobs: Vec<JobObservation>,
    store: Vec<StoreFileObservation>,
    violations: Vec<InvariantViolation>,
}

/// The whole run's scorecard.
#[derive(Serialize)]
struct Scorecard {
    seed: u64,
    campaigns: Vec<CampaignCard>,
    /// The service-layer overload leg (invariants 6–9).
    serve: ServeScorecard,
    total_jobs: u64,
    hang_preemptions: u64,
    store_corrupt_total: u64,
    retries: u64,
    violations_total: usize,
}

fn retry_policy(cli: &Cli, seed: u64) -> RetryPolicy {
    RetryPolicy {
        // Transient faults (panic-once, preempted hangs) need at
        // least one retry to demonstrate recovery.
        max_retries: cli.max_retries.max(2),
        base_backoff_ms: 1,
        max_backoff_ms: 4,
        seed,
    }
}

fn supervisor_config(cli: &Cli, seed: u64, queue: usize) -> SupervisorConfig {
    SupervisorConfig {
        // One worker keeps job interleaving — and therefore the
        // scorecard — a pure function of the seed.
        workers: 1,
        queue_capacity: queue.max(1),
        retry: retry_policy(cli, seed),
        // Healthy compiles beat at every pass boundary and after
        // every composed block; injected hangs never beat at all. The
        // slowest single block in the chaos pool takes well under two
        // seconds even in a debug build, so an 8-second default
        // separates the two with a wide margin on any machine.
        watchdog: Some(WatchdogConfig {
            hang_timeout_ms: cli.watchdog_ms.unwrap_or(8_000),
            ..WatchdogConfig::default()
        }),
        ..SupervisorConfig::default()
    }
}

/// Turns one drained job result into the plain-data observation the
/// invariant checks consume, verifying successful compiles against
/// the original program.
fn observe(
    result: &geyser_supervisor::JobResult,
    program: &Circuit,
    vcfg: &VerifyConfig,
) -> JobObservation {
    let verified_equivalent = result
        .compiled
        .as_ref()
        .map(|c| verify_compiled(program, c, vcfg).equivalent);
    JobObservation {
        id: result.id,
        workload: result.workload.clone(),
        state: result.state.label().to_string(),
        has_circuit: result.compiled.is_some(),
        has_error: result.error.is_some(),
        attempts: result.attempts,
        verified_equivalent,
        resume_bit_identical: None,
    }
}

/// Scans every surviving file in the campaign workdir and classifies
/// it for invariant 5. Deterministic: entries are sorted by name.
fn scan_store(dir: &Path) -> Vec<StoreFileObservation> {
    let mut names: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(entries) => entries.filter_map(|e| e.ok().map(|e| e.path())).collect(),
        Err(_) => return Vec::new(),
    };
    names.sort();
    names
        .into_iter()
        .filter(|p| p.is_file())
        .map(|path| {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let status = if is_corrupt_sidecar(&path) {
                StoreFileStatus::Quarantined
            } else if name.ends_with(".tmp") {
                StoreFileStatus::StaleTmp
            } else {
                // The campaign workdir only ever holds checkpoint
                // records, so "parses" means "is a loadable
                // checkpoint" (frame verified, JSON parsed, version
                // current).
                match load_checkpoint(&path) {
                    Ok(_) => StoreFileStatus::Parsed,
                    Err(CheckpointError::Corrupt { .. }) => StoreFileStatus::CorruptInPlace,
                    // The file vanished between listing and reading;
                    // nothing survives to classify.
                    Err(CheckpointError::Io(_)) => StoreFileStatus::StaleTmp,
                }
            };
            StoreFileObservation { path: name, status }
        })
        .collect()
}

/// Runs one campaign end to end and returns its scorecard entry.
fn run_campaign(
    cli: &Cli,
    index: usize,
    master_seed: u64,
    techniques: &[Technique],
) -> CampaignCard {
    let seed = splitmix64(master_seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut rng = Rng(seed);
    let schedule = draw_schedule(&mut rng);
    let faults = composed_faults(&schedule, cli.inject.as_deref());

    // Small workloads keep a campaign to seconds; the runtime under
    // test is the supervisor, not the annealer. qft-5 and qaoa-5 are
    // excluded because their worst single-block search exceeds the
    // watchdog's margin in debug builds (per-block work is the one
    // interval the heartbeat cannot subdivide).
    let pool: Vec<_> = cli
        .selected_workloads(false)
        .into_iter()
        .filter(|w| w.num_qubits <= 5 && w.name != "qft-5" && w.name != "qaoa-5")
        .collect();
    assert!(
        !pool.is_empty(),
        "workload filter left nothing small enough for chaos"
    );
    let workload = pool[rng.pick(pool.len() as u64) as usize];
    let program = cli.build(&workload);
    let mut cfg = cli.pipeline_config().with_seed(seed);
    // Chaos stresses the runtime, not the annealer: a single ansatz
    // layer and one restart cap each block's search at a fraction of
    // the watchdog timeout even in debug builds, while checkpointing,
    // kills, resume, and verification all still exercise the same
    // code paths. Determinism is unaffected — the bit-identical
    // reference compiles with the same config.
    cfg.composition.max_layers = 1;
    cfg.composition.anneal_iters = cfg.composition.anneal_iters.min(8);
    cfg.composition.restarts = 1;
    cfg.composition.retry_attempts = 0;
    let vcfg = VerifyConfig::default().with_seed(seed);

    let workdir = PathBuf::from(CHAOS_ROOT).join(format!("c{index}"));
    let _ = std::fs::remove_dir_all(&workdir);
    std::fs::create_dir_all(&workdir).expect("create campaign workdir");

    let supervisor = Supervisor::start_with_telemetry(
        supervisor_config(cli, seed, techniques.len()),
        cli.telemetry.clone(),
    );
    let mut submitted: u64 = 0;
    let mut handles = Vec::new();
    for &t in techniques {
        let ckpt = workdir.join(format!(
            "ckpt-{}-{}.json",
            workload.name,
            t.label().to_lowercase()
        ));
        let mut spec = JobSpec::new(workload.name, t, program.clone(), cfg.clone());
        spec.faults = faults.clone();
        spec.checkpoint = Some(ckpt.clone());
        let handle = supervisor
            .submit(spec)
            .expect("chaos queue admits every job");
        submitted += 1;
        handles.push((t, ckpt, handle));
    }
    if schedule.storm {
        // Cancellation storm: the single worker is busy with the
        // first job, so the last one is cancelled while queued (or,
        // worst case, mid-pass — both must classify cleanly).
        if let Some((_, _, handle)) = handles.last() {
            handle.cancel.cancel();
        }
    }
    let results = supervisor.shutdown();

    let mut jobs = Vec::new();
    for (t, ckpt, handle) in &handles {
        let result = results
            .iter()
            .find(|r| r.id == handle.id)
            .expect("no submitted job may be silently lost");
        let obs = observe(result, &program, &vcfg);
        // A cancelled job that left a checkpoint gets the resume leg:
        // pick the checkpoint up fault-free and demand bit-identical
        // output versus an uninterrupted compile.
        if result.state == JobState::Cancelled && ckpt.exists() {
            let reference =
                run_supervised_compile(&program, &cfg, &SupervisedCompileOptions::new(*t))
                    .expect("fault-free reference compile succeeds");
            let resumer = Supervisor::start_with_telemetry(
                supervisor_config(cli, seed, 1),
                cli.telemetry.clone(),
            );
            let mut spec = JobSpec::new(workload.name, *t, program.clone(), cfg.clone());
            spec.checkpoint = Some(ckpt.clone());
            spec.resume = true;
            let resume_handle = resumer.submit(spec).expect("resume job admitted");
            submitted += 1;
            let resume_results = resumer.shutdown();
            let resumed = resume_results
                .iter()
                .find(|r| r.id == resume_handle.id)
                .expect("resume job reaches a terminal state");
            let mut resumed_obs = observe(resumed, &program, &vcfg);
            resumed_obs.resume_bit_identical = Some(match &resumed.compiled {
                Some(c) => {
                    c.mapped().circuit().ops() == reference.mapped().circuit().ops()
                        && c.total_pulses() == reference.total_pulses()
                }
                None => false,
            });
            jobs.push(obs);
            jobs.push(resumed_obs);
            continue;
        }
        // Harness-cancelled storm victims are expected terminals, not
        // resume cases; everything else must classify on its own.
        jobs.push(obs);
    }

    let store = scan_store(&workdir);
    let mut violations = check_campaign_jobs(submitted, &jobs);
    violations.extend(check_store_scan(&store));

    CampaignCard {
        index,
        seed,
        workload: workload.name.to_string(),
        inject: faults.spec(),
        storm: schedule.storm,
        submitted,
        jobs,
        store,
        violations,
    }
}

fn main() {
    let mut cli = Cli::parse();
    // Reject a malformed --inject up front, not on the first campaign
    // that happens to compose it.
    if let Some(extra) = cli.inject.as_deref() {
        if let Err(e) = FaultInjector::parse(extra) {
            eprintln!("error: --inject: {e}");
            std::process::exit(exit_codes::USAGE);
        }
    }
    // The oracle and the corruption counters feed the scorecard, so
    // telemetry is always on for chaos.
    cli.telemetry = Telemetry::enabled();
    let techniques = cli.effective_techniques(&[Technique::Baseline, Technique::Geyser]);

    let mut campaigns = Vec::new();
    for index in 0..cli.campaigns {
        let card = run_campaign(&cli, index, cli.seed, &techniques);
        println!(
            "campaign {index:>3}: seed={:016x} workload={} inject='{}'{} jobs={} violations={}",
            card.seed,
            card.workload,
            card.inject,
            if card.storm { " +storm" } else { "" },
            card.jobs.len(),
            card.violations.len()
        );
        campaigns.push(card);
    }

    // Service-layer leg: one compact seeded overload storm against the
    // admission/fairness/dedup layer. A single cheap workload keeps
    // the compile memo small — the leg stresses the service state
    // machine, not the pipeline.
    let mut serve_cli = cli.clone();
    serve_cli.seed = splitmix64(cli.seed ^ 0xc0ff_ee00_c0ff_ee00);
    serve_cli.arrivals = 240;
    serve_cli.tenants = 3;
    serve_cli.workloads = vec!["vqe-4".into()];
    let serve = run_serve(&serve_cli);
    println!(
        "serve leg: seed={:016x} arrivals={} shed={} degraded={} dedup={} violations={}",
        serve.seed,
        serve.arrivals,
        serve.service.shed,
        serve.service.degraded,
        serve.service.dedup_attached,
        serve.violations.len()
    );

    let total_jobs: u64 = campaigns.iter().map(|c| c.submitted).sum();
    let violations_total: usize =
        campaigns.iter().map(|c| c.violations.len()).sum::<usize>() + serve.violations.len();
    let scorecard = Scorecard {
        seed: cli.seed,
        serve,
        total_jobs,
        hang_preemptions: cli
            .telemetry
            .counter_value("supervisor.hang_preemptions")
            .unwrap_or(0),
        store_corrupt_total: cli
            .telemetry
            .counter_value("store_corrupt_total")
            .unwrap_or(0),
        retries: cli
            .telemetry
            .counter_value("supervisor.retries")
            .unwrap_or(0),
        violations_total,
        campaigns,
    };
    if let Some(path) = &cli.json {
        std::fs::write(path, report_json(&scorecard))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("(wrote {path})");
    }
    println!(
        "chaos: seed {} — {} campaign(s), {} job(s), {} hang preemption(s), \
         {} quarantine(s), {} violation(s)",
        scorecard.seed,
        scorecard.campaigns.len(),
        scorecard.total_jobs,
        scorecard.hang_preemptions,
        scorecard.store_corrupt_total,
        scorecard.violations_total
    );
    if violations_total > 0 {
        for card in &scorecard.campaigns {
            for v in &card.violations {
                eprintln!(
                    "error: campaign {} (seed {:016x}, inject '{}'): {v}",
                    card.index, card.seed, card.inject
                );
            }
        }
        for v in &scorecard.serve.violations {
            eprintln!("error: serve leg (seed {:016x}): {v}", scorecard.serve.seed);
        }
        std::process::exit(exit_codes::CHAOS_INVARIANT);
    }
}
