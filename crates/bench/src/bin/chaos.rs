//! Chaos campaign harness for the supervised runtime.
//!
//! Usage: `chaos --seed S --campaigns N [--fast] [--workloads a,b]
//! [--watchdog-ms MS] [--max-retries R] [--inject EXTRA] [--json PATH]`
//!
//! Each campaign derives a private seed from the master seed, draws a
//! randomized fault schedule (composed `--inject` tokens: pass panics,
//! hangs, kill-after-block, checkpoint corruption, budget squeezes)
//! plus optional harness-driven cancellation storms, throws it at a
//! fresh supervised runtime with the hung-worker watchdog armed, and
//! then machine-checks the global invariants from
//! [`geyser_verify::invariants`]:
//!
//! 1. no submitted job is silently lost;
//! 2. every terminal job is classified (circuit iff success, typed
//!    error iff not);
//! 3. every successful compile passes the equivalence oracle;
//! 4. every checkpoint resume is bit-identical to an uninterrupted
//!    run;
//! 5. every surviving store file parses or was quarantined to a
//!    `.corrupt-<digest>` sidecar.
//!
//! After the fault campaigns, a compact **serve leg** replays a seeded
//! overload storm against the supervisor's service layer (admission
//! control, tenant fairness, single-flight dedup, load shedding) and
//! holds it to four more invariants:
//!
//! 6. every submission resolves to a recognized terminal outcome;
//! 7. every shed carries a typed rejection reason;
//! 8. sampled dedup-served results are bit-identical to solo compiles;
//! 9. no bystander tenant's p99 exceeds 3× its fair-share baseline
//!    while another tenant floods.
//!
//! Then twelve **restart legs** kill a journaled serve incarnation at
//! seeded points (`kill-mid-journal-append`, `torn-journal-tail`,
//! `kill-mid-compaction`), recover from the surviving write-ahead
//! journal, and diff the completed-job set against an uninjected
//! reference, plus a **cache leg** that crashes a shared-cache
//! compaction mid-commit and audits generation coherence:
//!
//! 10. no journal-acknowledged job is lost across a kill → recover;
//! 11. recovery is exactly-once: settled outcomes replay from the
//!     journal (bit-identical digests), never re-execute;
//! 12. the shared cache's generation state is coherent at every
//!     observable point — a crashed compaction leaves old or new,
//!     never a mix.
//!
//! Finally a **reuse leg** seeds a composition-reuse store with a
//! structured (fixed-angle QAOA) compile, rewrites the cached
//! negative entries as bogus `composed` records (simulated bit-rot
//! whose frames and schema still verify), and recompiles twice — once
//! clean, once under the composed `--inject` spec:
//!
//! 13. every replayed composition is re-verified against ε and the
//!     compiled circuit passes the equivalence oracle — the clean
//!     recompile must bounce every doctored entry off the ε gate,
//!     and a planted `reuse-poison,reuse-skip-verify` fault must be
//!     caught by the nonzero `unverified_replays` counter (exit 5).
//!
//! The whole run is a pure function of `--seed`: the same seed and
//! campaign count replay the same schedules, job outcomes, and
//! scorecard. An extra `--inject SPEC` is composed into every
//! campaign's schedule — `--inject miscompile:0` is the standard
//! planted-bug check that the harness really fails (invariant 3,
//! exit 5) when the compiler lies.
//!
//! Exits 0 with a scorecard (stdout summary, full JSON via `--json`)
//! when every invariant held, or prints each violation and exits
//! [`exit_codes::CHAOS_INVARIANT`].

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use geyser::store::{is_corrupt_sidecar, read_record_file, write_record_atomic};
use geyser::{verify_compiled, FaultInjector, PassManager, Technique, Telemetry};
use geyser_bench::serve::{run_serve, ServeScorecard};
use geyser_bench::{
    exit_codes, report_json, scan_generation, Cli, SharedCache, CACHE_LOCK_STALE_MS,
};
use geyser_circuit::Circuit;
use geyser_compose::Ansatz;
use geyser_reuse::{is_reuse_entry, parse_reuse_record, ReuseStats};
use geyser_supervisor::{
    load_checkpoint, load_journal_events, run_supervised_compile, CheckpointError, JobSpec,
    JobState, RetryPolicy, SupervisedCompileOptions, Supervisor, SupervisorConfig, WatchdogConfig,
};
use geyser_verify::{
    check_cache_generation, check_campaign_jobs, check_recovery, check_reuse, check_store_scan,
    CacheGenerationObservation, ChaosInvariant, InvariantViolation, JobObservation,
    RecoveryJobObservation, ReuseObservation, StoreFileObservation, StoreFileStatus, VerifyConfig,
};
use serde::Serialize;

/// Where campaign workdirs (checkpoints, quarantine sidecars) live.
const CHAOS_ROOT: &str = ".geyser-chaos";

/// Fixed number of kill → recover restart campaigns. Each derives its
/// own seed from the master seed, so the same `--seed` replays the
/// same kills against the same schedules.
const RESTART_CAMPAIGNS: usize = 12;

/// One splitmix64 draw — the repo's standard dependency-free
/// generator; chaining outputs yields the campaign seed stream.
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic per-campaign generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = splitmix64(self.0);
        self.0
    }

    fn pick(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// One campaign's drawn schedule: the fault spec composed into every
/// job plus whether the harness cancels the last submitted job.
struct Schedule {
    /// `--inject`-syntax fault spec ("" = clean campaign).
    spec: String,
    /// Cancel the last submitted job right after submission
    /// (cancellation storm).
    storm: bool,
}

/// Draws one schedule from the campaign's seed stream. The menu only
/// contains faults the runtime promises to absorb — a violated
/// invariant is therefore always a runtime bug (or a deliberately
/// planted one via the extra spec), never an expected outcome.
fn draw_schedule(rng: &mut Rng) -> Schedule {
    let (mut tokens, storm): (Vec<String>, bool) = match rng.pick(7) {
        0 => (vec![], false),
        1 => (vec!["pass-panic-once:block".into()], false),
        2 => (vec!["pass-panic:block".into()], false),
        3 => (vec!["hang-pass:block".into()], false),
        4 => (vec!["kill-after-block:1".into()], false),
        5 => (
            vec!["checkpoint-corrupt".into(), "kill-after-block:1".into()],
            false,
        ),
        _ => (vec![], true),
    };
    // A budget squeeze composes with anything that still lets the
    // compile make progress (the degraded fallback path is exactly
    // what it stresses).
    if !storm && rng.pick(3) == 0 {
        tokens.push("compose-timeout".into());
    }
    Schedule {
        spec: tokens.join(","),
        storm,
    }
}

/// Composes the drawn schedule with the user's extra `--inject` spec.
fn composed_faults(schedule: &Schedule, extra: Option<&str>) -> FaultInjector {
    let spec = match (schedule.spec.as_str(), extra) {
        ("", None) => String::new(),
        ("", Some(e)) => e.to_string(),
        (s, None) => s.to_string(),
        (s, Some(e)) => format!("{s},{e}"),
    };
    if spec.is_empty() {
        FaultInjector::none()
    } else {
        FaultInjector::parse(&spec).unwrap_or_else(|e| {
            eprintln!("error: composed fault spec '{spec}': {e}");
            std::process::exit(exit_codes::USAGE);
        })
    }
}

/// Everything one campaign produced, scorecard-ready.
#[derive(Serialize)]
struct CampaignCard {
    index: usize,
    seed: u64,
    workload: String,
    inject: String,
    storm: bool,
    submitted: u64,
    jobs: Vec<JobObservation>,
    store: Vec<StoreFileObservation>,
    violations: Vec<InvariantViolation>,
}

/// One kill → recover restart campaign diffed against its uninjected
/// reference (invariants 10–11: `no-acked-job-lost`,
/// `recovery-exactly-once`).
#[derive(Serialize)]
struct RestartCard {
    index: usize,
    seed: u64,
    /// The journal fault injected into the wounded incarnation.
    inject: String,
    /// Jobs the surviving journal acknowledged before the kill.
    acked: u64,
    /// Settled outcomes the recovery replayed verbatim.
    recovered_settled: u64,
    jobs: Vec<RecoveryJobObservation>,
    violations: Vec<InvariantViolation>,
}

/// The shared-cache crash-coherence leg (invariant 12:
/// `cache-generation-coherent`): a compaction killed mid-commit must
/// leave the old generation the readable truth, and a later takeover
/// must converge to a coherent new one.
#[derive(Serialize)]
struct CacheLegCard {
    /// Generation committed by the post-crash takeover.
    generation: u64,
    /// Scan taken while the crashed compactor's staging is on disk.
    mid_crash: CacheGenerationObservation,
    /// Scan after a fresh process swept and compacted over it.
    recovered: CacheGenerationObservation,
    violations: Vec<InvariantViolation>,
}

/// The composition-reuse leg (invariant 13: `reuse-verified`): a
/// doctored store's bogus composed entries must bounce off the ε
/// re-verification gate on a clean recompile, and escape — tripping
/// the invariant — only under the injected `reuse-skip-verify` fault.
#[derive(Serialize)]
struct ReuseLegCard {
    seed: u64,
    /// Entries the seeding compile persisted to the leg's store.
    store_entries: u64,
    /// Negative entries rewritten as bogus `composed` records.
    doctored: u64,
    /// Observation of the clean (fault-free) recompile.
    clean: ReuseObservation,
    /// ε-gate rejections the clean recompile recorded — the doctored
    /// entries bouncing off.
    clean_rejected: u64,
    /// Observation of the recompile under the composed `--inject`.
    faulted: ReuseObservation,
    violations: Vec<InvariantViolation>,
}

/// The whole run's scorecard.
#[derive(Serialize)]
struct Scorecard {
    seed: u64,
    campaigns: Vec<CampaignCard>,
    /// The service-layer overload leg (invariants 6–9).
    serve: ServeScorecard,
    /// The kill → recover restart legs (invariants 10–11).
    restart: Vec<RestartCard>,
    /// The shared-cache crash-coherence leg (invariant 12).
    cache: CacheLegCard,
    /// The composition-reuse leg (invariant 13).
    reuse: ReuseLegCard,
    total_jobs: u64,
    hang_preemptions: u64,
    store_corrupt_total: u64,
    retries: u64,
    violations_total: usize,
}

fn retry_policy(cli: &Cli, seed: u64) -> RetryPolicy {
    RetryPolicy {
        // Transient faults (panic-once, preempted hangs) need at
        // least one retry to demonstrate recovery.
        max_retries: cli.max_retries.max(2),
        base_backoff_ms: 1,
        max_backoff_ms: 4,
        seed,
    }
}

fn supervisor_config(cli: &Cli, seed: u64, queue: usize) -> SupervisorConfig {
    SupervisorConfig {
        // One worker keeps job interleaving — and therefore the
        // scorecard — a pure function of the seed.
        workers: 1,
        queue_capacity: queue.max(1),
        retry: retry_policy(cli, seed),
        // Healthy compiles beat at every pass boundary and after
        // every composed block; injected hangs never beat at all. The
        // slowest single block in the chaos pool takes well under two
        // seconds even in a debug build, so an 8-second default
        // separates the two with a wide margin on any machine.
        watchdog: Some(WatchdogConfig {
            hang_timeout_ms: cli.watchdog_ms.unwrap_or(8_000),
            ..WatchdogConfig::default()
        }),
        ..SupervisorConfig::default()
    }
}

/// Turns one drained job result into the plain-data observation the
/// invariant checks consume, verifying successful compiles against
/// the original program.
fn observe(
    result: &geyser_supervisor::JobResult,
    program: &Circuit,
    vcfg: &VerifyConfig,
) -> JobObservation {
    let verified_equivalent = result
        .compiled
        .as_ref()
        .map(|c| verify_compiled(program, c, vcfg).equivalent);
    JobObservation {
        id: result.id,
        workload: result.workload.clone(),
        state: result.state.label().to_string(),
        has_circuit: result.compiled.is_some(),
        has_error: result.error.is_some(),
        attempts: result.attempts,
        verified_equivalent,
        resume_bit_identical: None,
    }
}

/// Scans every surviving file in the campaign workdir and classifies
/// it for invariant 5. Deterministic: entries are sorted by name.
fn scan_store(dir: &Path) -> Vec<StoreFileObservation> {
    let mut names: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(entries) => entries.filter_map(|e| e.ok().map(|e| e.path())).collect(),
        Err(_) => return Vec::new(),
    };
    names.sort();
    names
        .into_iter()
        .filter(|p| p.is_file())
        .map(|path| {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let status = if is_corrupt_sidecar(&path) {
                StoreFileStatus::Quarantined
            } else if name.ends_with(".tmp") {
                StoreFileStatus::StaleTmp
            } else {
                // The campaign workdir only ever holds checkpoint
                // records, so "parses" means "is a loadable
                // checkpoint" (frame verified, JSON parsed, version
                // current).
                match load_checkpoint(&path) {
                    Ok(_) => StoreFileStatus::Parsed,
                    Err(CheckpointError::Corrupt { .. }) => StoreFileStatus::CorruptInPlace,
                    // The file vanished between listing and reading;
                    // nothing survives to classify.
                    Err(CheckpointError::Io(_)) => StoreFileStatus::StaleTmp,
                }
            };
            StoreFileObservation { path: name, status }
        })
        .collect()
}

/// Runs one campaign end to end and returns its scorecard entry.
fn run_campaign(
    cli: &Cli,
    index: usize,
    master_seed: u64,
    techniques: &[Technique],
) -> CampaignCard {
    let seed = splitmix64(master_seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut rng = Rng(seed);
    let schedule = draw_schedule(&mut rng);
    let faults = composed_faults(&schedule, cli.inject.as_deref());

    // Small workloads keep a campaign to seconds; the runtime under
    // test is the supervisor, not the annealer. qft-5 and qaoa-5 are
    // excluded because their worst single-block search exceeds the
    // watchdog's margin in debug builds (per-block work is the one
    // interval the heartbeat cannot subdivide).
    let pool: Vec<_> = cli
        .selected_workloads(false)
        .into_iter()
        .filter(|w| w.num_qubits <= 5 && w.name != "qft-5" && w.name != "qaoa-5")
        .collect();
    assert!(
        !pool.is_empty(),
        "workload filter left nothing small enough for chaos"
    );
    let workload = pool[rng.pick(pool.len() as u64) as usize];
    let program = cli.build(&workload);
    let mut cfg = cli.pipeline_config().with_seed(seed);
    // Chaos stresses the runtime, not the annealer: a single ansatz
    // layer and one restart cap each block's search at a fraction of
    // the watchdog timeout even in debug builds, while checkpointing,
    // kills, resume, and verification all still exercise the same
    // code paths. Determinism is unaffected — the bit-identical
    // reference compiles with the same config.
    cfg.composition.max_layers = 1;
    cfg.composition.anneal_iters = cfg.composition.anneal_iters.min(8);
    cfg.composition.restarts = 1;
    cfg.composition.retry_attempts = 0;
    let vcfg = VerifyConfig::default().with_seed(seed);

    let workdir = PathBuf::from(CHAOS_ROOT).join(format!("c{index}"));
    let _ = std::fs::remove_dir_all(&workdir);
    std::fs::create_dir_all(&workdir).expect("create campaign workdir");

    let supervisor = Supervisor::start_with_telemetry(
        supervisor_config(cli, seed, techniques.len()),
        cli.telemetry.clone(),
    );
    let mut submitted: u64 = 0;
    let mut handles = Vec::new();
    for &t in techniques {
        let ckpt = workdir.join(format!(
            "ckpt-{}-{}.json",
            workload.name,
            t.label().to_lowercase()
        ));
        let mut spec = JobSpec::new(workload.name, t, program.clone(), cfg.clone());
        spec.faults = faults.clone();
        spec.checkpoint = Some(ckpt.clone());
        let handle = supervisor
            .submit(spec)
            .expect("chaos queue admits every job");
        submitted += 1;
        handles.push((t, ckpt, handle));
    }
    if schedule.storm {
        // Cancellation storm: the single worker is busy with the
        // first job, so the last one is cancelled while queued (or,
        // worst case, mid-pass — both must classify cleanly).
        if let Some((_, _, handle)) = handles.last() {
            handle.cancel.cancel();
        }
    }
    let results = supervisor.shutdown();

    let mut jobs = Vec::new();
    for (t, ckpt, handle) in &handles {
        let result = results
            .iter()
            .find(|r| r.id == handle.id)
            .expect("no submitted job may be silently lost");
        let obs = observe(result, &program, &vcfg);
        // A cancelled job that left a checkpoint gets the resume leg:
        // pick the checkpoint up fault-free and demand bit-identical
        // output versus an uninterrupted compile.
        if result.state == JobState::Cancelled && ckpt.exists() {
            let reference =
                run_supervised_compile(&program, &cfg, &SupervisedCompileOptions::new(*t))
                    .expect("fault-free reference compile succeeds");
            let resumer = Supervisor::start_with_telemetry(
                supervisor_config(cli, seed, 1),
                cli.telemetry.clone(),
            );
            let mut spec = JobSpec::new(workload.name, *t, program.clone(), cfg.clone());
            spec.checkpoint = Some(ckpt.clone());
            spec.resume = true;
            let resume_handle = resumer.submit(spec).expect("resume job admitted");
            submitted += 1;
            let resume_results = resumer.shutdown();
            let resumed = resume_results
                .iter()
                .find(|r| r.id == resume_handle.id)
                .expect("resume job reaches a terminal state");
            let mut resumed_obs = observe(resumed, &program, &vcfg);
            resumed_obs.resume_bit_identical = Some(match &resumed.compiled {
                Some(c) => {
                    c.mapped().circuit().ops() == reference.mapped().circuit().ops()
                        && c.total_pulses() == reference.total_pulses()
                }
                None => false,
            });
            jobs.push(obs);
            jobs.push(resumed_obs);
            continue;
        }
        // Harness-cancelled storm victims are expected terminals, not
        // resume cases; everything else must classify on its own.
        jobs.push(obs);
    }

    let store = scan_store(&workdir);
    let mut violations = check_campaign_jobs(submitted, &jobs);
    violations.extend(check_store_scan(&store));

    CampaignCard {
        index,
        seed,
        workload: workload.name.to_string(),
        inject: faults.spec(),
        storm: schedule.storm,
        submitted,
        jobs,
        store,
        violations,
    }
}

/// Runs one restart campaign: an uninjected reference run, a journaled
/// incarnation wounded by one of the three journal faults, and a
/// `--recover` incarnation over the surviving journal, diffed job for
/// job. `--no-shed` mode makes the completed set schedule-determined,
/// so recovery must reproduce the reference's ids *and* digests
/// exactly.
fn run_restart_campaign(cli: &Cli, index: usize, master_seed: u64) -> RestartCard {
    let seed = splitmix64(
        master_seed ^ 0x6a09_e667_f3bc_c908 ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
    );
    let workdir = PathBuf::from(CHAOS_ROOT).join(format!("restart-{index}"));
    let _ = std::fs::remove_dir_all(&workdir);
    std::fs::create_dir_all(&workdir).expect("create restart workdir");
    let journal = workdir.join("serve.journal");

    let mut base = cli.clone();
    base.seed = seed;
    base.arrivals = 36;
    base.tenants = 2;
    base.workloads = vec!["vqe-4".into()];
    base.no_shed = true;
    base.journal = None;
    base.recover = false;
    base.inject = None;

    let reference = run_serve(&base);

    // Rotate through the three journal faults; the kill point is
    // seeded so the 12 campaigns tear the log at a spread of depths.
    let kill_at = 5 + (seed % 59) as usize;
    let inject = match index % 3 {
        0 => format!("kill-mid-journal-append:{kill_at}"),
        1 => "torn-journal-tail".to_string(),
        _ => "kill-mid-compaction".to_string(),
    };
    let mut wounded = base.clone();
    wounded.journal = Some(journal.to_string_lossy().into_owned());
    wounded.inject = Some(inject.clone());
    let _ = run_serve(&wounded);

    // What the crashed journal acknowledged, read through the same
    // scanner recovery uses (torn tails tolerated, mid-file
    // corruption is not).
    let (events, _torn_bytes) =
        load_journal_events(&journal).expect("a crashed journal must still scan");
    let mut acked: BTreeSet<u64> = BTreeSet::new();
    for ev in &events {
        if ev.kind != "snapshot" && ev.id != u64::MAX {
            acked.insert(ev.id);
        }
    }

    let mut recovering = base.clone();
    recovering.journal = wounded.journal.clone();
    recovering.recover = true;
    let recovered = run_serve(&recovering);

    let ref_digests: BTreeMap<u64, u64> = reference
        .completions
        .iter()
        .map(|c| (c.id, c.digest))
        .collect();
    let rec_digests: BTreeMap<u64, u64> = recovered
        .completions
        .iter()
        .map(|c| (c.id, c.digest))
        .collect();
    let mut reruns: BTreeMap<u64, u64> = BTreeMap::new();
    for id in &recovered.settled_reruns {
        *reruns.entry(*id).or_insert(0) += 1;
    }
    let settled_ids: BTreeSet<u64> = recovered.jobs.iter().map(|j| j.id).collect();

    let jobs: Vec<RecoveryJobObservation> = (0..reference.arrivals)
        .map(|id| RecoveryJobObservation {
            id,
            acked: acked.contains(&id),
            settled: settled_ids.contains(&id),
            runs_after_settle: reruns.get(&id).copied().unwrap_or(0),
            digest_matches_reference: rec_digests
                .get(&id)
                .map(|d| ref_digests.get(&id) == Some(d)),
        })
        .collect();

    let mut violations = check_recovery(&jobs);
    // The recovery incarnation is also held to the serve-layer
    // invariants (completeness, typed sheds, dedup bit-identity).
    violations.extend(recovered.violations.clone());
    // The completed set must not merely be consistent — it must be
    // the reference set. Any reference job missing from recovery is a
    // lost job even if the journal never acknowledged it (no-shed
    // schedules complete everything).
    for id in ref_digests.keys() {
        if !rec_digests.contains_key(id) {
            violations.push(InvariantViolation::new(
                geyser_verify::ChaosInvariant::NoAckedJobLost,
                format!("job {id} completed in the reference but not after recovery"),
            ));
        }
    }

    RestartCard {
        index,
        seed,
        inject,
        acked: acked.len() as u64,
        recovered_settled: recovered.recovered_settled,
        jobs,
        violations,
    }
}

/// Runs the shared-cache crash-coherence leg: commit one generation,
/// kill the next compaction mid-commit, audit the wreckage in place,
/// then let a fresh process sweep, take over the stale lock, and
/// commit — auditing again. Both scans must be coherent: the crash
/// window exposes the *old* generation, never a mix.
fn run_cache_leg(cli: &Cli) -> CacheLegCard {
    let root = PathBuf::from(CHAOS_ROOT).join("cache");
    let _ = std::fs::remove_dir_all(&root);

    let mut store = SharedCache::open(&root, &cli.telemetry).expect("shared cache opens");
    store
        .compact(1_000, &cli.telemetry)
        .expect("healthy compaction commits");
    let crash_ms = 2_000;
    store
        .compact_crashing(crash_ms, &cli.telemetry)
        .expect("crashed compaction stages without committing");

    // Mid-crash: the staged generation and the dead compactor's lock
    // are on disk, but readers must still see the old generation as
    // the sole truth (the lock is held, not yet stale).
    let mid_crash = scan_generation(&root, crash_ms + 1);
    let mut violations = check_cache_generation(&mid_crash);

    // Takeover: a later process sweeps the staging debris, declares
    // the lock stale, and commits a coherent new generation.
    let mut takeover = SharedCache::open(&root, &cli.telemetry).expect("shared cache reopens");
    let after_ms = crash_ms + CACHE_LOCK_STALE_MS + 1;
    takeover
        .compact(after_ms, &cli.telemetry)
        .expect("takeover compaction commits");
    let recovered = scan_generation(&root, after_ms + 1);
    violations.extend(check_cache_generation(&recovered));

    CacheLegCard {
        generation: takeover.generation(),
        mid_crash,
        recovered,
        violations,
    }
}

/// Rewrites every cached *negative* entry in the leg's reuse store as
/// a bogus `composed` record with plausible 1-layer ansatz parameters
/// — simulated bit-rot (or a stale-era store) whose frames and schema
/// still verify, so only the ε re-verification gate stands between
/// the garbage and the output. Returns how many entries were doctored.
fn doctor_reuse_store(dir: &Path) -> u64 {
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| is_reuse_entry(p))
            .collect(),
        Err(_) => return 0,
    };
    paths.sort();
    let ansatz = Ansatz::new(1);
    let mut doctored = 0u64;
    for path in paths {
        let Ok(payload) = read_record_file(&path) else {
            continue;
        };
        let Ok(mut record) = parse_reuse_record(payload.text()) else {
            continue;
        };
        if record.outcome == "composed" {
            continue;
        }
        record.outcome = "composed".to_string();
        record.layers = 1;
        record.hsd = 1e-9;
        record.params = (0..ansatz.num_params())
            .map(|i| 0.11 + 0.37 * i as f64)
            .collect();
        let json = serde_json::to_string_pretty(&record).expect("reuse record serializes");
        write_record_atomic(&path, &json).expect("doctor reuse entry");
        doctored += 1;
    }
    doctored
}

/// Converts a compile's [`ReuseStats`] plus the oracle's verdict into
/// the plain-data observation the reuse invariant consumes.
fn observe_reuse(stats: &ReuseStats, verified_equivalent: Option<bool>) -> ReuseObservation {
    ReuseObservation {
        blocks_fingerprinted: stats.blocks_fingerprinted,
        exact_hits: stats.exact_hits,
        unverified_replays: stats.unverified_replays,
        verified_equivalent,
    }
}

/// Runs the composition-reuse leg: seed a store with a structured
/// compile, doctor the cached negative entries into bogus composed
/// records, then recompile clean (the ε gate must bounce every bogus
/// replay) and once more under the composed `--inject` spec (a
/// planted `reuse-poison,reuse-skip-verify` must trip invariant 13).
fn run_reuse_leg(cli: &Cli) -> ReuseLegCard {
    let seed = splitmix64(cli.seed ^ 0x5eed_5eed_5eed_5eed);
    let workdir = PathBuf::from(CHAOS_ROOT).join("reuse");
    let _ = std::fs::remove_dir_all(&workdir);
    std::fs::create_dir_all(&workdir).expect("create reuse workdir");
    let store = workdir.join("store");

    // A fixed-angle QAOA is the canonical structured workload: its
    // repeated layers guarantee exact fingerprint hits. The chaos
    // budget caps the per-block search like the fault campaigns do —
    // the leg stresses the replay gate, not the annealer.
    let circuit = geyser_workloads::qaoa_fixed(4, 4, seed);
    let mut cfg = cli
        .pipeline_config()
        .with_seed(seed)
        .with_reuse_store(&store);
    cfg.composition.max_layers = 1;
    cfg.composition.anneal_iters = cfg.composition.anneal_iters.min(8);
    cfg.composition.restarts = 1;
    cfg.composition.retry_attempts = 0;
    let vcfg = VerifyConfig::default().with_seed(seed);

    let compile = |faults: FaultInjector| {
        let compiled = PassManager::for_technique(Technique::Geyser)
            .with_faults(faults)
            .with_telemetry(cli.telemetry.clone())
            .run(&circuit, &cfg)
            .expect("reuse leg compiles");
        let stats = compiled
            .report()
            .and_then(|r| r.reuse)
            .expect("reuse stats present when reuse is on");
        let verified = verify_compiled(&circuit, &compiled, &vcfg).equivalent;
        (stats, verified)
    };

    // Seed run: populate the store with honest entries.
    let (seed_stats, seed_verified) = compile(FaultInjector::none());
    assert!(seed_verified, "the seeding compile must be clean");
    let doctored = doctor_reuse_store(&store);

    // Clean recompile over the doctored store: every bogus composed
    // replay must bounce off the ε gate, and the output must still
    // pass the oracle.
    let (clean_stats, clean_verified) = compile(FaultInjector::none());
    let clean = observe_reuse(&clean_stats, Some(clean_verified));
    let mut violations = check_reuse(&clean);
    if clean.exact_hits == 0 && clean_stats.exact_hits_rejected == 0 {
        // A leg that replays nothing proves nothing: the structured
        // workload guarantees repeated fingerprints, so a recompile
        // that neither accepted nor bounced a single cached entry
        // means the reuse plumbing regressed.
        violations.push(InvariantViolation::new(
            ChaosInvariant::ReuseVerified,
            "the clean recompile replayed no cached entries — the reuse index is inert".to_string(),
        ));
    }

    // Faulted recompile: the composed `--inject` spec is applied to
    // the same store. With `reuse-poison,reuse-skip-verify` planted,
    // the doctored entries escape unverified and invariant 13 trips.
    let faults = match cli.inject.as_deref() {
        Some(spec) => FaultInjector::parse(spec).expect("validated in main"),
        None => FaultInjector::none(),
    };
    let (faulted_stats, faulted_verified) = compile(faults);
    let faulted = observe_reuse(&faulted_stats, Some(faulted_verified));
    violations.extend(check_reuse(&faulted));

    ReuseLegCard {
        seed,
        store_entries: seed_stats.store_entries_saved,
        doctored,
        clean,
        clean_rejected: clean_stats.exact_hits_rejected,
        faulted,
        violations,
    }
}

fn main() {
    let mut cli = Cli::parse();
    // Reject a malformed --inject up front, not on the first campaign
    // that happens to compose it.
    if let Some(extra) = cli.inject.as_deref() {
        if let Err(e) = FaultInjector::parse(extra) {
            eprintln!("error: --inject: {e}");
            std::process::exit(exit_codes::USAGE);
        }
    }
    // The oracle and the corruption counters feed the scorecard, so
    // telemetry is always on for chaos.
    cli.telemetry = Telemetry::enabled();
    let techniques = cli.effective_techniques(&[Technique::Baseline, Technique::Geyser]);

    let mut campaigns = Vec::new();
    for index in 0..cli.campaigns {
        let card = run_campaign(&cli, index, cli.seed, &techniques);
        println!(
            "campaign {index:>3}: seed={:016x} workload={} inject='{}'{} jobs={} violations={}",
            card.seed,
            card.workload,
            card.inject,
            if card.storm { " +storm" } else { "" },
            card.jobs.len(),
            card.violations.len()
        );
        campaigns.push(card);
    }

    // Service-layer leg: one compact seeded overload storm against the
    // admission/fairness/dedup layer. A single cheap workload keeps
    // the compile memo small — the leg stresses the service state
    // machine, not the pipeline.
    let mut serve_cli = cli.clone();
    serve_cli.seed = splitmix64(cli.seed ^ 0xc0ff_ee00_c0ff_ee00);
    serve_cli.arrivals = 240;
    serve_cli.tenants = 3;
    serve_cli.workloads = vec!["vqe-4".into()];
    let serve = run_serve(&serve_cli);
    println!(
        "serve leg: seed={:016x} arrivals={} shed={} degraded={} dedup={} violations={}",
        serve.seed,
        serve.arrivals,
        serve.service.shed,
        serve.service.degraded,
        serve.service.dedup_attached,
        serve.violations.len()
    );

    // Restart legs: kill a journaled serve incarnation at a seeded
    // point, recover, and demand the reference completed set back.
    let mut restart = Vec::new();
    for index in 0..RESTART_CAMPAIGNS {
        let card = run_restart_campaign(&cli, index, cli.seed);
        println!(
            "restart {index:>2}: seed={:016x} inject='{}' acked={} replayed={} violations={}",
            card.seed,
            card.inject,
            card.acked,
            card.recovered_settled,
            card.violations.len()
        );
        restart.push(card);
    }

    // Shared-cache crash-coherence leg.
    let cache = run_cache_leg(&cli);
    println!(
        "cache leg: generation={} mid-crash coherent={} recovered coherent={} violations={}",
        cache.generation,
        cache.mid_crash.generation_parses && cache.mid_crash.entries_beyond_generation == 0,
        cache.recovered.generation_parses && !cache.recovered.stale_lock,
        cache.violations.len()
    );

    // Composition-reuse leg: doctored store vs the ε replay gate.
    let reuse = run_reuse_leg(&cli);
    println!(
        "reuse leg: seed={:016x} entries={} doctored={} hits={} rejected={} violations={}",
        reuse.seed,
        reuse.store_entries,
        reuse.doctored,
        reuse.clean.exact_hits,
        reuse.clean_rejected,
        reuse.violations.len()
    );

    let total_jobs: u64 = campaigns.iter().map(|c| c.submitted).sum();
    let violations_total: usize = campaigns.iter().map(|c| c.violations.len()).sum::<usize>()
        + serve.violations.len()
        + restart.iter().map(|c| c.violations.len()).sum::<usize>()
        + cache.violations.len()
        + reuse.violations.len();
    let scorecard = Scorecard {
        seed: cli.seed,
        serve,
        restart,
        cache,
        reuse,
        total_jobs,
        hang_preemptions: cli
            .telemetry
            .counter_value("supervisor.hang_preemptions")
            .unwrap_or(0),
        store_corrupt_total: cli
            .telemetry
            .counter_value("store_corrupt_total")
            .unwrap_or(0),
        retries: cli
            .telemetry
            .counter_value("supervisor.retries")
            .unwrap_or(0),
        violations_total,
        campaigns,
    };
    if let Some(path) = &cli.json {
        std::fs::write(path, report_json(&scorecard))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("(wrote {path})");
    }
    println!(
        "chaos: seed {} — {} campaign(s), {} job(s), {} hang preemption(s), \
         {} quarantine(s), {} violation(s)",
        scorecard.seed,
        scorecard.campaigns.len(),
        scorecard.total_jobs,
        scorecard.hang_preemptions,
        scorecard.store_corrupt_total,
        scorecard.violations_total
    );
    if violations_total > 0 {
        for card in &scorecard.campaigns {
            for v in &card.violations {
                eprintln!(
                    "error: campaign {} (seed {:016x}, inject '{}'): {v}",
                    card.index, card.seed, card.inject
                );
            }
        }
        for v in &scorecard.serve.violations {
            eprintln!("error: serve leg (seed {:016x}): {v}", scorecard.serve.seed);
        }
        for card in &scorecard.restart {
            for v in &card.violations {
                eprintln!(
                    "error: restart {} (seed {:016x}, inject '{}'): {v}",
                    card.index, card.seed, card.inject
                );
            }
        }
        for v in &scorecard.cache.violations {
            eprintln!("error: cache leg: {v}");
        }
        for v in &scorecard.reuse.violations {
            eprintln!("error: reuse leg: {v}");
        }
        std::process::exit(exit_codes::CHAOS_INVARIANT);
    }
}
