//! Figure 12: total pulse counts under Baseline, OptiMap, and Geyser.

use geyser::Technique;
use geyser_bench::{
    collect_reports, compile_techniques, maybe_write_json, maybe_write_reports, maybe_write_trace,
    metrics, print_rows, Cli, Row,
};

fn main() {
    let cli = Cli::parse();
    let cfg = cli.pipeline_config();
    let techniques = cli.effective_techniques(&Technique::NEUTRAL_ATOM);
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    for spec in cli.selected_workloads(false) {
        let program = cli.build(&spec);
        let compiled = compile_techniques(&cli, spec.name, &program, &techniques, &cfg);
        collect_reports(spec.name, &compiled, &mut reports);
        let baseline = compiled[0].1.total_pulses() as f64;
        for (t, c) in &compiled {
            rows.push(Row {
                workload: spec.name.to_string(),
                technique: t.label().to_string(),
                metrics: metrics(&[
                    ("total_pulses", c.total_pulses() as f64),
                    ("vs_baseline", c.total_pulses() as f64 / baseline.max(1.0)),
                ]),
            });
        }
    }
    print_rows("Figure 12: total pulses (lower is better)", &rows);
    maybe_write_json(&cli, &rows);
    maybe_write_reports(&cli, &reports);
    maybe_write_trace(&cli);
}
