//! Figure 15: TVD to the ideal output under the default 0.1% noise
//! for Baseline, OptiMap, and Geyser.

use geyser::{try_evaluate_tvd_traced, Technique};
use geyser_bench::{
    compile_techniques, maybe_write_json, maybe_write_trace, metrics, print_rows, Cli, Row,
};
use geyser_sim::SimFaults;

fn main() {
    let cli = Cli::parse();
    let cfg = cli.pipeline_config();
    let noise = cli.noise_model();
    let techniques = cli.effective_techniques(&Technique::NEUTRAL_ATOM);
    let mut rows = Vec::new();
    for spec in cli.selected_workloads(true) {
        let program = cli.build(&spec);
        for (t, c) in compile_techniques(&cli, spec.name, &program, &techniques, &cfg) {
            let report = try_evaluate_tvd_traced(
                &c,
                &program,
                &noise,
                cli.trajectories,
                cli.seed,
                &SimFaults::none(),
                &cli.telemetry,
            )
            .unwrap_or_else(|e| panic!("{e}"));
            rows.push(Row {
                workload: spec.name.to_string(),
                technique: t.label().to_string(),
                metrics: metrics(&[
                    ("tvd", report.tvd_to_ideal),
                    ("compilation_tvd", report.compilation_tvd),
                    ("pulses", c.total_pulses() as f64),
                ]),
            });
        }
    }
    print_rows(
        &format!(
            "Figure 15: TVD to ideal output @ {:.2}% noise ({} trajectories)",
            noise.bit_flip * 100.0,
            cli.trajectories
        ),
        &rows,
    );
    maybe_write_json(&cli, &rows);
    maybe_write_trace(&cli);
}
