//! Figure 14 (a/b/c): U3, CZ, and CCZ gate counts under Baseline,
//! OptiMap, and Geyser. Only Geyser introduces CCZ gates.

use geyser::Technique;
use geyser_bench::{
    compile_techniques, maybe_write_json, maybe_write_trace, metrics, print_rows, Cli, Row,
};

fn main() {
    let cli = Cli::parse();
    let cfg = cli.pipeline_config();
    let techniques = cli.effective_techniques(&Technique::NEUTRAL_ATOM);
    let mut rows = Vec::new();
    for spec in cli.selected_workloads(false) {
        let program = cli.build(&spec);
        for (t, c) in compile_techniques(&cli, spec.name, &program, &techniques, &cfg) {
            let counts = c.gate_counts();
            rows.push(Row {
                workload: spec.name.to_string(),
                technique: t.label().to_string(),
                metrics: metrics(&[
                    ("u3_gates", counts.u3 as f64),
                    ("cz_gates", counts.cz as f64),
                    ("ccz_gates", counts.ccz as f64),
                ]),
            });
        }
    }
    print_rows("Figure 14: gate counts by type", &rows);
    maybe_write_json(&cli, &rows);
    maybe_write_trace(&cli);
}
