//! Regression replay of the quarantine corpus.
//!
//! Re-runs every minimized reproducer filed by `fuzz` under the exact
//! pipeline config it was found with, and checks the outcome against
//! the entry's recorded verdict:
//!
//! * Entries **with** an `inject` spec are expected failures — proof
//!   that the harness still catches the seeded fault. Replay passes
//!   only if the failure reproduces bit-identically (same kind, same
//!   worst fidelity); a clean run means the detection path regressed.
//! * Entries **without** an `inject` spec are genuine bugs. Replay
//!   fails the build while they still reproduce, and reports them as
//!   fixed (delete the entry) once the compiler stops miscompiling
//!   them.
//!
//! Exit status: 0 = corpus green, 1 = regressions, 2 = corpus or
//! usage error.

use geyser::{FaultInjector, PassManager, PipelineConfig, Technique, Telemetry};
use geyser_bench::{exit_codes, Cli};
use geyser_verify::{load_entries, QuarantineEntry, VerifyConfig};

/// What replaying the reproducer cost this time, for comparison
/// against the costs recorded when the entry was filed.
struct ReplayCost {
    /// Wall-clock milliseconds of this run's compile.
    compile_ms: u64,
    /// Annealer objective evaluations this run consumed (absent for
    /// techniques that never compose).
    anneal_evaluations: Option<u64>,
}

/// What one replayed reproducer did.
enum Outcome {
    /// Compiled and verified clean.
    Clean,
    /// Failed again: kind (`compile-error` / `miscompile`) and the
    /// worst fidelity measured (`-1.0` for compile errors).
    Failed {
        kind: &'static str,
        worst_fidelity: f64,
    },
}

/// Rebuilds the pipeline config and run seed from a stored config tag
/// (`s<seed>-<fast|paper>-st<steps|d>`).
fn parse_config(tag: &str) -> Result<(PipelineConfig, u64), String> {
    let mut seed = None;
    let mut fast = None;
    for token in tag.split('-') {
        match token {
            "fast" => fast = Some(true),
            "paper" => fast = Some(false),
            t if t.starts_with('s') && !t.starts_with("st") => {
                seed = t[1..].parse::<u64>().ok();
            }
            _ => {}
        }
    }
    match (seed, fast) {
        (Some(seed), Some(true)) => Ok((PipelineConfig::fast().with_seed(seed), seed)),
        (Some(seed), Some(false)) => Ok((PipelineConfig::paper().with_seed(seed), seed)),
        _ => Err(format!("unparseable config tag '{tag}'")),
    }
}

fn replay(entry: &QuarantineEntry) -> Result<(Outcome, ReplayCost), String> {
    let circuit = entry.circuit()?;
    let technique = Technique::from_label(&entry.technique)
        .ok_or_else(|| format!("unknown technique '{}'", entry.technique))?;
    let (mut cfg, run_seed) = parse_config(&entry.config)?;
    // Entries filed under a fuzzed hardware scenario replay on that
    // exact machine; pre-hardware entries keep the paper default.
    if let Some(spec) = &entry.hardware {
        cfg = cfg.with_hardware(spec.clone());
    }
    // Entries found with the reuse index on replay through the same
    // compose path (the in-process index is deterministic).
    if entry.reuse {
        cfg = cfg.with_reuse();
    }
    let faults = match &entry.inject {
        Some(spec) => FaultInjector::parse(spec).map_err(|e| e.to_string())?,
        None => FaultInjector::none(),
    };
    // Telemetry is observational only, so timing this run cannot
    // perturb the bit-identical-reproduction check below.
    let telemetry = Telemetry::enabled();
    let started = std::time::Instant::now();
    let result = PassManager::for_technique(technique)
        .with_faults(faults)
        .with_telemetry(telemetry.clone())
        .run(&circuit, &cfg);
    let cost = ReplayCost {
        compile_ms: started.elapsed().as_millis() as u64,
        anneal_evaluations: telemetry.counter_value("compose.anneal_evaluations"),
    };
    let compiled = match result {
        Ok(c) => c,
        Err(_) => {
            return Ok((
                Outcome::Failed {
                    kind: "compile-error",
                    worst_fidelity: -1.0,
                },
                cost,
            ))
        }
    };
    let vcfg = VerifyConfig::default().with_seed(run_seed);
    let stats = geyser::verify_compiled(&circuit, &compiled, &vcfg);
    if stats.equivalent {
        Ok((Outcome::Clean, cost))
    } else {
        Ok((
            Outcome::Failed {
                kind: "miscompile",
                worst_fidelity: stats.worst_fidelity,
            },
            cost,
        ))
    }
}

/// Renders an optional recorded metric against its current value, so
/// reproducer-cost drift is visible across compiler versions without
/// being asserted (machine speed varies; only the trend matters).
fn cost_line(entry: &QuarantineEntry, cost: &ReplayCost) -> String {
    let ms = match entry.compile_ms {
        Some(recorded) => format!("compile {} ms (filed at {recorded} ms)", cost.compile_ms),
        None => format!("compile {} ms (no cost recorded)", cost.compile_ms),
    };
    match (cost.anneal_evaluations, entry.anneal_evaluations) {
        (Some(now), Some(recorded)) => {
            format!("{ms}, anneal evals {now} (filed at {recorded})")
        }
        (Some(now), None) => format!("{ms}, anneal evals {now}"),
        (None, _) => ms,
    }
}

/// The entry's failure kind: everything before the first `:`.
fn recorded_kind(entry: &QuarantineEntry) -> &str {
    entry.failure.split(':').next().unwrap_or("").trim()
}

fn main() {
    let cli = Cli::parse();
    let dir = cli.quarantine_dir();
    let entries = match load_entries(&dir) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("error: quarantine corpus {}/: {e}", dir.display());
            std::process::exit(exit_codes::USAGE);
        }
    };
    if entries.is_empty() {
        println!(
            "replay: empty corpus at {}/ — nothing to check",
            dir.display()
        );
        return;
    }

    let mut regressions = 0usize;
    for entry in &entries {
        let (outcome, cost) = match replay(entry) {
            Ok(outcome) => outcome,
            Err(e) => {
                eprintln!("error: entry {}: {e}", entry.id);
                std::process::exit(exit_codes::USAGE);
            }
        };
        let expected_failure = entry.inject.is_some();
        match outcome {
            Outcome::Failed {
                kind,
                worst_fidelity,
            } => {
                let same_kind = kind == recorded_kind(entry);
                // Bit-identical reproduction: the oracle is
                // deterministic, so a drifting fidelity means the
                // reproducer no longer exercises the recorded failure.
                let same_verdict = same_kind && worst_fidelity == entry.worst_fidelity;
                match (expected_failure, same_verdict) {
                    (true, true) => println!("ok {}: injected failure reproduces", entry.id),
                    (true, false) => {
                        regressions += 1;
                        println!(
                            "REGRESSION {}: expected {} (fidelity {}), got {} (fidelity {})",
                            entry.id, entry.failure, entry.worst_fidelity, kind, worst_fidelity
                        );
                    }
                    (false, _) => {
                        regressions += 1;
                        println!(
                            "REGRESSION {}: genuine bug still reproduces ({kind})",
                            entry.id
                        );
                    }
                }
            }
            Outcome::Clean if expected_failure => {
                regressions += 1;
                println!(
                    "REGRESSION {}: injected fault '{}' no longer detected — \
                     the oracle or fault plumbing regressed",
                    entry.id,
                    entry.inject.as_deref().unwrap_or("")
                );
            }
            Outcome::Clean => println!(
                "fixed {}: no longer reproduces — delete the entry to retire it",
                entry.id
            ),
        }
        println!("    {}", cost_line(entry, &cost));
    }
    println!(
        "replay: {} entr{}, {regressions} regression(s)",
        entries.len(),
        if entries.len() == 1 { "y" } else { "ies" }
    );
    if regressions > 0 {
        std::process::exit(exit_codes::FAILURES);
    }
}
