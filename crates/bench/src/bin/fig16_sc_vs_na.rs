//! Figure 16: TVD of circuits run on superconducting qubits (square
//! lattice, no CCZ) versus neutral atoms with Geyser, same noise.

use geyser::{evaluate_tvd, Technique};
use geyser_bench::{
    compile_techniques, maybe_write_json, maybe_write_trace, metrics, print_rows, Cli, Row,
};
fn main() {
    let cli = Cli::parse();
    let cfg = cli.pipeline_config();
    let noise = cli.noise_model();
    let techniques = cli.effective_techniques(&[Technique::Superconducting, Technique::Geyser]);
    let mut rows = Vec::new();
    for spec in cli.selected_workloads(true) {
        let program = cli.build(&spec);
        for (t, c) in compile_techniques(&cli, spec.name, &program, &techniques, &cfg) {
            let report = evaluate_tvd(&c, &program, &noise, cli.trajectories, cli.seed);
            rows.push(Row {
                workload: spec.name.to_string(),
                technique: t.label().to_string(),
                metrics: metrics(&[
                    ("tvd", report.tvd_to_ideal),
                    ("pulses", c.total_pulses() as f64),
                ]),
            });
        }
    }
    print_rows(
        &format!(
            "Figure 16: superconducting vs neutral-atom Geyser @ {:.2}% noise",
            noise.bit_flip * 100.0
        ),
        &rows,
    );
    maybe_write_json(&cli, &rows);
    maybe_write_trace(&cli);
}
