//! Section 6 atom-loss experiment: Geyser's output fidelity across
//! atom-loss probabilities. The paper reports that effectiveness "was
//! not experimentally observed to be sensitive for realistic atom loss
//! probabilities" — this binary quantifies that claim.

use geyser::Technique;
use geyser_bench::{compile_cached, maybe_write_json, metrics, print_rows, Cli, Row};
use geyser_sim::{
    ideal_distribution, sample_with_atom_loss, total_variation_distance, AtomLossModel,
};

fn main() {
    let cli = Cli::parse();
    let cfg = cli.pipeline_config();
    let noise = cli.noise_model();
    // The sweep grid always includes the hardware spec's own atom-loss
    // probability so scenario files exercise their stated machine.
    let mut loss_rates = vec![0.0, 0.001, 0.005, 0.02];
    let spec_loss = cli.hardware_spec().atom_loss;
    if spec_loss > 0.0 && !loss_rates.contains(&spec_loss) {
        loss_rates.push(spec_loss);
        loss_rates.sort_by(f64::total_cmp);
    }
    let mut rows = Vec::new();
    for spec in cli.selected_workloads(true).into_iter().take(5) {
        let program = cli.build(&spec);
        let compiled = compile_cached(
            spec.name,
            &program,
            Technique::Geyser,
            &cfg,
            &cli.config_tag(),
        );
        let ideal = ideal_distribution(&program);
        for &loss_rate in &loss_rates {
            let dist = sample_with_atom_loss(
                compiled.mapped().circuit(),
                &noise,
                &AtomLossModel::new(loss_rate),
                cli.trajectories,
                cli.seed,
            );
            let logical = compiled.mapped().logical_distribution(&dist);
            rows.push(Row {
                workload: spec.name.to_string(),
                technique: format!("loss={:.1}%", loss_rate * 100.0),
                metrics: metrics(&[("tvd", total_variation_distance(&ideal, &logical))]),
            });
        }
    }
    print_rows(
        &format!(
            "Sec. 6: Geyser TVD under atom loss @ {:.2}% gate noise",
            noise.bit_flip * 100.0
        ),
        &rows,
    );
    maybe_write_json(&cli, &rows);
}
