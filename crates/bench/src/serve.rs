//! Virtual-time overload harness for the supervisor's service layer.
//!
//! The `serve` binary replays a seeded open-loop arrival schedule —
//! thousands of compile submissions from mixed tenants, with a storm
//! phase in which one tenant floods — against a
//! [`geyser_supervisor::ServiceCore`] and scores what the admission
//! controller, the deficit-round-robin scheduler, the single-flight
//! dedup table, and the load shedder did about it.
//!
//! Determinism is the whole point: the service core reads no clocks,
//! so this harness drives it from a discrete-event loop over *virtual*
//! milliseconds. Service durations are charged in deterministic cost
//! units derived from each compile's pulse count, never wall time.
//! The same `--seed` therefore replays the same arrivals, the same
//! admission decisions, the same sheds, and the same scorecard — byte
//! for byte — on any machine.
//!
//! Real compiles still happen: every dispatched job runs the actual
//! pipeline (memoized per unique job key, which is exactly what
//! single-flight promises), and a sample of dedup-served results is
//! checked bit-for-bit against a fresh solo compile of the same job.
//! The four service-layer invariants from
//! [`geyser_verify::invariants`] are machine-checked over the drained
//! campaign.
//!
//! # Durability (`--journal` / `--recover`)
//!
//! With `--journal PATH` the harness appends every lifecycle decision
//! — admitted, attached, dispatched, completed (with a result
//! digest), shed — to a write-ahead [`geyser_supervisor::Journal`]
//! before the decision takes effect in the scorecard. A process
//! killed mid-run (for real, or via the injected
//! `kill-mid-journal-append:N` / `torn-journal-tail` /
//! `kill-mid-compaction` faults) therefore leaves a journal from
//! which `--recover` rebuilds the run: the journal's torn tail is
//! truncated on open, settled outcomes are replayed verbatim (never
//! re-executed), and acknowledged-but-incomplete jobs are re-admitted
//! exactly once as the regenerated schedule reaches them. Because the
//! schedule is a pure function of the seed, job ids are stable across
//! the killed and recovering incarnations.
//!
//! Recovery is *outcome*-exact, not trajectory-exact: the admission
//! controller's transient state (queue depth, token-bucket levels,
//! cost EWMA) is only approximately rebuilt, so a recovering run may
//! shed different jobs than an uninterrupted one would have under
//! pressure. The `--no-shed` restart-campaign mode removes that
//! freedom — no deadlines, no shedding, no degraded tier — so the
//! chaos harness can demand a completed-job set (ids *and* digests)
//! identical to an uninjected reference.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use geyser::{CancelToken, CompiledCircuit, PassManager, PipelineConfig, Technique};
use geyser_circuit::Circuit;
use geyser_supervisor::{
    checkpoint_fingerprint, degrade_config, Admission, Dispatch, FlightTicket, JobSpec, Journal,
    JournalEvent, ServiceConfig, ServiceCore,
};
use geyser_verify::{
    check_serve_campaign, InvariantViolation, ServeJobObservation, TenantLatencyObservation,
};
use serde::Serialize;

use crate::Cli;

/// Techniques in the arrival mix: one plain mapper and one composing
/// pipeline, so the cost model has genuinely different service-time
/// classes to learn.
const TECHNIQUES: [Technique; 2] = [Technique::Baseline, Technique::Geyser];

/// Distinct per-variant seeds in the mix. Fewer variants means more
/// natural key collisions (dedup pressure); more means a wider compile
/// memo. Two is enough to prove keys separate by seed.
const SEED_VARIANTS: u64 = 2;

/// Dedup-served flights sampled for the bit-identity check.
const DEDUP_SAMPLES: usize = 4;

/// One splitmix64 draw — the repo's standard dependency-free
/// generator.
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = splitmix64(self.0);
        self.0
    }

    fn pick(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// One (workload, technique, seed-variant) job identity. Submissions
/// sharing a combo share a [`geyser_supervisor::JobKey`], so repeats
/// arriving while a flight is open attach as dedup followers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Combo {
    workload: usize,
    technique: usize,
    variant: u64,
}

/// One scheduled submission.
#[derive(Debug, Clone)]
struct Arrival {
    at_ms: u64,
    tenant: usize,
    combo: Combo,
    deadline_ms: Option<u64>,
    dedup: bool,
    storm: bool,
}

/// Everything the harness remembers about a submission until it
/// resolves.
#[derive(Debug, Clone)]
struct Meta {
    tenant: usize,
    arrival_ms: u64,
    storm: bool,
    combo: Combo,
    degraded: bool,
}

/// How one submission ended.
#[derive(Debug, Clone)]
enum Outcome {
    Done {
        latency_ms: u64,
        degraded: bool,
        deduped: bool,
    },
    Rejected {
        reason: String,
    },
}

/// One job currently occupying a worker lane.
struct Running {
    finish_ms: u64,
    ticket: FlightTicket,
    id: u64,
    duration_ms: u64,
}

/// A dedup broadcast retained for the bit-identity sample: which
/// compile served it and which followers received the clone.
struct DedupSample {
    combo: Combo,
    degraded: bool,
    followers: Vec<u64>,
}

/// One completed job's result digest, exported so a restart campaign
/// can diff a recovered run's completed set against its reference.
#[derive(Debug, Clone, Serialize)]
pub struct CompletionDigest {
    /// Job id (the arrival's schedule index).
    pub id: u64,
    /// [`checkpoint_fingerprint`] of the compiled circuit that served
    /// the job (followers inherit their leader's digest; recovered
    /// jobs carry the digest the journal settled with).
    pub digest: u64,
}

/// The harness side of the write-ahead journal: appends lifecycle
/// events and simulates the `kill-mid-journal-append` fault by
/// writing a torn half-frame at the scheduled append and halting the
/// incarnation on the spot.
struct JournalRig {
    journal: Option<Journal>,
    /// Tear the N-th append (0-based) and die there.
    kill_after: Option<usize>,
    appended: usize,
    killed: bool,
}

impl JournalRig {
    fn emit(&mut self, event: JournalEvent) {
        if self.killed {
            return;
        }
        let Some(journal) = self.journal.as_mut() else {
            return;
        };
        if self.kill_after == Some(self.appended) {
            journal
                .append_torn(&event)
                .expect("journal tear must reach the disk");
            self.killed = true;
            return;
        }
        journal
            .append(&event)
            .expect("journal append must reach the disk");
        self.appended += 1;
    }
}

/// Per-tenant scorecard entry.
#[derive(Debug, Clone, Serialize)]
pub struct TenantCard {
    /// Tenant label.
    pub tenant: String,
    /// Whether this tenant flooded during the storm phase.
    pub flooding: bool,
    /// Submissions billed to this tenant.
    pub submitted: u64,
    /// Jobs that completed with a circuit (own compile or dedup).
    pub completed: u64,
    /// Jobs shed with a typed rejection.
    pub rejected: u64,
    /// Jobs admitted in the degraded tier.
    pub degraded: u64,
    /// Jobs served by single-flight dedup.
    pub deduped: u64,
    /// p50 completed-job latency over the whole run (virtual ms).
    pub p50_ms: u64,
    /// p99 completed-job latency over the whole run (virtual ms).
    pub p99_ms: u64,
    /// Fair-share baseline p99: the measured calm-phase p99, floored
    /// at what deficit round robin entitles a tenant to under full
    /// contention (one worst-case service of its own plus one
    /// worst-case job per other tenant, spread over the lanes). The
    /// floor keeps a near-idle calm phase from shrinking the
    /// starvation budget to "zero queueing allowed".
    pub baseline_p99_ms: u64,
    /// p99 latency of jobs that arrived during the storm phase.
    pub storm_p99_ms: u64,
    /// Shed counts by rejection-reason label.
    pub sheds: BTreeMap<String, u64>,
}

/// Service-layer counters copied into the scorecard (the supervisor
/// type itself stays serialization-free).
#[derive(Debug, Clone, Serialize)]
pub struct ServiceCounters {
    /// Jobs admitted into the queue.
    pub admitted: u64,
    /// Jobs shed, all reasons combined.
    pub shed: u64,
    /// Sheds for a full queue.
    pub shed_queue_full: u64,
    /// Sheds for an exhausted tenant budget.
    pub shed_throttled: u64,
    /// Sheds for an unmeetable deadline at admission.
    pub shed_deadline: u64,
    /// Sheds for a deadline that expired in the queue.
    pub shed_stale: u64,
    /// Jobs admitted in the degraded tier.
    pub degraded: u64,
    /// Jobs absorbed as dedup followers.
    pub dedup_attached: u64,
    /// Flights resolved by broadcasting a leader's result.
    pub dedup_broadcasts: u64,
    /// Leader re-elections after a failure.
    pub dedup_reelections: u64,
}

/// The whole run's scorecard — a pure function of the seed.
#[derive(Debug, Clone, Serialize)]
pub struct ServeScorecard {
    /// Master seed.
    pub seed: u64,
    /// Total submissions scheduled.
    pub arrivals: u64,
    /// Tenant count (tenant 0 floods).
    pub tenants: u64,
    /// Virtual milliseconds the campaign spanned.
    pub makespan_ms: u64,
    /// Distinct compiles actually run (the dedup/memo denominator).
    pub unique_compiles: u64,
    /// Mean service cost of the precompiled mix (virtual ms).
    pub mean_cost_ms: u64,
    /// Service-layer counters at drain.
    pub service: ServiceCounters,
    /// Per-tenant breakdown.
    pub tenant_cards: Vec<TenantCard>,
    /// Per-submission terminal outcomes (the invariant checker's
    /// input).
    pub jobs: Vec<ServeJobObservation>,
    /// Result digest per completed job, ascending by id — the restart
    /// campaign's diff key against its uninjected reference.
    pub completions: Vec<CompletionDigest>,
    /// True when an injected journal fault killed this incarnation
    /// mid-run (the scorecard then covers the partial run and no
    /// invariants are checked — the recovery incarnation is the one
    /// held to them).
    pub halted: bool,
    /// Jobs whose terminal outcome was taken verbatim from the
    /// replayed journal instead of being re-executed (`--recover`).
    pub recovered_settled: u64,
    /// Ids of journal-settled jobs that were nevertheless dispatched
    /// again. Exactly-once recovery demands this stays empty; the
    /// chaos harness feeds it into `recovery-exactly-once`.
    pub settled_reruns: Vec<u64>,
    /// Violated service-layer invariants (empty on a healthy run).
    pub violations: Vec<InvariantViolation>,
}

/// Nearest-rank percentile over a sorted slice (0 for an empty one).
fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        0
    } else {
        sorted[(sorted.len() - 1) * p / 100]
    }
}

/// Service duration charged for one compile, in virtual ms: a pure
/// function of the compiled output's pulse count, so identical compiles
/// always cost the same on any machine.
fn service_cost_ms(compiled: &CompiledCircuit) -> u64 {
    (compiled.total_pulses() / 16).max(4)
}

/// The per-variant pipeline configuration: the CLI's config reseeded,
/// with the composition search clamped chaos-style so each unique
/// compile stays fast — the system under test is the service layer,
/// not the annealer.
fn variant_config(cli: &Cli, variant: u64) -> PipelineConfig {
    let seed = splitmix64(cli.seed ^ (variant + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut cfg = cli.pipeline_config().with_seed(seed);
    cfg.composition.max_layers = 1;
    cfg.composition.anneal_iters = cfg.composition.anneal_iters.min(8);
    cfg.composition.restarts = 1;
    cfg.composition.retry_attempts = 0;
    cfg
}

/// Compiles one combo (memoized). Every entry is one real pipeline
/// run; the memo is exactly the "duplicates compile once" ledger.
fn memo_compile<'a>(
    memo: &'a mut BTreeMap<(Combo, bool), CompiledCircuit>,
    combo: Combo,
    degraded: bool,
    programs: &[Circuit],
    configs: &[PipelineConfig],
) -> &'a CompiledCircuit {
    memo.entry((combo, degraded)).or_insert_with(|| {
        let mut cfg = configs[combo.variant as usize].clone();
        if degraded {
            cfg = degrade_config(&cfg);
        }
        PassManager::for_technique(TECHNIQUES[combo.technique])
            .run(&programs[combo.workload], &cfg)
            .expect("fault-free serve compiles succeed")
    })
}

/// Builds the seeded open-loop schedule as two superimposed streams:
///
/// * a **base stream** spanning the whole run — every tenant at a
///   steady combined ~70% utilization of the worker lanes;
/// * a **flood stream** from tenant 0 only, packed into a storm window
///   covering the middle of the run at roughly twice the system's
///   total service rate on top of the base load.
///
/// Bystander tenants therefore keep their own arrival rate constant
/// through the storm — any latency they gain is inflicted by the
/// flooder, which is exactly what the starvation invariant measures.
/// Roughly a third of arrivals repeat a recent combo (dedup pressure)
/// and a quarter carry deadlines (none in `no_shed` restart-campaign
/// mode — the combo/dedup draws are still made so the stream is
/// otherwise identical).
fn build_schedule(
    rng: &mut Rng,
    arrivals: usize,
    tenants: usize,
    workloads: usize,
    mean_cost_ms: u64,
    workers: u64,
    no_shed: bool,
) -> Vec<Arrival> {
    let g_base = (mean_cost_ms * 10 / (7 * workers)).max(2);
    let base_n = (arrivals / 2).max(1);
    let flood_n = arrivals - base_n;
    // (at_ms, sequence, tenant) — the sequence breaks time ties
    // deterministically in the sort below.
    let mut timed: Vec<(u64, u64, usize)> = Vec::with_capacity(arrivals);
    let mut t = 0u64;
    for seq in 0..base_n as u64 {
        t += g_base / 2 + rng.pick(g_base);
        timed.push((t, seq, rng.pick(tenants as u64) as usize));
    }
    let span = t.max(1);
    let storm_start = span * 2 / 5;
    let storm_end = span * 7 / 10;
    if flood_n > 0 {
        let g_flood = ((storm_end - storm_start) / flood_n as u64).max(1);
        let mut ft = storm_start;
        for seq in 0..flood_n as u64 {
            ft += (g_flood / 2 + rng.pick(g_flood)).max(1);
            timed.push((ft, base_n as u64 + seq, 0));
        }
    }
    timed.sort_unstable();

    let mut schedule = Vec::with_capacity(arrivals);
    let mut recent: Vec<Combo> = Vec::new();
    for (at_ms, _seq, tenant) in timed {
        let combo = if !recent.is_empty() && rng.pick(100) < 30 {
            recent[rng.pick(recent.len() as u64) as usize]
        } else {
            Combo {
                workload: rng.pick(workloads as u64) as usize,
                technique: rng.pick(TECHNIQUES.len() as u64) as usize,
                variant: rng.pick(SEED_VARIANTS),
            }
        };
        recent.push(combo);
        if recent.len() > 8 {
            recent.remove(0);
        }
        let deadline_ms =
            ((rng.pick(100) < 25) && !no_shed).then(|| mean_cost_ms * (2 + rng.pick(6)));
        let dedup = rng.pick(100) < 60;
        schedule.push(Arrival {
            at_ms,
            tenant,
            combo,
            deadline_ms,
            dedup,
            storm: at_ms >= storm_start && at_ms <= storm_end,
        });
    }
    schedule
}

/// Runs one serve campaign end to end. The scorecard — including every
/// per-job outcome and the invariant verdicts — is a pure function of
/// `cli.seed`, `cli.arrivals`, `cli.tenants`, `cli.fast`, and
/// `cli.no_shed`, plus (for journaled runs) the injected journal
/// faults and, under `--recover`, the journal's settled history.
///
/// # Panics
///
/// Panics if `cli.tenants < 2` (a storm needs a flooder and at least
/// one bystander), `cli.arrivals == 0`, or a `--journal` path cannot
/// be opened or appended.
pub fn run_serve(cli: &Cli) -> ServeScorecard {
    assert!(cli.tenants >= 2, "serve needs at least two tenants");
    assert!(cli.arrivals > 0, "serve needs at least one arrival");
    let mut rng = Rng(splitmix64(cli.seed ^ 0x5e7e_5e7e_5e7e_5e7e));

    // Small workloads keep each unique compile quick; the same pool
    // the chaos harness uses, minus the two whose per-block search
    // dominates. `--workloads` narrows it further (tests use a single
    // cheap workload to keep the compile memo small).
    let pool: Vec<_> = cli
        .selected_workloads(false)
        .into_iter()
        .filter(|w| w.num_qubits <= 5 && w.name != "qft-5" && w.name != "qaoa-5")
        .take(3)
        .collect();
    assert!(!pool.is_empty(), "workload filter left nothing for serve");
    let programs: Vec<Circuit> = pool.iter().map(|w| cli.build(w)).collect();
    let configs: Vec<PipelineConfig> = (0..SEED_VARIANTS).map(|v| variant_config(cli, v)).collect();

    // Precompile the undegraded mix so the schedule and the service
    // policy can be scaled to real service costs.
    let mut memo: BTreeMap<(Combo, bool), CompiledCircuit> = BTreeMap::new();
    let mut cost_sum = 0u64;
    let mut cost_n = 0u64;
    let mut max_cost_ms = 0u64;
    for workload in 0..programs.len() {
        for technique in 0..TECHNIQUES.len() {
            for variant in 0..SEED_VARIANTS {
                let combo = Combo {
                    workload,
                    technique,
                    variant,
                };
                let c = memo_compile(&mut memo, combo, false, &programs, &configs);
                let cost = service_cost_ms(c);
                cost_sum += cost;
                cost_n += 1;
                max_cost_ms = max_cost_ms.max(cost);
            }
        }
    }
    let mean_cost_ms = (cost_sum / cost_n).max(1);
    let max_cost_ms = max_cost_ms.max(1);

    let workers = if cli.jobs > 1 { cli.jobs } else { 2 };
    let tenants = cli.tenants;
    // Fair share: each tenant is budgeted 1/T of the system's service
    // capacity (workers × 1000 cost-ms per second), with a burst of a
    // few jobs. The flooder's storm rate exceeds this several times
    // over, so its bucket drains while bystanders never notice theirs.
    let service_config = ServiceConfig {
        // Restart-campaign mode gives every arrival a queue slot and
        // an inexhaustible budget: with shedding impossible, the
        // completed-job set is schedule-determined and a kill →
        // recover cycle must reproduce it exactly.
        queue_capacity: if cli.no_shed { cli.arrivals + 1 } else { 48 },
        workers,
        default_cost: mean_cost_ms,
        // A burst of a dozen jobs lets the flood actually build a
        // backlog (exercising the degraded tier) before the refill
        // rate — each tenant's 1/T share of the lanes' cost-ms per
        // second — takes over and sheds the rest.
        tenant_burst: if cli.no_shed {
            mean_cost_ms * (cli.arrivals as u64 + 12)
        } else {
            mean_cost_ms * 12
        },
        tenant_rate_per_sec: (workers as u64 * 1_000 / tenants as u64).max(1),
        drr_quantum: mean_cost_ms,
        degrade_wait_ms: if cli.no_shed { 0 } else { mean_cost_ms * 4 },
        dedup: true,
    };
    let mut core = ServiceCore::new(service_config);

    let schedule = build_schedule(
        &mut rng,
        cli.arrivals,
        tenants,
        programs.len(),
        mean_cost_ms,
        workers as u64,
        cli.no_shed,
    );

    // Write-ahead journal: open (sweeping stale tmp files and
    // truncating any torn tail), replay under `--recover`, and arm
    // the injected journal faults.
    let faults = cli.fault_injector();
    let mut settled_outcomes: BTreeMap<u64, Outcome> = BTreeMap::new();
    let mut settled_digests: BTreeMap<u64, u64> = BTreeMap::new();
    let mut settled_ids: BTreeSet<u64> = BTreeSet::new();
    let mut rig = JournalRig {
        journal: None,
        kill_after: faults.kill_mid_journal_append,
        appended: 0,
        killed: false,
    };
    if let Some(path) = &cli.journal {
        let path = Path::new(path);
        if !cli.recover {
            // A fresh incarnation owns the path; whatever a previous
            // run left there is a finished story, not state to merge.
            let _ = std::fs::remove_file(path);
        }
        let mut journal =
            Journal::open(path, &cli.telemetry).expect("journal opens (torn tails self-truncate)");
        if cli.recover {
            // Seed the cost model and tenant budgets from the settled
            // history, then take every settled outcome verbatim. Ids
            // beyond the regenerated schedule would mean the journal
            // belongs to a differently-parameterized run; they are
            // ignored rather than invented into the scorecard.
            let _ = core.recover(journal.replay(), 0);
            for (id, ev) in journal.replay().settled() {
                let Some(arrival) = schedule.get(*id as usize) else {
                    continue;
                };
                settled_ids.insert(*id);
                match ev.kind.as_str() {
                    "completed" => {
                        settled_outcomes.insert(
                            *id,
                            Outcome::Done {
                                latency_ms: ev.now_ms.saturating_sub(arrival.at_ms),
                                degraded: false,
                                deduped: ev.cost == 0,
                            },
                        );
                        settled_digests.insert(*id, ev.digest);
                    }
                    // Sheds replay their typed reason; the harness
                    // never journals failed/cancelled terminals, but a
                    // foreign journal's are still honoured as settled
                    // rejections rather than re-executed.
                    _ => {
                        let reason = if ev.reason.is_empty() {
                            ev.kind.clone()
                        } else {
                            ev.reason.clone()
                        };
                        settled_outcomes.insert(*id, Outcome::Rejected { reason });
                    }
                }
            }
        }
        if faults.kill_mid_compaction {
            journal.inject_compaction_crash();
        }
        rig.journal = Some(journal);
    }
    let settled_total = settled_outcomes.len() as u64;

    let mut meta: BTreeMap<u64, Meta> = BTreeMap::new();
    let mut outcomes: BTreeMap<u64, Outcome> = BTreeMap::new();
    let mut completion_digests: BTreeMap<u64, u64> = BTreeMap::new();
    let mut settled_reruns: Vec<u64> = Vec::new();
    let mut running: Vec<Running> = Vec::new();
    let mut samples: Vec<DedupSample> = Vec::new();
    let mut next_arrival = 0usize;
    let mut now = 0u64;

    'events: loop {
        // Fill free worker lanes from the DRR queue; stale jobs shed
        // here (typed, terminal) without consuming a lane.
        while running.len() < workers && !rig.killed {
            match core.next(now) {
                Some(Dispatch::Run(job)) => {
                    if settled_ids.contains(&job.id) {
                        // Structurally unreachable (settled arrivals
                        // are never resubmitted), but measured so the
                        // exactly-once invariant rests on observation,
                        // not faith.
                        settled_reruns.push(job.id);
                    }
                    rig.emit(JournalEvent::dispatched(job.id, now));
                    if rig.killed {
                        break 'events;
                    }
                    let m = &meta[&job.id];
                    let combo = m.combo;
                    let degraded = job.degraded;
                    meta.get_mut(&job.id)
                        .expect("dispatched job has meta")
                        .degraded = degraded;
                    let compiled = memo_compile(&mut memo, combo, degraded, &programs, &configs);
                    let duration_ms = service_cost_ms(compiled);
                    running.push(Running {
                        finish_ms: now + duration_ms,
                        ticket: job.ticket(),
                        id: job.id,
                        duration_ms,
                    });
                }
                Some(Dispatch::Shed {
                    job,
                    reason,
                    cancelled,
                }) => {
                    // The harness never fires cancel tokens, so no
                    // follower can have detached as cancelled.
                    debug_assert!(cancelled.is_empty(), "serve submits no cancellations");
                    rig.emit(JournalEvent::shed(job.id, &reason, now));
                    if rig.killed {
                        break 'events;
                    }
                    outcomes.insert(
                        job.id,
                        Outcome::Rejected {
                            reason: reason.label().to_string(),
                        },
                    );
                }
                None => break,
            }
        }

        let arrival_at = schedule.get(next_arrival).map(|a| a.at_ms);
        let finish_at = running.iter().map(|r| r.finish_ms).min();
        let completion_first = match (finish_at, arrival_at) {
            (Some(f), Some(a)) => f <= a,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };

        if completion_first {
            // Lowest (finish, id) pops first so equal finish times
            // settle in a fixed order.
            let pos = (0..running.len())
                .min_by_key(|&i| (running[i].finish_ms, running[i].id))
                .expect("a lane is running");
            let lane = running.remove(pos);
            now = lane.finish_ms;
            let done = core.complete(&lane.ticket, true, lane.duration_ms, now);
            debug_assert!(done.cancelled.is_empty(), "serve submits no cancellations");
            let m = meta[&lane.id].clone();
            let digest = checkpoint_fingerprint(memo[&(m.combo, m.degraded)].mapped().circuit());
            // Write-ahead: the completion is durable before the
            // scorecard observes it. A kill on this append loses the
            // result — the job stays pending in the journal and is
            // re-admitted on recovery, which is exactly the crash
            // semantics under test.
            rig.emit(JournalEvent::completed(
                lane.id,
                &format!("tenant-{}", m.tenant),
                TECHNIQUES[m.combo.technique].label(),
                digest,
                lane.duration_ms,
                now,
            ));
            if rig.killed {
                break 'events;
            }
            completion_digests.insert(lane.id, digest);
            outcomes.insert(
                lane.id,
                Outcome::Done {
                    latency_ms: now.saturating_sub(m.arrival_ms),
                    degraded: m.degraded,
                    deduped: false,
                },
            );
            if !done.broadcast.is_empty() {
                let mut followers = Vec::new();
                for f in &done.broadcast {
                    let fm = meta[&f.id].clone();
                    // Followers settle off the leader's result: same
                    // digest, zero measured cost.
                    rig.emit(JournalEvent::completed(
                        f.id,
                        &format!("tenant-{}", fm.tenant),
                        TECHNIQUES[m.combo.technique].label(),
                        digest,
                        0,
                        now,
                    ));
                    if rig.killed {
                        break 'events;
                    }
                    completion_digests.insert(f.id, digest);
                    outcomes.insert(
                        f.id,
                        Outcome::Done {
                            latency_ms: now.saturating_sub(fm.arrival_ms),
                            degraded: m.degraded,
                            deduped: true,
                        },
                    );
                    followers.push(f.id);
                }
                samples.push(DedupSample {
                    combo: m.combo,
                    degraded: m.degraded,
                    followers,
                });
            }
        } else {
            let arrival = schedule[next_arrival].clone();
            next_arrival += 1;
            now = arrival.at_ms;
            let id = next_arrival as u64 - 1;
            meta.insert(
                id,
                Meta {
                    tenant: arrival.tenant,
                    arrival_ms: arrival.at_ms,
                    storm: arrival.storm,
                    combo: arrival.combo,
                    degraded: false,
                },
            );
            // A journal-settled job is replayed, never re-executed:
            // its terminal outcome (and digest) land in the scorecard
            // verbatim and the service core never sees it again.
            if let Some(outcome) = settled_outcomes.remove(&id) {
                if let Some(d) = settled_digests.get(&id) {
                    completion_digests.insert(id, *d);
                }
                outcomes.insert(id, outcome);
                continue;
            }
            let tenant_label = format!("tenant-{}", arrival.tenant);
            let technique_label = TECHNIQUES[arrival.combo.technique].label();
            let mut spec = JobSpec::new(
                pool[arrival.combo.workload].name,
                TECHNIQUES[arrival.combo.technique],
                programs[arrival.combo.workload].clone(),
                configs[arrival.combo.variant as usize].clone(),
            )
            .with_tenant(tenant_label.clone())
            .with_dedup(arrival.dedup);
            if let Some(d) = arrival.deadline_ms {
                spec = spec.with_deadline_ms(d);
            }
            match core.submit(id, spec, CancelToken::new(), now) {
                Admission::Queued { degraded } => {
                    meta.get_mut(&id).expect("just inserted").degraded = degraded;
                    rig.emit(JournalEvent::admitted(
                        id,
                        &tenant_label,
                        technique_label,
                        None,
                        0,
                        now,
                    ));
                }
                Admission::Attached { leader } => {
                    // Resolved later by the flight's broadcast.
                    rig.emit(JournalEvent::attached(
                        id,
                        &tenant_label,
                        technique_label,
                        leader,
                        now,
                    ));
                }
                Admission::Shed { reason, .. } => {
                    rig.emit(JournalEvent::shed(id, &reason, now));
                    if rig.killed {
                        break 'events;
                    }
                    outcomes.insert(
                        id,
                        Outcome::Rejected {
                            reason: reason.label().to_string(),
                        },
                    );
                }
            }
            if rig.killed {
                break 'events;
            }
        }
    }
    let halted = rig.killed;
    if !halted {
        debug_assert!(core.is_quiescent(), "drained service must be quiescent");
        if let Some(journal) = rig.journal.as_mut() {
            if faults.torn_journal_tail {
                // Tear the tail *after* a clean run: recovery must
                // truncate the half-frame and replay everything else.
                journal
                    .append_torn(&JournalEvent::cancelled(u64::MAX, now))
                    .expect("journal tear must reach the disk");
            } else {
                // End-of-run compaction folds the settled history into
                // a snapshot (honouring an injected compaction crash,
                // which leaves the pre-compaction journal intact).
                journal.compact().expect("journal compaction");
            }
        }
    }
    let makespan_ms = now;

    // Bit-identity sample: recompile a few distinct dedup-served
    // combos solo and compare against the result the flights actually
    // shared. Every follower of a checked combo inherits the verdict.
    let mut verdicts: BTreeMap<(Combo, bool), bool> = BTreeMap::new();
    let mut bit_identical: BTreeMap<u64, bool> = BTreeMap::new();
    for sample in &samples {
        let key = (sample.combo, sample.degraded);
        if !verdicts.contains_key(&key) {
            if verdicts.len() >= DEDUP_SAMPLES {
                continue;
            }
            let shared = &memo[&key];
            let mut cfg = configs[sample.combo.variant as usize].clone();
            if sample.degraded {
                cfg = degrade_config(&cfg);
            }
            let solo = PassManager::for_technique(TECHNIQUES[sample.combo.technique])
                .run(&programs[sample.combo.workload], &cfg)
                .expect("solo reference compile succeeds");
            let identical = shared.mapped().circuit().ops() == solo.mapped().circuit().ops()
                && shared.total_pulses() == solo.total_pulses();
            verdicts.insert(key, identical);
        }
        let identical = verdicts[&key];
        for f in &sample.followers {
            bit_identical.insert(*f, identical);
        }
    }

    // Fold outcomes into observations and per-tenant cards.
    let mut jobs = Vec::with_capacity(outcomes.len());
    let mut cards: Vec<TenantCard> = (0..tenants)
        .map(|t| TenantCard {
            tenant: format!("tenant-{t}"),
            flooding: t == 0,
            submitted: 0,
            completed: 0,
            rejected: 0,
            degraded: 0,
            deduped: 0,
            p50_ms: 0,
            p99_ms: 0,
            baseline_p99_ms: 0,
            storm_p99_ms: 0,
            sheds: BTreeMap::new(),
        })
        .collect();
    let mut all_lat: Vec<Vec<u64>> = vec![Vec::new(); tenants];
    let mut calm_lat: Vec<Vec<u64>> = vec![Vec::new(); tenants];
    let mut storm_lat: Vec<Vec<u64>> = vec![Vec::new(); tenants];
    for (id, outcome) in &outcomes {
        let m = &meta[id];
        let card = &mut cards[m.tenant];
        card.submitted += 1;
        let obs = match outcome {
            Outcome::Done {
                latency_ms,
                degraded,
                deduped,
            } => {
                card.completed += 1;
                if *degraded {
                    card.degraded += 1;
                }
                if *deduped {
                    card.deduped += 1;
                }
                all_lat[m.tenant].push(*latency_ms);
                if m.storm {
                    storm_lat[m.tenant].push(*latency_ms);
                } else {
                    calm_lat[m.tenant].push(*latency_ms);
                }
                ServeJobObservation {
                    id: *id,
                    tenant: card.tenant.clone(),
                    state: "done".to_string(),
                    has_rejection: false,
                    deduped: *deduped,
                    dedup_bit_identical: bit_identical.get(id).copied(),
                }
            }
            Outcome::Rejected { reason } => {
                card.rejected += 1;
                *card.sheds.entry(reason.clone()).or_insert(0) += 1;
                ServeJobObservation {
                    id: *id,
                    tenant: card.tenant.clone(),
                    state: "rejected".to_string(),
                    has_rejection: true,
                    deduped: false,
                    dedup_bit_identical: None,
                }
            }
        };
        jobs.push(obs);
    }
    // The fair-share latency a tenant signs up for under contention.
    // DRR's service bound is governed by the *largest* job in the mix,
    // not the mean: a rotation hands every other tenant the chance to
    // dispatch one whole job once its deficit covers it, and a
    // worst-case job can already occupy each lane when you arrive. So
    // the entitlement is one max-cost service of your own plus one
    // max-cost job per other tenant, spread over the worker lanes.
    let fair_share_ms = max_cost_ms * (workers as u64 + (tenants as u64 - 1)) / workers as u64;
    let mut tenant_latencies = Vec::with_capacity(tenants);
    for (t, card) in cards.iter_mut().enumerate() {
        for lat in [&mut all_lat[t], &mut calm_lat[t], &mut storm_lat[t]] {
            lat.sort_unstable();
        }
        card.p50_ms = percentile(&all_lat[t], 50);
        card.p99_ms = percentile(&all_lat[t], 99);
        card.baseline_p99_ms = percentile(&calm_lat[t], 99).max(fair_share_ms);
        card.storm_p99_ms = percentile(&storm_lat[t], 99);
        tenant_latencies.push(TenantLatencyObservation {
            tenant: card.tenant.clone(),
            flooding: card.flooding,
            baseline_p99_ms: card.baseline_p99_ms,
            storm_p99_ms: card.storm_p99_ms,
        });
    }

    // A killed incarnation is a crash in progress, not a finished
    // campaign — its partial scorecard is raw material for the
    // recovery run, which is the incarnation held to the invariants.
    // Under `--recover` the latency profile is rebuilt from journal
    // timestamps plus a lighter re-execution, so the starvation check
    // (a property of one uninterrupted timeline) is skipped; the
    // completeness, typed-shed, and dedup invariants still apply.
    let violations = if halted {
        Vec::new()
    } else if cli.recover {
        check_serve_campaign(schedule.len() as u64, &jobs, &[])
    } else {
        check_serve_campaign(schedule.len() as u64, &jobs, &tenant_latencies)
    };
    let m = core.metrics();
    ServeScorecard {
        seed: cli.seed,
        arrivals: schedule.len() as u64,
        tenants: tenants as u64,
        makespan_ms,
        unique_compiles: memo.len() as u64,
        mean_cost_ms,
        service: ServiceCounters {
            admitted: m.admitted,
            shed: m.shed,
            shed_queue_full: m.shed_queue_full,
            shed_throttled: m.shed_throttled,
            shed_deadline: m.shed_deadline,
            shed_stale: m.shed_stale,
            degraded: m.degraded,
            dedup_attached: m.dedup_attached,
            dedup_broadcasts: m.dedup_broadcasts,
            dedup_reelections: m.dedup_reelections,
        },
        tenant_cards: cards,
        jobs,
        completions: completion_digests
            .into_iter()
            .map(|(id, digest)| CompletionDigest { id, digest })
            .collect(),
        halted,
        recovered_settled: settled_total - settled_outcomes.len() as u64,
        settled_reruns,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report_json;

    fn serve_cli(seed: u64, arrivals: usize, tenants: usize) -> Cli {
        Cli {
            fast: true,
            seed,
            arrivals,
            tenants,
            // One cheap workload keeps the compile memo (the only
            // expensive part — the event loop is trivial) to a few
            // seconds; the service-layer dynamics are unaffected.
            workloads: vec!["vqe-4".into()],
            ..Cli::default()
        }
    }

    #[test]
    fn serve_resolves_every_submission_without_violations() {
        let card = run_serve(&serve_cli(3, 120, 2));
        assert_eq!(card.jobs.len() as u64, card.arrivals);
        assert!(
            card.violations.is_empty(),
            "violations: {:?}",
            card.violations
        );
    }

    #[test]
    fn serve_scorecard_is_byte_identical_per_seed() {
        let a = report_json(&run_serve(&serve_cli(9, 90, 3)));
        let b = report_json(&run_serve(&serve_cli(9, 90, 3)));
        assert_eq!(a, b);
    }

    #[test]
    fn storm_produces_typed_sheds_and_dedup_hits() {
        let card = run_serve(&serve_cli(1, 400, 3));
        assert!(card.service.shed > 0, "a storm must shed something");
        assert!(
            card.service.dedup_attached > 0,
            "duplicate injection must produce followers"
        );
        assert!(
            card.jobs
                .iter()
                .filter(|j| j.state == "rejected")
                .all(|j| j.has_rejection),
            "every shed is typed"
        );
        // The memo proves duplicates compiled once: strictly fewer
        // unique compiles than completed jobs.
        let completed = card.jobs.iter().filter(|j| j.state == "done").count() as u64;
        assert!(card.unique_compiles < completed);
    }

    #[test]
    fn sampled_dedup_results_are_bit_identical() {
        let card = run_serve(&serve_cli(5, 300, 2));
        let sampled: Vec<_> = card
            .jobs
            .iter()
            .filter_map(|j| j.dedup_bit_identical)
            .collect();
        assert!(!sampled.is_empty(), "at least one flight gets sampled");
        assert!(sampled.into_iter().all(|b| b));
    }

    fn temp_journal(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("geyser-serve-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create journal dir");
        dir.join("serve.journal")
    }

    fn digests(card: &ServeScorecard) -> Vec<(u64, u64)> {
        card.completions.iter().map(|c| (c.id, c.digest)).collect()
    }

    #[test]
    fn no_shed_mode_completes_every_arrival() {
        let mut cli = serve_cli(11, 60, 2);
        cli.no_shed = true;
        let card = run_serve(&cli);
        assert!(card.violations.is_empty(), "{:?}", card.violations);
        assert_eq!(card.service.shed, 0, "no-shed mode must never shed");
        assert_eq!(card.completions.len() as u64, card.arrivals);
    }

    #[test]
    fn kill_mid_journal_append_recovers_to_the_reference_completed_set() {
        let journal = temp_journal("kill");
        let mut reference = serve_cli(21, 60, 2);
        reference.no_shed = true;
        let ref_card = run_serve(&reference);
        assert_eq!(ref_card.completions.len() as u64, ref_card.arrivals);

        let mut killed = reference.clone();
        killed.journal = Some(journal.to_string_lossy().into_owned());
        killed.inject = Some("kill-mid-journal-append:47".into());
        let killed_card = run_serve(&killed);
        assert!(killed_card.halted, "the injected kill must halt the run");
        assert!(
            (killed_card.completions.len() as u64) < killed_card.arrivals,
            "a mid-run kill leaves work unfinished"
        );

        let mut recovering = reference.clone();
        recovering.journal = Some(journal.to_string_lossy().into_owned());
        recovering.recover = true;
        let recovered = run_serve(&recovering);
        assert!(!recovered.halted);
        assert!(
            recovered.violations.is_empty(),
            "{:?}",
            recovered.violations
        );
        assert!(
            recovered.recovered_settled > 0,
            "settled journal outcomes must be replayed, not re-run"
        );
        assert!(recovered.settled_reruns.is_empty(), "exactly-once violated");
        assert_eq!(
            digests(&recovered),
            digests(&ref_card),
            "recovery must reproduce the reference completed set bit for bit"
        );
        let _ = std::fs::remove_dir_all(journal.parent().expect("journal has a dir"));
    }

    #[test]
    fn torn_tail_and_crashed_compaction_still_recover_cleanly() {
        let journal = temp_journal("torn");
        let mut base = serve_cli(33, 40, 2);
        base.no_shed = true;
        let ref_card = run_serve(&base);

        // A clean run whose journal gets a torn tail appended and
        // whose end-of-run compaction crashes: the worst-case file to
        // hand back to recovery.
        let mut wounded = base.clone();
        wounded.journal = Some(journal.to_string_lossy().into_owned());
        wounded.inject = Some("torn-journal-tail".into());
        let wounded_card = run_serve(&wounded);
        assert!(!wounded_card.halted);

        let mut recovering = base.clone();
        recovering.journal = Some(journal.to_string_lossy().into_owned());
        recovering.recover = true;
        let recovered = run_serve(&recovering);
        assert!(
            recovered.violations.is_empty(),
            "{:?}",
            recovered.violations
        );
        // Every outcome settled before the tear replays verbatim.
        assert_eq!(recovered.recovered_settled, recovered.arrivals);
        assert_eq!(digests(&recovered), digests(&ref_card));
        let _ = std::fs::remove_dir_all(journal.parent().expect("journal has a dir"));
    }
}
