//! Property-based tests for the numerical substrate.
//!
//! Runs each property over a fixed set of seeds (proptest is not
//! available offline); failures reproduce exactly by seed.

use geyser_num::{
    c64, frobenius_distance, hilbert_schmidt_distance, zyz_angles, CMatrix, Complex,
    ZyzDecomposition,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

fn rng_for(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(0x7f4a_7c15))
}

/// A finite complex number with moderate magnitude.
fn complex(rng: &mut StdRng) -> Complex {
    c64(rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0))
}

/// A random single-qubit unitary via U3 angles plus global phase.
fn unitary2(rng: &mut StdRng) -> CMatrix {
    ZyzDecomposition {
        alpha: rng.gen_range(0.0..std::f64::consts::TAU),
        theta: rng.gen_range(0.0..std::f64::consts::PI),
        phi: rng.gen_range(0.0..std::f64::consts::TAU),
        lambda: rng.gen_range(0.0..std::f64::consts::TAU),
    }
    .to_matrix()
}

#[test]
fn complex_mul_is_commutative() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed);
        let (a, b) = (complex(&mut rng), complex(&mut rng));
        assert!((a * b - b * a).norm() < 1e-9, "seed {seed}");
    }
}

#[test]
fn complex_mul_is_associative() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed);
        let (a, b, c) = (complex(&mut rng), complex(&mut rng), complex(&mut rng));
        assert!(((a * b) * c - a * (b * c)).norm() < 1e-6, "seed {seed}");
    }
}

#[test]
fn complex_distributive() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed);
        let (a, b, c) = (complex(&mut rng), complex(&mut rng), complex(&mut rng));
        assert!((a * (b + c) - (a * b + a * c)).norm() < 1e-7, "seed {seed}");
    }
}

#[test]
fn conj_is_involution() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed);
        let a = complex(&mut rng);
        assert_eq!(a.conj().conj(), a, "seed {seed}");
    }
}

#[test]
fn norm_is_multiplicative() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed);
        let (a, b) = (complex(&mut rng), complex(&mut rng));
        assert!(
            ((a * b).norm() - a.norm() * b.norm()).abs() < 1e-7,
            "seed {seed}"
        );
    }
}

#[test]
fn polar_roundtrip() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed);
        let r = rng.gen_range(0.01f64..10.0);
        let theta = rng.gen_range(-3.0f64..3.0);
        let z = Complex::from_polar(r, theta);
        assert!((z.norm() - r).abs() < 1e-9, "seed {seed}");
        assert!((z.arg() - theta).abs() < 1e-9, "seed {seed}");
    }
}

#[test]
fn u3_form_is_always_unitary() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed);
        assert!(unitary2(&mut rng).is_unitary(1e-10), "seed {seed}");
    }
}

#[test]
fn zyz_roundtrip_is_exact() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed);
        let u = unitary2(&mut rng);
        let d = zyz_angles(&u).expect("unitary by construction");
        assert!(d.to_matrix().approx_eq(&u, 1e-8), "seed {seed}");
    }
}

#[test]
fn product_of_unitaries_is_unitary() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed);
        let (a, b) = (unitary2(&mut rng), unitary2(&mut rng));
        assert!(a.matmul(&b).is_unitary(1e-9), "seed {seed}");
    }
}

#[test]
fn kron_of_unitaries_is_unitary() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed);
        let (a, b) = (unitary2(&mut rng), unitary2(&mut rng));
        assert!(a.kron(&b).is_unitary(1e-9), "seed {seed}");
    }
}

#[test]
fn kron_mixed_product() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed);
        let (a, b) = (unitary2(&mut rng), unitary2(&mut rng));
        let (c, d) = (unitary2(&mut rng), unitary2(&mut rng));
        let lhs = a.kron(&b).matmul(&c.kron(&d));
        let rhs = a.matmul(&c).kron(&b.matmul(&d));
        assert!(lhs.approx_eq(&rhs, 1e-8), "seed {seed}");
    }
}

#[test]
fn hsd_is_symmetric_and_bounded() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed);
        let (a, b) = (unitary2(&mut rng), unitary2(&mut rng));
        let dab = hilbert_schmidt_distance(&a, &b);
        let dba = hilbert_schmidt_distance(&b, &a);
        assert!((dab - dba).abs() < 1e-10, "seed {seed}");
        assert!((0.0..=1.0 + 1e-12).contains(&dab), "seed {seed}");
    }
}

#[test]
fn hsd_zero_iff_phase_equal() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed);
        let u = unitary2(&mut rng);
        let alpha = rng.gen_range(0.0..std::f64::consts::TAU);
        let phased = u.scale(Complex::cis(alpha));
        assert!(hilbert_schmidt_distance(&u, &phased) < 1e-10, "seed {seed}");
    }
}

#[test]
fn hsd_invariant_under_global_unitary() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed);
        let (a, b, v) = (unitary2(&mut rng), unitary2(&mut rng), unitary2(&mut rng));
        // HSD(VA, VB) = HSD(A, B): Tr((VA)†VB) = Tr(A†V†VB) = Tr(A†B).
        let lhs = hilbert_schmidt_distance(&v.matmul(&a), &v.matmul(&b));
        let rhs = hilbert_schmidt_distance(&a, &b);
        assert!((lhs - rhs).abs() < 1e-9, "seed {seed}");
    }
}

#[test]
fn frobenius_triangle_inequality() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed);
        let (a, b, c) = (unitary2(&mut rng), unitary2(&mut rng), unitary2(&mut rng));
        let ab = frobenius_distance(&a, &b);
        let bc = frobenius_distance(&b, &c);
        let ac = frobenius_distance(&a, &c);
        assert!(ac <= ab + bc + 1e-9, "seed {seed}");
    }
}

#[test]
fn dagger_inverts_unitary() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed);
        let u = unitary2(&mut rng);
        let prod = u.matmul(&u.dagger());
        assert!(prod.approx_eq(&CMatrix::identity(2), 1e-9), "seed {seed}");
    }
}

#[test]
fn trace_is_similarity_invariant() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed);
        let (a, v) = (unitary2(&mut rng), unitary2(&mut rng));
        // Tr(V A V†) = Tr(A)
        let conjugated = v.matmul(&a).matmul(&v.dagger());
        assert!(
            (conjugated.trace() - a.trace()).norm() < 1e-8,
            "seed {seed}"
        );
    }
}
