//! Property-based tests for the numerical substrate.

use geyser_num::{
    c64, frobenius_distance, hilbert_schmidt_distance, zyz_angles, CMatrix, Complex,
    ZyzDecomposition,
};
use proptest::prelude::*;

/// A strategy producing finite complex numbers with moderate magnitude.
fn complex() -> impl Strategy<Value = Complex> {
    (-10.0f64..10.0, -10.0f64..10.0).prop_map(|(re, im)| c64(re, im))
}

/// A strategy producing random single-qubit unitaries via U3 angles.
fn unitary2() -> impl Strategy<Value = CMatrix> {
    (
        0.0f64..std::f64::consts::PI,
        0.0f64..std::f64::consts::TAU,
        0.0f64..std::f64::consts::TAU,
        0.0f64..std::f64::consts::TAU,
    )
        .prop_map(|(theta, phi, lambda, alpha)| {
            ZyzDecomposition {
                alpha,
                theta,
                phi,
                lambda,
            }
            .to_matrix()
        })
}

proptest! {
    #[test]
    fn complex_mul_is_commutative(a in complex(), b in complex()) {
        prop_assert!((a * b - b * a).norm() < 1e-9);
    }

    #[test]
    fn complex_mul_is_associative(a in complex(), b in complex(), c in complex()) {
        prop_assert!(((a * b) * c - a * (b * c)).norm() < 1e-6);
    }

    #[test]
    fn complex_distributive(a in complex(), b in complex(), c in complex()) {
        prop_assert!((a * (b + c) - (a * b + a * c)).norm() < 1e-7);
    }

    #[test]
    fn conj_is_involution(a in complex()) {
        prop_assert_eq!(a.conj().conj(), a);
    }

    #[test]
    fn norm_is_multiplicative(a in complex(), b in complex()) {
        prop_assert!(((a * b).norm() - a.norm() * b.norm()).abs() < 1e-7);
    }

    #[test]
    fn polar_roundtrip(r in 0.01f64..10.0, theta in -3.0f64..3.0) {
        let z = Complex::from_polar(r, theta);
        prop_assert!((z.norm() - r).abs() < 1e-9);
        prop_assert!((z.arg() - theta).abs() < 1e-9);
    }

    #[test]
    fn u3_form_is_always_unitary(u in unitary2()) {
        prop_assert!(u.is_unitary(1e-10));
    }

    #[test]
    fn zyz_roundtrip_is_exact(u in unitary2()) {
        let d = zyz_angles(&u).expect("unitary by construction");
        prop_assert!(d.to_matrix().approx_eq(&u, 1e-8));
    }

    #[test]
    fn product_of_unitaries_is_unitary(a in unitary2(), b in unitary2()) {
        prop_assert!(a.matmul(&b).is_unitary(1e-9));
    }

    #[test]
    fn kron_of_unitaries_is_unitary(a in unitary2(), b in unitary2()) {
        prop_assert!(a.kron(&b).is_unitary(1e-9));
    }

    #[test]
    fn kron_mixed_product(a in unitary2(), b in unitary2(), c in unitary2(), d in unitary2()) {
        let lhs = a.kron(&b).matmul(&c.kron(&d));
        let rhs = a.matmul(&c).kron(&b.matmul(&d));
        prop_assert!(lhs.approx_eq(&rhs, 1e-8));
    }

    #[test]
    fn hsd_is_symmetric_and_bounded(a in unitary2(), b in unitary2()) {
        let dab = hilbert_schmidt_distance(&a, &b);
        let dba = hilbert_schmidt_distance(&b, &a);
        prop_assert!((dab - dba).abs() < 1e-10);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&dab));
    }

    #[test]
    fn hsd_zero_iff_phase_equal(u in unitary2(), alpha in 0.0f64..std::f64::consts::TAU) {
        let phased = u.scale(Complex::cis(alpha));
        prop_assert!(hilbert_schmidt_distance(&u, &phased) < 1e-10);
    }

    #[test]
    fn hsd_invariant_under_global_unitary(a in unitary2(), b in unitary2(), v in unitary2()) {
        // HSD(VA, VB) = HSD(A, B): Tr((VA)†VB) = Tr(A†V†VB) = Tr(A†B).
        let lhs = hilbert_schmidt_distance(&v.matmul(&a), &v.matmul(&b));
        let rhs = hilbert_schmidt_distance(&a, &b);
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn frobenius_triangle_inequality(a in unitary2(), b in unitary2(), c in unitary2()) {
        let ab = frobenius_distance(&a, &b);
        let bc = frobenius_distance(&b, &c);
        let ac = frobenius_distance(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-9);
    }

    #[test]
    fn dagger_inverts_unitary(u in unitary2()) {
        let prod = u.matmul(&u.dagger());
        prop_assert!(prod.approx_eq(&CMatrix::identity(2), 1e-9));
    }

    #[test]
    fn trace_is_similarity_invariant(a in unitary2(), v in unitary2()) {
        // Tr(V A V†) = Tr(A)
        let conjugated = v.matmul(&a).matmul(&v.dagger());
        prop_assert!((conjugated.trace() - a.trace()).norm() < 1e-8);
    }
}
