//! Distance metrics between unitaries.
//!
//! The Geyser paper (Sec. 2.3) measures circuit equivalence during
//! block composition with the *Hilbert–Schmidt distance* (HSD), chosen
//! over process-fidelity-style metrics for its low computational cost.

use crate::{CMatrix, Complex};

/// Hilbert–Schmidt inner product `Tr(U₁† · U₂)`.
///
/// For `d × d` unitaries the modulus of this value lies in `[0, d]`,
/// reaching `d` exactly when the matrices are equal up to global phase.
///
/// # Panics
///
/// Panics if the matrices are not square with identical dimensions.
///
/// # Example
///
/// ```
/// use geyser_num::{hilbert_schmidt_inner, CMatrix};
/// let id = CMatrix::identity(4);
/// let ip = hilbert_schmidt_inner(&id, &id);
/// assert!((ip.norm() - 4.0).abs() < 1e-12);
/// ```
pub fn hilbert_schmidt_inner(u1: &CMatrix, u2: &CMatrix) -> Complex {
    assert!(
        u1.is_square() && u2.is_square() && u1.rows() == u2.rows(),
        "HS inner product requires equal square matrices"
    );
    // Tr(U1† U2) = Σ_ij conj(U1[i,j]) U2[i,j] — avoid forming the product.
    u1.as_slice()
        .iter()
        .zip(u2.as_slice())
        .map(|(a, b)| a.conj() * *b)
        .sum()
}

/// Hilbert–Schmidt distance `1 − |Tr(U₁† U₂)| / d` (paper Sec. 2.3).
///
/// The distance lies in `[0, 1]`; `0` means the unitaries are equal up
/// to a global phase. This global-phase invariance is essential for
/// block composition: a composed block that differs only by phase is
/// physically identical.
///
/// # Panics
///
/// Panics if the matrices are not square with identical dimensions.
///
/// # Example
///
/// ```
/// use geyser_num::{hilbert_schmidt_distance, CMatrix, Complex};
/// let id = CMatrix::identity(2);
/// let phased = id.scale(Complex::cis(1.234));
/// assert!(hilbert_schmidt_distance(&id, &phased) < 1e-12);
/// ```
pub fn hilbert_schmidt_distance(u1: &CMatrix, u2: &CMatrix) -> f64 {
    let d = u1.rows() as f64;
    let raw = 1.0 - hilbert_schmidt_inner(u1, u2).norm() / d;
    // Numerical round-off can dip just below zero; clamp into range.
    raw.max(0.0)
}

/// Frobenius distance `‖U₁ − U₂‖_F`.
///
/// Unlike [`hilbert_schmidt_distance`] this is *not* global-phase
/// invariant. It is used in tests and diagnostics where exact matrix
/// equality matters.
///
/// # Panics
///
/// Panics if dimensions differ.
pub fn frobenius_distance(u1: &CMatrix, u2: &CMatrix) -> f64 {
    (u1 - u2).frobenius_norm()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;

    fn hadamard() -> CMatrix {
        let s = Complex::from_real(1.0 / f64::sqrt(2.0));
        CMatrix::from_rows(&[&[s, s], &[s, -s]])
    }

    #[test]
    fn identical_unitaries_have_zero_hsd() {
        let h = hadamard();
        assert!(hilbert_schmidt_distance(&h, &h) < 1e-15);
    }

    #[test]
    fn global_phase_is_ignored() {
        let h = hadamard();
        let phased = h.scale(Complex::cis(0.7));
        assert!(hilbert_schmidt_distance(&h, &phased) < 1e-14);
        assert!(frobenius_distance(&h, &phased) > 0.1);
    }

    #[test]
    fn orthogonal_unitaries_have_maximal_hsd() {
        // Tr(X† Z) = 0 so HSD = 1.
        let x = CMatrix::from_rows(&[
            &[Complex::ZERO, Complex::ONE],
            &[Complex::ONE, Complex::ZERO],
        ]);
        let z = CMatrix::from_diagonal(&[Complex::ONE, -Complex::ONE]);
        assert!((hilbert_schmidt_distance(&x, &z) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn inner_product_is_conjugate_symmetric() {
        let a = hadamard();
        let b = CMatrix::from_rows(&[&[Complex::ONE, Complex::ZERO], &[Complex::ZERO, Complex::I]]);
        let ab = hilbert_schmidt_inner(&a, &b);
        let ba = hilbert_schmidt_inner(&b, &a);
        assert!(ab.approx_eq(ba.conj(), 1e-14));
    }

    #[test]
    fn hsd_range_bounds() {
        let a = hadamard();
        let z = CMatrix::from_diagonal(&[Complex::ONE, Complex::cis(0.3)]);
        let d = hilbert_schmidt_distance(&a, &z);
        assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn frobenius_distance_of_shifted_identity() {
        let a = CMatrix::identity(2);
        let mut b = a.clone();
        b[(0, 0)] = c64(0.0, 0.0);
        assert!((frobenius_distance(&a, &b) - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "equal square matrices")]
    fn mismatched_dims_panic() {
        let _ = hilbert_schmidt_inner(&CMatrix::identity(2), &CMatrix::identity(4));
    }
}
