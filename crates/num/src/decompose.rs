//! Analytic decomposition of 2×2 unitaries into U3 angles.
//!
//! Any single-qubit unitary can be written as `e^{iα} · U3(θ, φ, λ)`
//! where `U3` is the general three-parameter rotation gate used by the
//! neutral-atom hardware basis (paper Sec. 2.1). This module extracts
//! those angles analytically — the core primitive behind OptiMap's
//! single-qubit-run fusion pass, which merges arbitrary chains of 1q
//! gates into a single physical pulse.

use crate::{CMatrix, Complex};

/// Result of decomposing a 2×2 unitary into `e^{iα}·U3(θ, φ, λ)`.
///
/// # Example
///
/// ```
/// use geyser_num::{zyz_angles, CMatrix, Complex};
/// let s = Complex::from_real(1.0 / f64::sqrt(2.0));
/// let h = CMatrix::from_rows(&[&[s, s], &[s, -s]]);
/// let d = zyz_angles(&h).expect("H is unitary");
/// assert!((d.theta - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZyzDecomposition {
    /// Global phase `α`.
    pub alpha: f64,
    /// Polar rotation angle `θ ∈ [0, π]`.
    pub theta: f64,
    /// First azimuthal angle `φ`.
    pub phi: f64,
    /// Second azimuthal angle `λ`.
    pub lambda: f64,
}

impl ZyzDecomposition {
    /// Reconstructs the 2×2 unitary `e^{iα}·U3(θ, φ, λ)`.
    pub fn to_matrix(&self) -> CMatrix {
        let (ht_cos, ht_sin) = ((self.theta / 2.0).cos(), (self.theta / 2.0).sin());
        let a = Complex::cis(self.alpha);
        CMatrix::from_rows(&[
            &[a * ht_cos, -(a * Complex::cis(self.lambda)) * ht_sin],
            &[
                a * Complex::cis(self.phi) * ht_sin,
                a * Complex::cis(self.phi + self.lambda) * ht_cos,
            ],
        ])
    }
}

/// Decomposes a 2×2 unitary into `e^{iα}·U3(θ, φ, λ)` angles.
///
/// Returns `None` if the matrix is not 2×2 or deviates from unitarity
/// by more than `1e-8` (entry-wise).
///
/// The decomposition is exact: reconstructing via
/// [`ZyzDecomposition::to_matrix`] reproduces the input to floating-
/// point precision. Degenerate cases (`θ ≈ 0` diagonal matrices and
/// `θ ≈ π` anti-diagonal matrices) resolve the gauge freedom by fixing
/// `φ = 0` and `α = 0` respectively.
pub fn zyz_angles(u: &CMatrix) -> Option<ZyzDecomposition> {
    if u.rows() != 2 || u.cols() != 2 || !u.is_unitary(1e-8) {
        return None;
    }
    let u00 = u[(0, 0)];
    let u01 = u[(0, 1)];
    let u10 = u[(1, 0)];
    let u11 = u[(1, 1)];

    let c = u00.norm(); // cos(θ/2)
    let s = u10.norm(); // sin(θ/2)
    let theta = 2.0 * s.atan2(c);

    const EPS: f64 = 1e-12;
    let (alpha, phi, lambda) = if s <= EPS {
        // Diagonal: U = diag(e^{iα}, e^{i(α+λ)}) with φ gauge-fixed to 0.
        let alpha = u00.arg();
        let lambda = u11.arg() - alpha;
        (alpha, 0.0, lambda)
    } else if c <= EPS {
        // Anti-diagonal: u10 = e^{i(α+φ)}, u01 = -e^{i(α+λ)}; fix α = 0.
        let phi = u10.arg();
        let lambda = (-u01).arg();
        (0.0, phi, lambda)
    } else {
        let alpha = u00.arg();
        let phi = u10.arg() - alpha;
        let lambda = (-u01).arg() - alpha;
        (alpha, phi, lambda)
    };

    Some(ZyzDecomposition {
        alpha,
        theta,
        phi,
        lambda,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    fn u3(theta: f64, phi: f64, lambda: f64) -> CMatrix {
        ZyzDecomposition {
            alpha: 0.0,
            theta,
            phi,
            lambda,
        }
        .to_matrix()
    }

    fn assert_roundtrip(u: &CMatrix) {
        let d = zyz_angles(u).expect("input must be unitary");
        let back = d.to_matrix();
        assert!(
            back.approx_eq(u, 1e-10),
            "roundtrip failed:\ninput:\n{u}\nreconstructed:\n{back}\nangles: {d:?}"
        );
    }

    #[test]
    fn hadamard_roundtrip() {
        assert_roundtrip(&u3(FRAC_PI_2, 0.0, PI));
    }

    #[test]
    fn pauli_gates_roundtrip() {
        // X = U3(π, 0, π) up to phase; build directly.
        let x = CMatrix::from_rows(&[
            &[Complex::ZERO, Complex::ONE],
            &[Complex::ONE, Complex::ZERO],
        ]);
        assert_roundtrip(&x);
        let y = CMatrix::from_rows(&[&[Complex::ZERO, -Complex::I], &[Complex::I, Complex::ZERO]]);
        assert_roundtrip(&y);
        let z = CMatrix::from_diagonal(&[Complex::ONE, -Complex::ONE]);
        assert_roundtrip(&z);
    }

    #[test]
    fn identity_decomposes_to_zero_theta() {
        let d = zyz_angles(&CMatrix::identity(2)).unwrap();
        assert!(d.theta.abs() < 1e-12);
        assert!(d.alpha.abs() < 1e-12);
        assert_roundtrip(&CMatrix::identity(2));
    }

    #[test]
    fn phase_gate_roundtrip() {
        let sgate = CMatrix::from_diagonal(&[Complex::ONE, Complex::I]);
        let d = zyz_angles(&sgate).unwrap();
        assert!((d.lambda - FRAC_PI_2).abs() < 1e-12);
        assert_roundtrip(&sgate);
    }

    #[test]
    fn global_phase_is_recovered() {
        let phased = CMatrix::identity(2).scale(Complex::cis(0.7));
        let d = zyz_angles(&phased).unwrap();
        assert!((d.alpha - 0.7).abs() < 1e-12);
        assert_roundtrip(&phased);
    }

    #[test]
    fn dense_generic_unitaries_roundtrip() {
        for &(t, p, l) in &[
            (0.3, 1.2, -0.8),
            (FRAC_PI_4, 2.0, 4.0),
            (2.9, -1.0, 0.1),
            (1.0, 0.0, 0.0),
        ] {
            let u = u3(t, p, l).scale(Complex::cis(0.33));
            assert_roundtrip(&u);
        }
    }

    #[test]
    fn non_unitary_is_rejected() {
        let m = CMatrix::from_rows(&[
            &[c64(1.0, 0.0), c64(1.0, 0.0)],
            &[Complex::ZERO, Complex::ONE],
        ]);
        assert!(zyz_angles(&m).is_none());
    }

    #[test]
    fn wrong_dimension_is_rejected() {
        assert!(zyz_angles(&CMatrix::identity(4)).is_none());
    }

    #[test]
    fn product_of_u3s_fuses_to_single_u3() {
        // The fusion use-case: multiply two arbitrary single-qubit
        // unitaries, decompose, and verify the single U3 reproduces
        // the product.
        let a = u3(0.7, 0.2, 1.1);
        let b = u3(2.2, -0.4, 0.9);
        let prod = a.matmul(&b);
        assert_roundtrip(&prod);
    }
}
