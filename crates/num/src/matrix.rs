//! Dense, row-major complex matrices.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use serde::{Deserialize, Serialize};

use crate::Complex;

/// A dense, row-major matrix of [`Complex`] entries.
///
/// `CMatrix` is the workhorse representation for quantum gate and
/// circuit unitaries throughout the workspace. Block composition only
/// ever manipulates matrices up to 8×8, and full-circuit unitary
/// construction is used for ≤ ~12 qubits, so a straightforward dense
/// representation with `O(n³)` multiplication is the right tool.
///
/// # Example
///
/// ```
/// use geyser_num::{CMatrix, Complex};
///
/// let h = CMatrix::from_fn(2, 2, |r, c| {
///     let s = 1.0 / f64::sqrt(2.0);
///     Complex::from_real(if (r, c) == (1, 1) { -s } else { s })
/// });
/// assert!(h.is_unitary(1e-12));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl CMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        CMatrix {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn<F: FnMut(usize, usize) -> Complex>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[Complex]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have the same length"
        );
        CMatrix {
            rows: rows.len(),
            cols,
            data: rows.iter().flat_map(|r| r.iter().copied()).collect(),
        }
    }

    /// Builds a square diagonal matrix from its diagonal entries.
    pub fn from_diagonal(diag: &[Complex]) -> Self {
        let mut m = Self::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Complex>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        CMatrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[Complex] {
        &self.data
    }

    /// Returns the entry at `(row, col)`, or `None` if out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> Option<Complex> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not match.
    pub fn matmul(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}×{} · {}×{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[r * self.cols + k];
                if a == Complex::ZERO {
                    continue;
                }
                for c in 0..rhs.cols {
                    out.data[r * rhs.cols + c] += a * rhs.data[k * rhs.cols + c];
                }
            }
        }
        out
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[Complex]) -> Vec<Complex> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|r| {
                v.iter()
                    .enumerate()
                    .map(|(c, &vc)| self.data[r * self.cols + c] * vc)
                    .sum()
            })
            .collect()
    }

    /// Conjugate transpose (the "dagger" of the matrix).
    pub fn dagger(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)].conj())
    }

    /// Transpose without conjugation.
    pub fn transpose(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Entry-wise scaling by a complex factor.
    pub fn scale(&self, k: Complex) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * k).collect(),
        }
    }

    /// Trace of a square matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> Complex {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Kronecker (tensor) product `self ⊗ rhs`.
    ///
    /// The result has dimensions `(self.rows·rhs.rows) × (self.cols·rhs.cols)`
    /// and follows the standard big-endian block convention:
    /// entry `((a·p + b), (c·q + d)) = self[(a, c)] · rhs[(b, d)]`.
    pub fn kron(&self, rhs: &CMatrix) -> CMatrix {
        let mut out = CMatrix::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        for a in 0..self.rows {
            for c in 0..self.cols {
                let s = self[(a, c)];
                if s == Complex::ZERO {
                    continue;
                }
                for b in 0..rhs.rows {
                    for d in 0..rhs.cols {
                        out[(a * rhs.rows + b, c * rhs.cols + d)] = s * rhs[(b, d)];
                    }
                }
            }
        }
        out
    }

    /// Frobenius norm `sqrt(Σ |a_ij|²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Returns `true` if `self · self† ≈ I` within entry-wise tolerance `tol`.
    ///
    /// Non-square matrices are never unitary.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let prod = self.matmul(&self.dagger());
        prod.approx_eq(&CMatrix::identity(self.rows), tol)
    }

    /// Entry-wise approximate equality with absolute tolerance `tol`.
    pub fn approx_eq(&self, other: &CMatrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Returns `true` if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|z| z.is_finite())
    }

    /// Maximum entry-wise absolute difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn max_abs_diff(&self, other: &CMatrix) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).norm())
            .fold(0.0, f64::max)
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = Complex;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Complex {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&CMatrix> for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.rows, rhs.rows, "addition dimension mismatch");
        assert_eq!(self.cols, rhs.cols, "addition dimension mismatch");
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub<&CMatrix> for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.rows, rhs.rows, "subtraction dimension mismatch");
        assert_eq!(self.cols, rhs.cols, "subtraction dimension mismatch");
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl Mul<&CMatrix> for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        self.matmul(rhs)
    }
}

impl fmt::Display for CMatrix {
    #[allow(clippy::needless_range_loop)] // (r, c) indexing mirrors the math
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}{:+.4}i", self[(r, c)].re, self[(r, c)].im)?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;

    fn pauli_x() -> CMatrix {
        CMatrix::from_rows(&[
            &[Complex::ZERO, Complex::ONE],
            &[Complex::ONE, Complex::ZERO],
        ])
    }

    fn pauli_z() -> CMatrix {
        CMatrix::from_diagonal(&[Complex::ONE, -Complex::ONE])
    }

    #[test]
    fn identity_has_unit_diagonal() {
        let id = CMatrix::identity(4);
        for r in 0..4 {
            for c in 0..4 {
                let want = if r == c { Complex::ONE } else { Complex::ZERO };
                assert_eq!(id[(r, c)], want);
            }
        }
    }

    #[test]
    fn matmul_identity_is_noop() {
        let x = pauli_x();
        assert_eq!(x.matmul(&CMatrix::identity(2)), x);
        assert_eq!(CMatrix::identity(2).matmul(&x), x);
    }

    #[test]
    fn pauli_algebra() {
        let x = pauli_x();
        let z = pauli_z();
        // XZ = -ZX (anti-commute)
        let xz = x.matmul(&z);
        let zx = z.matmul(&x).scale(-Complex::ONE);
        assert!(xz.approx_eq(&zx, 1e-15));
        // X² = Z² = I
        assert!(x.matmul(&x).approx_eq(&CMatrix::identity(2), 1e-15));
        assert!(z.matmul(&z).approx_eq(&CMatrix::identity(2), 1e-15));
    }

    #[test]
    fn dagger_reverses_products() {
        let a = CMatrix::from_fn(2, 2, |r, c| c64((r + c) as f64, (r as f64) - (c as f64)));
        let b = CMatrix::from_fn(2, 2, |r, c| c64(1.0 + r as f64 * c as f64, 0.5));
        let lhs = a.matmul(&b).dagger();
        let rhs = b.dagger().matmul(&a.dagger());
        assert!(lhs.approx_eq(&rhs, 1e-13));
    }

    #[test]
    fn kron_dimensions_and_entries() {
        let x = pauli_x();
        let z = pauli_z();
        let xz = x.kron(&z);
        assert_eq!(xz.rows(), 4);
        assert_eq!(xz.cols(), 4);
        // (X ⊗ Z)[0,2] = X[0,1]·Z[0,0] = 1
        assert_eq!(xz[(0, 2)], Complex::ONE);
        // (X ⊗ Z)[1,3] = X[0,1]·Z[1,1] = -1
        assert_eq!(xz[(1, 3)], -Complex::ONE);
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A⊗B)(C⊗D) = (AC)⊗(BD)
        let a = pauli_x();
        let b = pauli_z();
        let c = pauli_z();
        let d = pauli_x();
        let lhs = a.kron(&b).matmul(&c.kron(&d));
        let rhs = a.matmul(&c).kron(&b.matmul(&d));
        assert!(lhs.approx_eq(&rhs, 1e-14));
    }

    #[test]
    fn trace_is_diagonal_sum() {
        let z = pauli_z();
        assert!(z.trace().approx_eq(Complex::ZERO, 1e-15));
        assert!(CMatrix::identity(8).trace().approx_eq(c64(8.0, 0.0), 1e-15));
    }

    #[test]
    fn unitarity_check() {
        assert!(pauli_x().is_unitary(1e-14));
        assert!(pauli_z().is_unitary(1e-14));
        let not_unitary = CMatrix::from_rows(&[
            &[Complex::ONE, Complex::ONE],
            &[Complex::ZERO, Complex::ONE],
        ]);
        assert!(!not_unitary.is_unitary(1e-10));
        // Non-square is never unitary.
        assert!(!CMatrix::zeros(2, 3).is_unitary(1e-10));
    }

    #[test]
    fn matvec_matches_matmul() {
        let x = pauli_x();
        let v = vec![c64(0.6, 0.0), c64(0.0, 0.8)];
        let got = x.matvec(&v);
        assert!(got[0].approx_eq(c64(0.0, 0.8), 1e-15));
        assert!(got[1].approx_eq(c64(0.6, 0.0), 1e-15));
    }

    #[test]
    fn frobenius_norm_of_identity() {
        assert!((CMatrix::identity(4).frobenius_norm() - 2.0).abs() < 1e-15);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = CMatrix::from_fn(3, 3, |r, c| c64(r as f64, c as f64));
        let b = CMatrix::from_fn(3, 3, |r, c| c64(c as f64, r as f64));
        let s = &a + &b;
        let back = &s - &b;
        assert!(back.approx_eq(&a, 1e-15));
    }

    #[test]
    fn max_abs_diff_detects_perturbation() {
        let a = CMatrix::identity(2);
        let mut b = a.clone();
        b[(0, 1)] = c64(0.25, 0.0);
        assert!((a.max_abs_diff(&b) - 0.25).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_mismatch_panics() {
        let _ = CMatrix::zeros(2, 3).matmul(&CMatrix::zeros(2, 3));
    }

    #[test]
    #[should_panic(expected = "buffer length mismatch")]
    fn from_vec_length_mismatch_panics() {
        let _ = CMatrix::from_vec(2, 2, vec![Complex::ZERO; 3]);
    }

    #[test]
    fn get_returns_none_out_of_bounds() {
        let a = CMatrix::identity(2);
        assert_eq!(a.get(0, 0), Some(Complex::ONE));
        assert_eq!(a.get(2, 0), None);
        assert_eq!(a.get(0, 2), None);
    }

    #[test]
    fn transpose_vs_dagger_on_complex_entries() {
        let a = CMatrix::from_rows(&[
            &[c64(1.0, 1.0), c64(2.0, 0.0)],
            &[c64(0.0, -1.0), c64(3.0, 2.0)],
        ]);
        let t = a.transpose();
        let d = a.dagger();
        assert_eq!(t[(0, 1)], c64(0.0, -1.0));
        assert_eq!(d[(0, 1)], c64(0.0, 1.0));
    }
}
