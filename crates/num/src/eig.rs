//! Real symmetric eigendecomposition (cyclic Jacobi) and simultaneous
//! diagonalization of commuting symmetric pairs.
//!
//! These are the numerical kernels behind the Cartan (KAK)
//! decomposition of two-qubit unitaries: diagonalizing the symmetric
//! unitary `W = U'ᵀU'` in the magic basis requires simultaneously
//! diagonalizing its commuting real and imaginary parts.

/// A real symmetric matrix in row-major storage.
///
/// Only the operations needed by the eigensolver are provided; general
/// complex matrices live in [`crate::CMatrix`].
#[derive(Debug, Clone, PartialEq)]
pub struct RMatrix {
    n: usize,
    data: Vec<f64>,
}

impl RMatrix {
    /// Creates an `n × n` zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn zeros(n: usize) -> Self {
        assert!(n > 0, "matrix dimension must be non-zero");
        RMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a function of `(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(n: usize, mut f: F) -> Self {
        let mut m = Self::zeros(n);
        for r in 0..n {
            for c in 0..n {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Matrix product.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matmul(&self, rhs: &RMatrix) -> RMatrix {
        assert_eq!(self.n, rhs.n, "dimension mismatch");
        let n = self.n;
        let mut out = RMatrix::zeros(n);
        for r in 0..n {
            for k in 0..n {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                for c in 0..n {
                    out[(r, c)] += a * rhs[(k, c)];
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> RMatrix {
        RMatrix::from_fn(self.n, |r, c| self[(c, r)])
    }

    /// Determinant via LU with partial pivoting.
    pub fn det(&self) -> f64 {
        let n = self.n;
        let mut a = self.data.clone();
        let mut det = 1.0;
        for col in 0..n {
            // Pivot.
            let mut piv = col;
            for r in (col + 1)..n {
                if a[r * n + col].abs() > a[piv * n + col].abs() {
                    piv = r;
                }
            }
            if a[piv * n + col].abs() < 1e-300 {
                return 0.0;
            }
            if piv != col {
                for c in 0..n {
                    a.swap(col * n + c, piv * n + c);
                }
                det = -det;
            }
            det *= a[col * n + col];
            for r in (col + 1)..n {
                let factor = a[r * n + col] / a[col * n + col];
                for c in col..n {
                    a[r * n + c] -= factor * a[col * n + c];
                }
            }
        }
        det
    }

    /// Maximum absolute off-diagonal entry.
    pub fn max_off_diagonal(&self) -> f64 {
        let mut m = 0.0f64;
        for r in 0..self.n {
            for c in 0..self.n {
                if r != c {
                    m = m.max(self[(r, c)].abs());
                }
            }
        }
        m
    }
}

impl std::ops::Index<(usize, usize)> for RMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.n + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for RMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.n + c]
    }
}

/// Eigendecomposition `A = Q · diag(λ) · Qᵀ` of a real symmetric
/// matrix by the cyclic Jacobi method.
///
/// Returns `(eigenvalues, Q)` with `Q` orthogonal (columns are
/// eigenvectors). Accuracy ~1e-13 for well-conditioned inputs.
///
/// # Panics
///
/// Panics if `a` deviates from symmetry by more than `1e-9`.
pub fn jacobi_eigen(a: &RMatrix) -> (Vec<f64>, RMatrix) {
    let n = a.dim();
    for r in 0..n {
        for c in (r + 1)..n {
            assert!(
                (a[(r, c)] - a[(c, r)]).abs() < 1e-9,
                "matrix is not symmetric"
            );
        }
    }
    let mut m = a.clone();
    let mut q = RMatrix::identity(n);
    for _sweep in 0..100 {
        if m.max_off_diagonal() < 1e-14 {
            break;
        }
        for p in 0..n {
            for r in (p + 1)..n {
                let apq = m[(p, r)];
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(r, r)];
                // Classic Jacobi rotation angle: tan(2θ) = 2a_pq/(a_pp−a_qq).
                let phi = 0.5 * (2.0 * apq).atan2(app - aqq);
                let (s, c) = phi.sin_cos();
                // Apply rotation R(p, r) on both sides: m ← Rᵀ m R.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkr = m[(k, r)];
                    m[(k, p)] = c * mkp + s * mkr;
                    m[(k, r)] = -s * mkp + c * mkr;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mrk = m[(r, k)];
                    m[(p, k)] = c * mpk + s * mrk;
                    m[(r, k)] = -s * mpk + c * mrk;
                }
                for k in 0..n {
                    let qkp = q[(k, p)];
                    let qkr = q[(k, r)];
                    q[(k, p)] = c * qkp + s * qkr;
                    q[(k, r)] = -s * qkp + c * qkr;
                }
            }
        }
    }
    let eigenvalues = (0..n).map(|i| m[(i, i)]).collect();
    (eigenvalues, q)
}

/// Simultaneously diagonalizes two commuting real symmetric matrices:
/// returns an orthogonal `Q` with both `QᵀAQ` and `QᵀBQ` diagonal.
///
/// Strategy: diagonalize `A`; within each degenerate eigenvalue
/// cluster of `A`, diagonalize the projection of `B` (which is block
/// diagonal there because `A` and `B` commute).
///
/// # Panics
///
/// Panics if the matrices have different dimensions or are not
/// symmetric; returns a `Q` that fails to diagonalize `B` only if the
/// inputs do not actually commute (checked by the caller's tests).
pub fn simultaneous_diagonalize(a: &RMatrix, b: &RMatrix) -> RMatrix {
    assert_eq!(a.dim(), b.dim(), "dimension mismatch");
    let n = a.dim();
    let (mut evals, mut q) = jacobi_eigen(a);

    // Sort eigenvalues (and columns) so clusters are contiguous.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| evals[i].total_cmp(&evals[j]));
    let sorted_q = RMatrix::from_fn(n, |r, c| q[(r, order[c])]);
    let sorted_evals: Vec<f64> = order.iter().map(|&i| evals[i]).collect();
    q = sorted_q;
    evals = sorted_evals;

    // Identify degenerate clusters and rotate within them to
    // diagonalize B's projection.
    let tol = 1e-8;
    let mut start = 0;
    while start < n {
        let mut end = start + 1;
        while end < n && (evals[end] - evals[start]).abs() < tol {
            end += 1;
        }
        let k = end - start;
        if k > 1 {
            // Projection of B into the cluster: (QᵀBQ)[start..end].
            let bq = b.matmul(&q);
            let proj = RMatrix::from_fn(k, |r, c| {
                (0..n).map(|i| q[(i, start + r)] * bq[(i, start + c)]).sum()
            });
            let (_, rot) = jacobi_eigen(&proj);
            // q_cluster ← q_cluster · rot
            let old: Vec<Vec<f64>> = (0..k)
                .map(|c| (0..n).map(|r| q[(r, start + c)]).collect())
                .collect();
            for c in 0..k {
                for r in 0..n {
                    q[(r, start + c)] = (0..k).map(|j| old[j][r] * rot[(j, c)]).sum();
                }
            }
        }
        start = end;
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_symmetric(n: usize, seed: u64) -> RMatrix {
        // Simple deterministic LCG so the crate needs no rand dep.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let mut m = RMatrix::zeros(n);
        for r in 0..n {
            for c in r..n {
                let v = next();
                m[(r, c)] = v;
                m[(c, r)] = v;
            }
        }
        m
    }

    fn assert_diagonalizes(a: &RMatrix, q: &RMatrix, tol: f64) {
        let d = q.transpose().matmul(a).matmul(q);
        assert!(
            d.max_off_diagonal() < tol,
            "off-diagonal residue {}",
            d.max_off_diagonal()
        );
    }

    fn assert_orthogonal(q: &RMatrix, tol: f64) {
        let qtq = q.transpose().matmul(q);
        for r in 0..q.dim() {
            for c in 0..q.dim() {
                let want = if r == c { 1.0 } else { 0.0 };
                assert!((qtq[(r, c)] - want).abs() < tol, "QᵀQ[{r},{c}]");
            }
        }
    }

    #[test]
    fn diagonal_matrix_is_fixed_point() {
        let mut a = RMatrix::zeros(3);
        a[(0, 0)] = 2.0;
        a[(1, 1)] = -1.0;
        a[(2, 2)] = 0.5;
        let (evals, q) = jacobi_eigen(&a);
        assert_orthogonal(&q, 1e-12);
        let mut sorted = evals.clone();
        sorted.sort_by(f64::total_cmp);
        assert!((sorted[0] + 1.0).abs() < 1e-12);
        assert!((sorted[2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2_eigenvalues() {
        // [[0, 1], [1, 0]] has eigenvalues ±1.
        let mut a = RMatrix::zeros(2);
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        let (mut evals, q) = jacobi_eigen(&a);
        evals.sort_by(f64::total_cmp);
        assert!((evals[0] + 1.0).abs() < 1e-12);
        assert!((evals[1] - 1.0).abs() < 1e-12);
        assert_orthogonal(&q, 1e-12);
        assert_diagonalizes(&a, &q, 1e-12);
    }

    #[test]
    fn random_matrices_diagonalize() {
        for seed in 0..10 {
            for n in [2usize, 3, 4, 6] {
                let a = random_symmetric(n, seed * 31 + n as u64);
                let (evals, q) = jacobi_eigen(&a);
                assert_orthogonal(&q, 1e-10);
                assert_diagonalizes(&a, &q, 1e-10);
                // Reconstruction: A = Q D Qᵀ.
                let mut d = RMatrix::zeros(n);
                for (i, &l) in evals.iter().enumerate() {
                    d[(i, i)] = l;
                }
                let back = q.matmul(&d).matmul(&q.transpose());
                for r in 0..n {
                    for c in 0..n {
                        assert!((back[(r, c)] - a[(r, c)]).abs() < 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn trace_is_preserved() {
        let a = random_symmetric(5, 7);
        let (evals, _) = jacobi_eigen(&a);
        let trace: f64 = (0..5).map(|i| a[(i, i)]).sum();
        assert!((evals.iter().sum::<f64>() - trace).abs() < 1e-10);
    }

    #[test]
    fn determinant_of_orthogonal_is_unit() {
        let a = random_symmetric(4, 3);
        let (_, q) = jacobi_eigen(&a);
        assert!((q.det().abs() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn simultaneous_diagonalization_of_commuting_pair() {
        // Build commuting A, B sharing eigenvectors with degenerate
        // A-eigenvalues so the cluster path is exercised.
        let base = random_symmetric(4, 9);
        let (_, q0) = jacobi_eigen(&base);
        let mut da = RMatrix::zeros(4);
        let mut db = RMatrix::zeros(4);
        // A has a degenerate pair; B splits it.
        for (i, &(la, lb)) in [(1.0, 3.0), (1.0, -2.0), (2.0, 0.5), (-1.0, 0.1)]
            .iter()
            .enumerate()
        {
            da[(i, i)] = la;
            db[(i, i)] = lb;
        }
        let a = q0.matmul(&da).matmul(&q0.transpose());
        let b = q0.matmul(&db).matmul(&q0.transpose());
        let q = simultaneous_diagonalize(&a, &b);
        assert_orthogonal(&q, 1e-9);
        assert_diagonalizes(&a, &q, 1e-8);
        assert_diagonalizes(&b, &q, 1e-8);
    }

    #[test]
    fn simultaneous_diagonalization_fully_degenerate_a() {
        // A = I commutes with everything: B must still diagonalize.
        let a = RMatrix::identity(4);
        let b = random_symmetric(4, 21);
        let q = simultaneous_diagonalize(&a, &b);
        assert_orthogonal(&q, 1e-9);
        assert_diagonalizes(&b, &q, 1e-8);
    }

    #[test]
    fn det_of_known_matrices() {
        let id = RMatrix::identity(3);
        assert!((id.det() - 1.0).abs() < 1e-12);
        let mut m = RMatrix::zeros(2);
        m[(0, 0)] = 2.0;
        m[(0, 1)] = 1.0;
        m[(1, 0)] = 1.0;
        m[(1, 1)] = 2.0;
        assert!((m.det() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not symmetric")]
    fn asymmetric_input_rejected() {
        let mut m = RMatrix::zeros(2);
        m[(0, 1)] = 1.0;
        let _ = jacobi_eigen(&m);
    }
}
