//! A compact double-precision complex scalar.

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A double-precision complex number `re + i·im`.
///
/// Implements the full set of field operations plus the handful of
/// transcendental helpers the rest of the workspace needs (polar forms,
/// complex exponentials for gate matrices).
///
/// # Example
///
/// ```
/// use geyser_num::Complex;
///
/// let z = Complex::new(0.0, 1.0);
/// assert!((z * z + Complex::ONE).norm() < 1e-15); // i² = -1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates the complex number `r·e^{iθ}` from polar coordinates.
    ///
    /// # Example
    ///
    /// ```
    /// use geyser_num::Complex;
    /// use std::f64::consts::PI;
    /// let z = Complex::from_polar(1.0, PI);
    /// assert!((z - Complex::new(-1.0, 0.0)).norm() < 1e-15);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Returns `e^{iθ}`, a unit-modulus phase factor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate `re − i·im`.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Modulus (absolute value) `|z| = sqrt(re² + im²)`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus `|z|²`, cheaper than [`Complex::norm`].
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Principal argument in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns a non-finite value if `z` is zero, mirroring `f64`
    /// division semantics.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        Self::from_polar(self.norm().sqrt(), self.arg() / 2.0)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Returns `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Component-wise approximate equality with absolute tolerance `tol`.
    #[inline]
    pub fn approx_eq(self, other: Complex, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z·w⁻¹ is the definition
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        self.scale(1.0 / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl Product for Complex {
    fn product<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ONE, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn constructors_and_accessors() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z.re, 3.0);
        assert_eq!(z.im, -4.0);
        assert_eq!(z.norm(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(Complex::from_real(2.5), Complex::new(2.5, 0.0));
        assert_eq!(Complex::from(1.5), Complex::new(1.5, 0.0));
    }

    #[test]
    fn field_axioms_spot_checks() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-0.5, 0.25);
        assert_eq!(a + b, b + a);
        assert_eq!(a * b, b * a);
        assert!(((a * b) * a.recip() - b).norm() < 1e-14);
        assert_eq!(a - a, Complex::ZERO);
        assert!((a / a - Complex::ONE).norm() < 1e-15);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!((Complex::I * Complex::I + Complex::ONE).norm() < 1e-15);
    }

    #[test]
    fn conjugation_properties() {
        let a = Complex::new(1.5, -2.5);
        let b = Complex::new(0.5, 3.0);
        assert_eq!(a.conj().conj(), a);
        assert!(((a * b).conj() - a.conj() * b.conj()).norm() < 1e-14);
        assert!((a * a.conj() - Complex::from_real(a.norm_sqr())).norm() < 1e-14);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, FRAC_PI_2);
        assert!((z - Complex::new(0.0, 2.0)).norm() < 1e-15);
        assert!((z.norm() - 2.0).abs() < 1e-15);
        assert!((z.arg() - FRAC_PI_2).abs() < 1e-15);
    }

    #[test]
    fn cis_is_unit_modulus() {
        for k in 0..16 {
            let theta = k as f64 * PI / 8.0;
            assert!((Complex::cis(theta).norm() - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn exp_of_i_pi_is_minus_one() {
        let z = (Complex::I * PI).exp();
        assert!((z + Complex::ONE).norm() < 1e-14);
    }

    #[test]
    fn sqrt_squares_back() {
        let z = Complex::new(-3.0, 4.0);
        let r = z.sqrt();
        assert!((r * r - z).norm() < 1e-12);
    }

    #[test]
    fn assign_ops_match_binary_ops() {
        let a = Complex::new(1.0, 1.0);
        let b = Complex::new(2.0, -3.0);
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c = a;
        c -= b;
        assert_eq!(c, a - b);
        c = a;
        c *= b;
        assert_eq!(c, a * b);
        c = a;
        c /= b;
        assert_eq!(c, a / b);
    }

    #[test]
    fn sum_and_product_fold_correctly() {
        let zs = [
            Complex::new(1.0, 0.0),
            Complex::new(0.0, 1.0),
            Complex::new(2.0, 2.0),
        ];
        let s: Complex = zs.iter().copied().sum();
        assert_eq!(s, Complex::new(3.0, 3.0));
        let p: Complex = zs.iter().copied().product();
        // (1)(i)(2+2i) = 2i - 2
        assert!((p - Complex::new(-2.0, 2.0)).norm() < 1e-14);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn approx_eq_respects_tolerance() {
        let a = Complex::new(1.0, 1.0);
        let b = Complex::new(1.0 + 1e-9, 1.0 - 1e-9);
        assert!(a.approx_eq(b, 1e-8));
        assert!(!a.approx_eq(b, 1e-10));
    }

    #[test]
    fn real_scalar_mul_div() {
        let z = Complex::new(2.0, -4.0);
        assert_eq!(z * 0.5, Complex::new(1.0, -2.0));
        assert_eq!(0.5 * z, Complex::new(1.0, -2.0));
        assert_eq!(z / 2.0, Complex::new(1.0, -2.0));
    }
}
