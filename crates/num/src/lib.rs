//! Complex scalar and dense complex matrix algebra for the Geyser
//! quantum-compilation framework.
//!
//! This crate is the numerical substrate of the workspace: every other
//! crate that manipulates unitaries (circuit construction, simulation,
//! synthesis, composition) builds on the [`Complex`] scalar and the
//! [`CMatrix`] dense matrix type defined here.
//!
//! The crate deliberately implements its own complex arithmetic instead
//! of pulling in an external numerics stack: the workloads only need
//! dense matrices up to `2^n × 2^n` for small `n` (block composition
//! operates on 8×8 unitaries), so a compact, well-tested implementation
//! is both sufficient and easy to audit.
//!
//! # Example
//!
//! ```
//! use geyser_num::{CMatrix, Complex};
//!
//! // Build the Pauli-X matrix and verify it is unitary and involutive.
//! let x = CMatrix::from_rows(&[
//!     &[Complex::ZERO, Complex::ONE],
//!     &[Complex::ONE, Complex::ZERO],
//! ]);
//! assert!(x.is_unitary(1e-12));
//! assert!(x.matmul(&x).approx_eq(&CMatrix::identity(2), 1e-12));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod complex;
mod decompose;
mod eig;
mod matrix;
mod metrics;

pub use complex::Complex;
pub use decompose::{zyz_angles, ZyzDecomposition};
pub use eig::{jacobi_eigen, simultaneous_diagonalize, RMatrix};
pub use matrix::CMatrix;
pub use metrics::{frobenius_distance, hilbert_schmidt_distance, hilbert_schmidt_inner};

/// Convenience constructor for a [`Complex`] value.
///
/// # Example
///
/// ```
/// use geyser_num::c64;
/// let z = c64(1.0, -2.0);
/// assert_eq!(z.re, 1.0);
/// assert_eq!(z.im, -2.0);
/// ```
#[inline]
pub fn c64(re: f64, im: f64) -> Complex {
    Complex::new(re, im)
}
